#!/usr/bin/env python3
"""Parameter study with the sweep machinery.

Sweeps system size and churn intensity across seed replicates, printing
the aggregate table an operator would use to size a deployment: per-round
peak traffic, fallback rate, and the two invariants (which must read
``True`` in every cell — they are probability-1 guarantees, not tuning
outcomes).

Run:  python examples/parameter_study.py
"""

from repro.api import CongosParams, grid, sweep
from repro.harness.report import banner, format_table


def main() -> None:
    params = CongosParams.preset("lean")

    print(banner("Sweep 1: system size (fault-free steady traffic)"))
    size_sweep = sweep(
        "steady",
        grid(n=[8, 12, 16]),
        seeds=(0, 1),
        rounds=300,
        deadline=64,
        params=params,
    )
    print(format_table(size_sweep.table_headers(), size_sweep.table_rows()))
    assert size_sweep.all_satisfied() and size_sweep.all_clean()

    print(banner("Sweep 2: churn intensity (n=12)"))
    churn_sweep = sweep(
        "churn",
        grid(p_crash=[0.005, 0.02, 0.05]),
        seeds=(0, 1),
        n=12,
        rounds=360,
        deadline=64,
        p_restart=0.25,
        params=params,
    )
    print(format_table(churn_sweep.table_headers(), churn_sweep.table_rows()))
    assert churn_sweep.all_satisfied() and churn_sweep.all_clean()

    print(
        "\nPeaks grow gently with n (Theorem 11's n^{1+o(1)} polylog n); "
        "churn never breaks the invariants — it only shrinks how much the "
        "protocol owes (admissibility) and occasionally wakes the fallback."
    )


if __name__ == "__main__":
    main()
