#!/usr/bin/env python3
"""Quickstart: run CONGOS, watch a confidential rumor get delivered.

Sets up a 16-process synchronous system, injects one confidential rumor
(and some background traffic), runs the CONGOS pipeline, and then asks
the two auditors the paper's two questions:

* Quality of Delivery — did every admissible destination learn the rumor
  by its deadline?
* Confidentiality  — did anyone outside the destination set learn it, or
  even collect enough fragments to reconstruct it?

Run:  python examples/quickstart.py
"""

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload, SteadyWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.harness.report import banner, format_kv, format_table
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 16
ROUNDS = 360
DEADLINE = 64
SECRET = b"the launch code is 0x5EC12E7"
DESTINATIONS = {3, 7, 11}
SOURCE = 0


def main() -> None:
    params = CongosParams()
    partitions = build_partition_set(N, params, seed=2024)

    # Auditors sit *outside* the protocol: they watch every delivered
    # message and every local delivery.
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        num_partitions=partitions.count, num_groups=partitions.num_groups
    )

    factory = congos_factory(
        N,
        params=params,
        seed=2024,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )

    # Our confidential rumor, plus background chatter from other nodes.
    our_rumor = ScriptedWorkload(
        [(DEADLINE, SOURCE, DEADLINE, DESTINATIONS, SECRET)],
        derive_rng(1, "ours"),
    )
    background = SteadyWorkload(
        N,
        derive_rng(1, "background"),
        rate=1,
        period=8,
        dest_size=3,
        deadlines=(DEADLINE,),
        start_round=DEADLINE + 4,
        stop_round=ROUNDS - DEADLINE - 8,
        seq_start=1_000_000,  # keep rumor ids disjoint from ours
    )

    engine = Engine(
        N,
        factory,
        ComposedAdversary([our_rumor, background]),
        observers=[delivery, confidentiality],
        seed=2024,
    )

    print(banner("CONGOS quickstart: n={}, {} rounds".format(N, ROUNDS)))
    engine.run(ROUNDS)

    rid = delivery.injected_rid(0)
    print("\nOur rumor {} -> destinations {}:".format(rid, sorted(DESTINATIONS)))
    rows = []
    for q in sorted(DESTINATIONS):
        entry = delivery.deliveries.get((rid, q))
        rows.append(
            [
                q,
                "yes" if entry else "NO",
                entry[0] if entry else "-",
                entry[2] if entry else "-",
                "intact" if entry and entry[1] == SECRET else "-",
            ]
        )
    print(format_table(["destination", "delivered", "round", "path", "data"], rows))

    report = delivery.report(engine)
    print("\n" + format_kv(list(report.summary().items()), title="Quality of Delivery"))

    print("\n" + format_kv(
        list(confidentiality.summary().items()), title="Confidentiality audit"
    ))
    outsiders = confidentiality.outsiders(rid, N)
    leaks = [
        q
        for q in outsiders
        if ("plaintext", rid) in confidentiality.knowledge.get(q, set())
    ]
    min_coalition = confidentiality.min_coalition_size(rid, N)
    print("\nOutsiders who learned the secret: {}".format(leaks or "none"))
    print(
        "Smallest outsider coalition that could reconstruct it: {}".format(
            min_coalition if min_coalition is not None else "none possible"
        )
    )

    print("\n" + format_kv(
        sorted(engine.stats.by_service().items()),
        title="Messages by service (total {})".format(engine.stats.total),
    ))

    assert report.satisfied, "QoD violated!"
    assert confidentiality.is_clean(), "confidentiality violated!"
    print("\nAll good: delivered on time, nobody else learned a thing.")


if __name__ == "__main__":
    main()
