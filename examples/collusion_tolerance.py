#!/usr/bin/env python3
"""Collusion tolerance in action (Section 6).

Runs the same confidential traffic at increasing collusion tolerance
tau = 1, 2, 3 and, for each, unleashes the *adaptive greedy coalition*:
with perfect hindsight it recruits, per rumor, the outsiders whose pooled
fragments cover the most groups.  The demo shows:

* coalitions of size tau never reconstruct anything (Theorem 16);
* coalitions of size tau + 1 typically can (the bound is tight);
* the cost: partitions, fragments and per-round messages all grow
  (Theorem 16 charges a tau^2 factor).

Run:  python examples/collusion_tolerance.py
"""

from repro.adversary.collusion import GreedyCoalition
from repro.api import CongosParams, run_scenario
from repro.harness.report import banner, format_table

N = 16
ROUNDS = 340
DEADLINE = 64


def main() -> None:
    print(banner("Collusion tolerance sweep (greedy adaptive coalitions)"))
    rows = []
    base_peak = None
    for tau in (1, 2, 3):
        params = CongosParams.preset(
            "lean", tau=tau, collusion_direct_factor=16.0
        )
        result = run_scenario(
            "collusion",
            n=N,
            rounds=ROUNDS,
            seed=5,
            tau=tau,
            deadline=DEADLINE,
            params=params,
        )
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
        within = result.confidentiality.check_coalitions(
            GreedyCoalition(), tau=tau, n=N
        )
        beyond = result.confidentiality.check_coalitions(
            GreedyCoalition(), tau=tau + 1, n=N
        )
        peak = result.stats.max_per_round()
        if base_peak is None:
            base_peak = peak
        rows.append(
            [
                tau,
                result.partition_set.count,
                result.partition_set.num_groups,
                "{}/{}".format(
                    sum(f.reconstructs for f in within), len(within)
                ),
                "{}/{}".format(
                    sum(f.reconstructs for f in beyond), len(beyond)
                ),
                peak,
                "{:.2f}x".format(peak / base_peak),
                "{}x".format(tau ** 2),
            ]
        )
    print()
    print(
        format_table(
            [
                "tau",
                "partitions",
                "groups",
                "tau-coalition wins",
                "(tau+1)-coalition wins",
                "peak msgs/round",
                "measured growth",
                "Thm-16 budget",
            ],
            rows,
        )
    )
    print(
        "\nReading the table: a coalition within the configured tolerance "
        "never reconstructs a rumor; one extra colluder flips the game — "
        "exactly where the paper says the boundary is.  The price is the "
        "growing partition/fragment machinery, bounded by tau^2."
    )


if __name__ == "__main__":
    main()
