#!/usr/bin/env python3
"""Surviving an adaptive crash storm (the paper's Robustness claim).

Two processes — a field unit (pid 0) and headquarters (pid 1) — must keep
exchanging confidential reports while an adaptive adversary tears the rest
of the network apart: random churn takes a third of the relays down at any
moment, and a proxy killer crashes processes the instant they are sampled
as proxies.

The run demonstrates Quality of Delivery's exact promise: rumors between
the continuously-alive pair are always delivered by their deadlines, no
matter what happens to everyone else; rumors whose endpoints crash are
excused (inadmissible) but nothing ever leaks.

Run:  python examples/crash_storm.py
"""

from repro.adversary.adaptive import ProxyKillerAdversary
from repro.adversary.base import Adversary, ComposedAdversary
from repro.adversary.injection import GroupTrafficWorkload
from repro.adversary.random_crash import ChurnAdversary
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.harness.report import banner, format_kv, format_table
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 16
DEADLINE = 64
ROUNDS = 480
FIELD, HQ = 0, 1


class StormAdversary(Adversary):
    """Churn plus an adaptive proxy killer, sparing the immune pair."""

    def __init__(self, rng):
        self.churn = ChurnAdversary(
            rng,
            p_crash=0.02,
            p_restart=0.25,
            immune={FIELD, HQ},
            min_alive=4,
        )
        self.killer = ProxyKillerAdversary(
            budget_per_round=1,
            total_budget=12,
            restart_after=DEADLINE // 2,
            spare={FIELD, HQ},
        )

    def round_start(self, view):
        decision = self.churn.round_start(view)
        revive = self.killer.round_start(view)
        decision.restarts |= revive.restarts - decision.crashes
        return decision

    def mid_round(self, view, outgoing):
        return self.killer.mid_round(view, outgoing)


def main() -> None:
    params = CongosParams()
    partitions = build_partition_set(N, params, seed=11)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        num_partitions=partitions.count, num_groups=partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=params,
        seed=11,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    reports = GroupTrafficWorkload(
        participants=[FIELD, HQ],
        rng=derive_rng(11, "reports"),
        deadline=DEADLINE,
        period=16,
        start_round=DEADLINE,
        stop_round=ROUNDS - DEADLINE - 8,
    )
    adversary = ComposedAdversary([reports, StormAdversary(derive_rng(11, "storm"))])
    engine = Engine(
        N,
        factory,
        adversary,
        observers=[delivery, confidentiality],
        seed=11,
    )

    print(banner("Crash storm: churn + adaptive proxy killer"))
    engine.run(ROUNDS)

    faults = engine.event_log.summary()
    report = delivery.report(engine)
    print(format_kv(sorted(faults.items()), title="\nCRRI events"))
    print()
    rows = []
    for rid in sorted(delivery.rumors):
        rumor = delivery.rumors[rid]
        (dest,) = rumor.dest
        entry = delivery.deliveries.get((rid, dest))
        rows.append(
            [
                str(rid),
                "{}->{}".format(rid.src, dest),
                delivery.injection_rounds[rid],
                entry[0] if entry else "MISSED",
                entry[2] if entry else "-",
            ]
        )
    print(format_table(["rumor", "link", "injected", "delivered", "path"], rows))

    print("\n" + format_kv(list(report.summary().items()), title="Quality of Delivery"))
    print(
        "\nConfidentiality violations: {}".format(
            confidentiality.violation_counts()
        )
    )

    assert report.satisfied
    assert confidentiality.is_clean()
    survivors = len(engine.alive_pids())
    print(
        "\nThe storm crashed processes {} times; {} of {} were alive at the "
        "end — and every field<->HQ report still arrived on time, "
        "confidentially.".format(faults["crashes"], survivors, N)
    )


if __name__ == "__main__":
    main()
