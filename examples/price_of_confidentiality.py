#!/usr/bin/env python3
"""What does confidentiality cost?  (Section 1 / Section 3 / E11.)

Serves one identical workload four ways and prints the trade-offs:

* plain gossip       — fast & cheap, leaks everything to everyone;
* direct send        — leak-free, but no collaboration: the source pays
                       |D| messages in a single round and gets no help if
                       the network misbehaves;
* strongly confidential gossip — collaboration confined to each rumor's
                       destination set: Theorem 1 territory, total cost
                       tracks the pair count;
* CONGOS             — fragments let *everyone* collaborate while nobody
                       outside D can read anything.

Also prices the cryptographic alternative (LKH key trees) on the same
rumor stream.

Run:  python examples/price_of_confidentiality.py
"""

from repro.api import CongosParams, get_builder, run_scenario
from repro.audit.delivery import DeliveryAuditor
from repro.baselines.direct import direct_factory
from repro.baselines.key_tree import KeyTreeCostModel
from repro.baselines.plain_gossip import plain_gossip_factory
from repro.baselines.strongly_confidential import strongly_confidential_factory
from repro.harness.report import banner, format_table
from repro.harness.runner import run_with_factory

N = 16
ROUNDS = 360
DEADLINE = 64


def scenario(name):
    return get_builder("steady")(
        n=N,
        rounds=ROUNDS,
        seed=9,
        deadline=DEADLINE,
        rate=1,
        period=4,
        dest_size=4,
        params=CongosParams.preset("lean"),
        name=name,
    )


def run_baseline(kind):
    sc = scenario(kind)
    delivery = DeliveryAuditor()
    factories = {
        "plain": lambda: plain_gossip_factory(
            N, seed=9, deliver_callback=delivery.record_delivery
        ),
        "direct": lambda: direct_factory(
            N, deliver_callback=delivery.record_delivery
        ),
        "sc-gossip": lambda: strongly_confidential_factory(
            N, seed=9, deliver_callback=delivery.record_delivery
        ),
    }
    return run_with_factory(sc, factories[kind](), delivery=delivery)


def describe(label, result, rumor_count):
    latencies = result.qod.latencies()
    return [
        label,
        result.stats.total,
        round(result.stats.total / rumor_count, 1),
        result.stats.max_per_round(),
        round(sum(latencies) / len(latencies), 1) if latencies else "-",
        result.confidentiality.violation_counts()["plaintext"],
        "yes" if result.qod.satisfied else "NO",
    ]


def main() -> None:
    print(banner("The price of confidentiality: one workload, four protocols"))
    congos = run_scenario(scenario("congos"))
    rumor_count = congos.rumors_injected
    rows = [describe("CONGOS", congos, rumor_count)]
    for kind in ("plain", "direct", "sc-gossip"):
        rows.append(describe(kind, run_baseline(kind), rumor_count))

    lkh = KeyTreeCostModel(N, mode="rekey")
    for rumor in congos.delivery.rumors.values():
        lkh.on_rumor(rumor.rid.src, rumor.dest)
    rows.append(
        [
            "LKH re-key (model)",
            lkh.report.total_messages,
            round(lkh.report.mean_per_rumor(), 1),
            "-",
            "-",
            0,
            "n/a",
        ]
    )

    print()
    print(
        format_table(
            [
                "protocol",
                "total msgs",
                "msgs/rumor",
                "peak/round",
                "mean latency",
                "plaintext leaks",
                "QoD",
            ],
            rows,
        )
    )
    print(
        "\nHow to read this: plain gossip is the efficiency ceiling but "
        "leaks every rumor to bystanders; direct send is leak-free but "
        "un-collaborative (and its per-round peak IS the workload burst); "
        "CONGOS pays a polylog-factor premium in messages to get "
        "collaboration *and* confidentiality; and the key-tree model shows "
        "why the paper argues crypto re-keying struggles when every rumor "
        "has a fresh destination set."
    )


if __name__ == "__main__":
    main()
