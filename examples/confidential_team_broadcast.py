#!/usr/bin/env python3
"""The paper's motivating scenario: sharing a blueprint with colleagues,
not with competitors (Section 1).

A 24-process network hosts three organisations:

* **AcmeCorp** engineers (pids 0-7) who circulate design blueprints
  among themselves;
* **BetaInc** engineers (pids 8-15) doing the same;
* a pool of **contractors** (pids 16-23) everyone routes traffic through.

Every process relays *fragments* for everyone else — that is what makes
the dissemination fast — yet the audit shows that no BetaInc process (and
no contractor coalition of bounded size) can reconstruct an AcmeCorp
blueprint, and vice versa.

Run:  python examples/confidential_team_broadcast.py
"""

from repro.adversary.base import ComposedAdversary
from repro.adversary.collusion import GreedyCoalition
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.harness.report import banner, format_table
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 24
DEADLINE = 64
ROUNDS = 420
TAU = 2  # tolerate pairs of curious processes pooling what they saw

ACME = list(range(0, 8))
BETA = list(range(8, 16))
CONTRACTORS = list(range(16, 24))


def build_script():
    """Each org broadcasts a few documents internally."""
    script = []
    round_no = DEADLINE + 16
    for index in range(4):
        acme_src = ACME[index % len(ACME)]
        beta_src = BETA[index % len(BETA)]
        script.append(
            (
                round_no,
                acme_src,
                DEADLINE,
                set(ACME) - {acme_src},
                b"ACME blueprint #%d" % index,
            )
        )
        script.append(
            (
                round_no + 4,
                beta_src,
                DEADLINE,
                set(BETA) - {beta_src},
                b"BETA roadmap #%d" % index,
            )
        )
        round_no += 24
    return script


def main() -> None:
    params = CongosParams(tau=TAU, collusion_direct_factor=16.0)
    partitions = build_partition_set(N, params, seed=7)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        num_partitions=partitions.count, num_groups=partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=params,
        seed=7,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    workload = ScriptedWorkload(build_script(), derive_rng(7, "docs"))
    engine = Engine(
        N,
        factory,
        ComposedAdversary([workload]),
        observers=[delivery, confidentiality],
        seed=7,
    )

    print(banner("Confidential team broadcast (tau={} collusion tolerance)".format(TAU)))
    print(
        "AcmeCorp: {}\nBetaInc:  {}\nContract: {}".format(ACME, BETA, CONTRACTORS)
    )
    engine.run(ROUNDS)

    report = delivery.report(engine)
    rows = []
    for rid, rumor in sorted(delivery.rumors.items()):
        org = "Acme" if rid.src in ACME else "Beta"
        delivered = sum(
            1 for q in rumor.dest if (rid, q) in delivery.deliveries
        )
        # Who outside the org saw the plaintext?
        leaks = [
            q
            for q in range(N)
            if q not in confidentiality.allowed_set(rid)
            and ("plaintext", rid) in confidentiality.knowledge.get(q, set())
        ]
        min_coalition = confidentiality.min_coalition_size(rid, N)
        rows.append(
            [
                str(rid),
                org,
                "{}/{}".format(delivered, len(rumor.dest)),
                leaks or "none",
                min_coalition if min_coalition is not None else "impossible",
            ]
        )
    print()
    print(
        format_table(
            ["rumor", "org", "delivered", "plaintext leaks", "min reconstructing coalition"],
            rows,
        )
    )

    findings = confidentiality.check_coalitions(GreedyCoalition(), tau=TAU, n=N)
    breached = [f for f in findings if f.reconstructs]
    print(
        "\nGreedy {}-coalitions (adaptive worst case): {} of {} rumors "
        "reconstructible".format(TAU, len(breached), len(findings))
    )
    print("Quality of delivery: {}".format(report.summary()))

    assert report.satisfied
    assert confidentiality.is_clean()
    assert not breached
    print(
        "\nBlueprints crossed the whole network as fragments; neither the "
        "rival org nor any pair of curious relays could read them."
    )


if __name__ == "__main__":
    main()
