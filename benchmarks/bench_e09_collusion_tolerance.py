"""E9 — Theorem 16: collusion tolerance and its tau^2 cost.

Three measurements on steady traffic:

1. **Safety** — the adaptive greedy coalition of size tau never
   reconstructs any rumor (Lemma 14 via pooled knowledge).
2. **Tightness** — a coalition one larger (tau + 1) *can* reconstruct
   (one member per group of a fully distributed partition).
3. **Cost** — max per-round messages grow with tau; Theorem 16 charges a
   tau^2 factor (tau x more partitions, tau x more groups/fragments),
   which the measured growth must not exceed by more than the polylog
   slack.
"""

import pytest

from repro.adversary.collusion import GreedyCoalition
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import collusion_scenario

from _util import emit, lean_params, run_once

N = 16
ROUNDS = 340
DEADLINE = 64


def run_tau(tau, seed=0):
    params = lean_params(tau=tau, collusion_direct_factor=16.0)
    return run_congos_scenario(
        collusion_scenario(
            n=N,
            rounds=ROUNDS,
            seed=seed,
            tau=tau,
            deadline=DEADLINE,
            params=params,
        )
    )


def test_e09_collusion_tolerance(benchmark):
    def experiment():
        rows = []
        peaks = {}
        for tau in (1, 2, 3):
            result = run_tau(tau)
            assert result.qod.satisfied
            assert result.confidentiality.is_clean()
            findings = result.confidentiality.check_coalitions(
                GreedyCoalition(), tau=tau, n=N
            )
            breaches = sum(1 for f in findings if f.reconstructs)
            oversize = result.confidentiality.check_coalitions(
                GreedyCoalition(), tau=tau + 1, n=N
            )
            oversize_hits = sum(1 for f in oversize if f.reconstructs)
            peaks[tau] = result.stats.max_per_round()
            rows.append(
                [
                    tau,
                    result.partition_set.count,
                    result.partition_set.num_groups,
                    len(findings),
                    breaches,
                    oversize_hits,
                    peaks[tau],
                ]
            )
        return rows, peaks

    rows, peaks = run_once(benchmark, experiment)
    ratio_rows = [
        [
            tau,
            round(peaks[tau] / peaks[1], 2),
            tau ** 2,
        ]
        for tau in sorted(peaks)
    ]
    table = format_table(
        [
            "tau",
            "partitions",
            "groups",
            "rumors",
            "tau-coalition breaches",
            "(tau+1)-coalition hits",
            "max msgs/round",
        ],
        rows,
        title="E9  Theorem 16: coalitions of size <= tau never reconstruct",
    )
    table += "\n\n" + format_table(
        ["tau", "peak ratio vs tau=1", "tau^2 (Thm-16 budget)"],
        ratio_rows,
        title="Cost growth vs the tau^2 factor",
    )
    emit("e09_collusion_tolerance", table)
    for row in rows:
        assert row[4] == 0, "a tau-coalition reconstructed a rumor"
    # Tightness: at least one rumor falls to an oversized coalition.
    assert any(row[5] > 0 for row in rows)
    # Cost growth stays within the tau^2 budget (with slack for the
    # polylog factors and integer fanout floors).
    for tau, ratio, budget in ratio_rows:
        assert ratio <= 2.5 * budget


def test_e09_multiple_seeds_no_breach(benchmark):
    def experiment():
        breaches = 0
        rumors = 0
        for seed in range(4):
            result = run_tau(2, seed=seed)
            findings = result.confidentiality.check_coalitions(
                GreedyCoalition(), tau=2, n=N
            )
            rumors += len(findings)
            breaches += sum(1 for f in findings if f.reconstructs)
        return breaches, rumors

    breaches, rumors = run_once(benchmark, experiment)
    emit(
        "e09b_seed_sweep",
        "E9b  tau=2 greedy coalitions across 4 seeds: {} breaches / {} rumors".format(
            breaches, rumors
        ),
    )
    assert breaches == 0
