"""E9 — Theorem 16: collusion tolerance and its tau^2 cost.

Three measurements on steady traffic:

1. **Safety** — the adaptive greedy coalition of size tau never
   reconstructs any rumor (Lemma 14 via pooled knowledge).
2. **Tightness** — a coalition one larger (tau + 1) *can* reconstruct
   (one member per group of a fully distributed partition).
3. **Cost** — max per-round messages grow with tau; Theorem 16 charges a
   tau^2 factor (tau x more partitions, tau x more groups/fragments),
   which the measured growth must not exceed by more than the polylog
   slack.

The coalition analysis needs the full auditor, so it runs *inside* each
pool worker (``_tau_task``) and only a slim dict of verdicts crosses
back to the parent — the exec subsystem's generic ``run_tasks`` path.
"""

import time

import pytest

from repro.adversary.collusion import GreedyCoalition
from repro.exec.bench_io import grid_payload
from repro.exec.pool import run_tasks
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import collusion_scenario

from _util import bench_jobs, emit, lean_params, run_once

N = 16
ROUNDS = 340
DEADLINE = 64


def run_tau(tau, seed=0):
    params = lean_params(tau=tau, collusion_direct_factor=16.0)
    return run_congos_scenario(
        collusion_scenario(
            n=N,
            rounds=ROUNDS,
            seed=seed,
            tau=tau,
            deadline=DEADLINE,
            params=params,
        )
    )


def _tau_task(tau_seed):
    """Worker-side unit: run one tau/seed cell and audit its coalitions."""
    tau, seed = tau_seed
    result = run_tau(tau, seed=seed)
    findings = result.confidentiality.check_coalitions(
        GreedyCoalition(), tau=tau, n=N
    )
    oversize = result.confidentiality.check_coalitions(
        GreedyCoalition(), tau=tau + 1, n=N
    )
    return {
        "tau": tau,
        "seed": seed,
        "satisfied": result.qod.satisfied,
        "clean": result.confidentiality.is_clean(),
        "partitions": result.partition_set.count,
        "groups": result.partition_set.num_groups,
        "rumors": len(findings),
        "breaches": sum(1 for f in findings if f.reconstructs),
        "oversize_hits": sum(1 for f in oversize if f.reconstructs),
        "peak": result.stats.max_per_round(),
    }


def test_e09_collusion_tolerance(benchmark):
    taus = (1, 2, 3)

    def experiment():
        started = time.perf_counter()
        verdicts = run_tasks(
            [(tau, 0) for tau in taus], fn=_tau_task, jobs=bench_jobs()
        )
        elapsed = time.perf_counter() - started
        rows = []
        peaks = {}
        for verdict in verdicts:
            assert verdict["satisfied"]
            assert verdict["clean"]
            peaks[verdict["tau"]] = verdict["peak"]
            rows.append(
                [
                    verdict["tau"],
                    verdict["partitions"],
                    verdict["groups"],
                    verdict["rumors"],
                    verdict["breaches"],
                    verdict["oversize_hits"],
                    verdict["peak"],
                ]
            )
        return rows, peaks, elapsed

    rows, peaks, elapsed = run_once(benchmark, experiment)
    ratio_rows = [
        [
            tau,
            round(peaks[tau] / peaks[1], 2),
            tau ** 2,
        ]
        for tau in sorted(peaks)
    ]
    headers = [
        "tau",
        "partitions",
        "groups",
        "rumors",
        "tau-coalition breaches",
        "(tau+1)-coalition hits",
        "max msgs/round",
    ]
    table = format_table(
        headers,
        rows,
        title="E9  Theorem 16: coalitions of size <= tau never reconstruct",
    )
    table += "\n\n" + format_table(
        ["tau", "peak ratio vs tau=1", "tau^2 (Thm-16 budget)"],
        ratio_rows,
        title="Cost growth vs the tau^2 factor",
    )
    emit(
        "e09_collusion_tolerance",
        table,
        data={
            "grid": grid_payload(headers, rows),
            "ratios": grid_payload(
                ["tau", "peak_ratio", "tau_squared"], ratio_rows
            ),
            "timing": {"seconds": round(elapsed, 3), "jobs": bench_jobs()},
        },
    )
    for row in rows:
        assert row[4] == 0, "a tau-coalition reconstructed a rumor"
    # Tightness: at least one rumor falls to an oversized coalition.
    assert any(row[5] > 0 for row in rows)
    # Cost growth stays within the tau^2 budget (with slack for the
    # polylog factors and integer fanout floors).
    for tau, ratio, budget in ratio_rows:
        assert ratio <= 2.5 * budget


def test_e09_multiple_seeds_no_breach(benchmark):
    def experiment():
        verdicts = run_tasks(
            [(2, seed) for seed in range(4)], fn=_tau_task, jobs=bench_jobs()
        )
        breaches = sum(v["breaches"] for v in verdicts)
        rumors = sum(v["rumors"] for v in verdicts)
        return breaches, rumors

    breaches, rumors = run_once(benchmark, experiment)
    emit(
        "e09b_seed_sweep",
        "E9b  tau=2 greedy coalitions across 4 seeds: {} breaches / {} rumors".format(
            breaches, rumors
        ),
        data={"breaches": breaches, "rumors": rumors, "seeds": 4},
    )
    assert breaches == 0
