"""E1 — Theorem 1: the price of *strong* confidentiality.

Workload: the proof's oblivious layout — every process injects one rumor
in the same round; each process joins each destination set independently
with probability x/n, x = n^(1/2 - 2/c).

Claim reproduced: protocols that confine every causally dependent message
to the destination set (direct send; gossip restricted to D) pay a total
message cost tracking Omega(n * x) = Omega(n^{3/2 - 2/c}) — because the
layout gives them essentially no merging opportunities — while CONGOS
(weak confidentiality, all-process collaboration) spreads the same
deliveries over the deadline with a per-round peak that does not explode
with the pair count.
"""

import pytest

from repro.analysis.bounds import (
    strong_confidentiality_lower_bound,
    theorem1_expected_pairs,
)
from repro.audit.delivery import DeliveryAuditor
from repro.baselines.direct import direct_factory
from repro.baselines.strongly_confidential import strongly_confidential_factory
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario, run_with_factory
from repro.harness.scenarios import theorem1_scenario

from _util import emit, lean_params, run_once

C = 8
DMAX = 64
SIZES = (16, 32, 64)


def _run_baseline(kind, n, seed=0):
    scenario = theorem1_scenario(n, rounds=DMAX * 3, seed=seed, c=C, dmax=DMAX)
    delivery = DeliveryAuditor()
    if kind == "direct":
        factory = direct_factory(n, deliver_callback=delivery.record_delivery)
    else:
        factory = strongly_confidential_factory(
            n, seed=seed, deliver_callback=delivery.record_delivery
        )
    return run_with_factory(scenario, factory, delivery=delivery)


def _pair_count(result):
    return sum(len(r.dest) for r in result.delivery.rumors.values())


def test_e01_strongly_confidential_cost(benchmark):
    def experiment():
        rows = []
        for n in SIZES:
            expected_pairs = theorem1_expected_pairs(n, C)
            lb_per_round = strong_confidentiality_lower_bound(n, DMAX, epsilon=2 / C)
            for kind in ("direct", "sc-gossip"):
                result = _run_baseline(kind, n)
                pairs = _pair_count(result)
                rows.append(
                    [
                        n,
                        kind,
                        pairs,
                        round(expected_pairs, 1),
                        result.stats.total,
                        round(result.stats.total / max(1, pairs), 2),
                        result.stats.max_per_round(),
                        round(lb_per_round, 2),
                        result.qod.satisfied,
                    ]
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "n",
            "protocol",
            "pairs",
            "E[pairs]=nx",
            "total_msgs",
            "msgs/pair",
            "max/round",
            "Thm1 LB/round",
            "qod",
        ],
        rows,
        title="E1  Theorem 1 layout: strongly confidential protocols pay ~n*x total",
    )
    emit("e01_strong_confidentiality_lb", table)
    # Shape assertions: totals track the pair count (no merging headroom).
    for row in rows:
        pairs, total = row[2], row[4]
        assert total >= pairs * 0.9
        assert row[8] is True


def test_e01_congos_contrast(benchmark):
    def experiment():
        rows = []
        for n in (16, 32):
            scenario = theorem1_scenario(
                n,
                rounds=DMAX * 4,
                seed=0,
                c=C,
                dmax=DMAX,
                params=lean_params(),
            )
            result = run_congos_scenario(scenario)
            direct = _run_baseline("direct", n)
            rows.append(
                [
                    n,
                    _pair_count(result),
                    result.stats.max_per_round(),
                    direct.stats.max_per_round(),
                    result.stats.total,
                    direct.stats.total,
                    result.qod.satisfied,
                    result.confidentiality.is_clean(),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "n",
            "pairs",
            "congos max/round",
            "direct max/round",
            "congos total",
            "direct total",
            "qod",
            "confidential",
        ],
        rows,
        title=(
            "E1b  CONGOS vs direct on the same layout: weak confidentiality "
            "trades a one-round burst for pipelined collaboration"
        ),
    )
    emit("e01b_congos_contrast", table)
    for row in rows:
        assert row[6] is True and row[7] is True
