"""E3 — Lemma 5: bit partitions separate every pair of processes.

For every n in the sweep, exhaustively verifies that any two distinct
process ids land in different groups of some partition (so, if two
processes survive, at least one partition keeps both of its groups
alive), and reports the partition-count budget (ceil(log2 n)) the lemma
charges for this guarantee.
"""

import itertools

import pytest

from repro.core.partitions import BitPartitions
from repro.harness.report import format_table

from _util import emit, run_once

SIZES = (8, 16, 64, 256, 1024)


def test_e03_partition_separation(benchmark):
    def experiment():
        rows = []
        for n in SIZES:
            partitions = BitPartitions(n)
            pairs = 0
            worst_index = -1
            for p, q in itertools.combinations(range(n), 2):
                partition = partitions.separating_partition(p, q)
                assert partition is not None
                worst_index = max(worst_index, partition)
                pairs += 1
            rows.append([n, partitions.count, pairs, worst_index])
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["n", "partitions (ceil log2 n)", "pairs checked", "max partition used"],
        rows,
        title="E3  Lemma 5: every pair separated by some bit partition (exhaustive)",
    )
    emit("e03_partition_separation", table)
    for row in rows:
        assert row[3] < row[1]
