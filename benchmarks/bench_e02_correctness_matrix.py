"""E2 — Theorem 2 (Lemmas 3 and 4): probability-1 correctness matrix.

Runs CONGOS under every adversary class of the paper's model — benign,
random churn, adaptive proxy killer, whole-group killer, source killer,
rotating blackout, full-system burst — and reports, per scenario:

* confidentiality violations (must be 0 — Lemma 3);
* admissible (rumor, destination) pairs missed (must be 0 — Lemma 4);
* how deliveries happened (pipeline reassembly vs deadline fallback).
"""

import pytest

from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import (
    burst_scenario,
    churn_scenario,
    group_killer_scenario,
    proxy_killer_scenario,
    rolling_blackout_scenario,
    source_killer_scenario,
    steady_scenario,
)

from _util import emit, run_once

N = 8
ROUNDS = 400
DEADLINE = 64
SEEDS = (0, 1, 2)

SCENARIOS = [
    ("steady", steady_scenario),
    ("churn", churn_scenario),
    ("proxy-killer", proxy_killer_scenario),
    ("group-killer", group_killer_scenario),
    ("source-killer", source_killer_scenario),
    ("rolling-blackout", rolling_blackout_scenario),
    ("burst", burst_scenario),
]


def test_e02_correctness_matrix(benchmark):
    def experiment():
        rows = []
        for name, builder in SCENARIOS:
            rumors = admissible = missed = crashes = 0
            violations = {"plaintext": 0, "reconstruction": 0, "multiplicity": 0}
            paths = {}
            for seed in SEEDS:
                result = run_congos_scenario(
                    builder(n=N, rounds=ROUNDS, seed=seed, deadline=DEADLINE)
                )
                rumors += result.rumors_injected
                admissible += result.qod.admissible_pairs
                missed += len(result.qod.missed)
                crashes += result.engine.event_log.summary()["crashes"]
                for key, value in result.confidentiality.violation_counts().items():
                    violations[key] += value
                for key, value in result.qod.path_counts(admissible_only=True).items():
                    paths[key] = paths.get(key, 0) + value
            fallback = paths.get("shoot", 0)
            served = sum(paths.values())
            rows.append(
                [
                    name,
                    len(SEEDS),
                    rumors,
                    crashes,
                    admissible,
                    missed,
                    sum(violations.values()),
                    "{:.1%}".format(fallback / served) if served else "n/a",
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "scenario",
            "seeds",
            "rumors",
            "crashes",
            "admissible",
            "missed",
            "violations",
            "fallback",
        ],
        rows,
        title=(
            "E2  Correctness matrix (Theorem 2): confidentiality and QoD "
            "hold with probability 1 under every CRRI adversary"
        ),
    )
    emit("e02_correctness_matrix", table)
    for row in rows:
        assert row[5] == 0, "missed admissible deliveries in {}".format(row[0])
        assert row[6] == 0, "confidentiality violations in {}".format(row[0])
