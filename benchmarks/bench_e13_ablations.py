"""E13 — ablations of the design choices DESIGN.md calls out.

* **GD target pool** — our default samples from not-yet-hit destinations
  (makes [GD:CONFIRM] satisfiable); ``"group"`` reproduces the paper's
  literal uniform-over-the-opposite-group rule.  Both must be correct;
  the literal rule costs more messages (and, without the reconciliation,
  would leave own-group destinations unconfirmed — our GD hits them via
  the destination pool in both modes).
* **Gossip schedule** — randomized epidemic push vs the deterministic
  expander schedule (the derandomized option in the spirit of [13]).
* **Gossip fanout** — the robustness/cost dial of the substrate.
"""

import pytest

from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import churn_scenario, steady_scenario

from _util import emit, lean_params, run_once

N = 16
ROUNDS = 360
DEADLINE = 64


def run_variant(params, seed=0, faults=False, deadline=DEADLINE):
    rounds = max(ROUNDS, 3 * deadline + 160)
    if faults:
        scenario = churn_scenario(
            n=N,
            rounds=rounds,
            seed=seed,
            deadline=deadline,
            p_crash=0.01,
            p_restart=0.25,
            params=params,
        )
    else:
        scenario = steady_scenario(
            n=N, rounds=rounds, seed=seed, deadline=deadline, params=params
        )
    return run_congos_scenario(scenario)


def row_for(label, result):
    paths = result.qod.path_counts(admissible_only=True)
    served = sum(paths.values())
    return [
        label,
        result.stats.total,
        result.stats.max_per_round(),
        len(result.qod.missed),
        "{:.1%}".format(paths.get("shoot", 0) / served) if served else "n/a",
        result.confidentiality.is_clean(),
    ]


def test_e13_gd_target_pool(benchmark):
    # Deadline 256 gives three iterations per block: the destination pool
    # drains after the first hit wave and saves the later iterations'
    # sends; the literal group pool keeps sampling (possibly empty)
    # messages from the whole opposite group.
    def experiment():
        dest_pool = run_variant(
            lean_params(gd_target_pool="destinations"), deadline=256
        )
        group_pool = run_variant(lean_params(gd_target_pool="group"), deadline=256)
        return dest_pool, group_pool

    dest_pool, group_pool = run_once(benchmark, experiment)
    rows = [
        row_for("destinations (reconciled)", dest_pool),
        row_for("group (paper literal)", group_pool),
    ]
    table = format_table(
        ["gd_target_pool", "total msgs", "max/round", "missed", "fallback", "confid."],
        rows,
        title="E13a  GroupDistribution target pool ablation",
    )
    emit("e13a_gd_target_pool", table)
    assert dest_pool.qod.satisfied and group_pool.qod.satisfied
    assert dest_pool.confidentiality.is_clean()
    assert group_pool.confidentiality.is_clean()
    # The literal rule wastes sends on non-destinations.
    assert group_pool.stats.total >= dest_pool.stats.total


def test_e13_gossip_schedule(benchmark):
    def experiment():
        random_sched = run_variant(lean_params(gossip_schedule="random"), faults=True)
        expander_sched = run_variant(
            lean_params(gossip_schedule="expander"), faults=True
        )
        return random_sched, expander_sched

    random_sched, expander_sched = run_once(benchmark, experiment)
    rows = [
        row_for("random (epidemic)", random_sched),
        row_for("expander (deterministic)", expander_sched),
    ]
    table = format_table(
        ["schedule", "total msgs", "max/round", "missed", "fallback", "confid."],
        rows,
        title="E13b  Gossip substrate schedule ablation (under churn)",
    )
    emit("e13b_gossip_schedule", table)
    assert random_sched.qod.satisfied and expander_sched.qod.satisfied


def test_e13_fallback_scope(benchmark):
    """Figure 2's noted optimization: shooting only unconfirmed
    destinations saves fallback messages when the pipeline partially
    succeeded.  Substrate crippled so fallbacks actually fire."""

    def experiment():
        results = {}
        for scope in ("all", "unconfirmed"):
            params = lean_params(
                fallback_scope=scope,
                fanout_scale=0.01,
                min_fanout=1,
                gossip_fanout_scale=0.2,
            )
            results[scope] = run_variant(params, seed=4)
            assert results[scope].qod.satisfied
        return results

    results = run_once(benchmark, experiment)
    from repro.sim.messages import ServiceTags

    rows = []
    for scope, result in results.items():
        rows.append(
            [
                scope,
                result.stats.service_total(ServiceTags.CONFIDENTIAL),
                result.stats.total,
                len(result.qod.missed),
                result.confidentiality.is_clean(),
            ]
        )
    table = format_table(
        ["fallback scope", "fallback msgs", "total msgs", "missed", "confid."],
        rows,
        title="E13d  Fallback scope: shoot all vs only-unconfirmed destinations",
    )
    emit("e13d_fallback_scope", table)
    assert (
        results["unconfirmed"].stats.service_total(ServiceTags.CONFIDENTIAL)
        <= results["all"].stats.service_total(ServiceTags.CONFIDENTIAL)
    )


def test_e13_gossip_fanout(benchmark):
    def experiment():
        rows = []
        for scale in (0.5, 1.5, 3.0):
            result = run_variant(lean_params(gossip_fanout_scale=scale))
            assert result.qod.satisfied
            rows.append(row_for("scale={}".format(scale), result))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["gossip fanout", "total msgs", "max/round", "missed", "fallback", "confid."],
        rows,
        title="E13c  Substrate fanout: messages vs fallback-rate trade",
    )
    emit("e13c_gossip_fanout", table)
    totals = [row[1] for row in rows]
    assert totals == sorted(totals), "fanout should monotonically add traffic"
