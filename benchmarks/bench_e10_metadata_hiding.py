"""E10 — Section 7 extensions: the price of hiding metadata.

Two mitigations are measured against a vanilla run of the same traffic:

* **destination hiding** — each rumor becomes n-1 single-destination
  rumors (real content for destinations, chaff for the rest): message
  *counts* stay in the same regime, message *volume* (size units) grows;
* **cover traffic** — fake rumors injected alongside real ones to hide
  how many real rumors exist: cost scales with the chosen cover rate.
"""

import random

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.core.extensions import (
    CoverTrafficWorkload,
    expand_destination_hiding,
    extract_hidden_payload,
)
from repro.harness.report import format_table
from repro.harness.runner import Scenario, run_congos_scenario
from repro.harness.scenarios import steady_scenario

from _util import emit, lean_params, run_once

N = 8
ROUNDS = 320
DEADLINE = 64


def base_script(count=6, start=64, gap=16):
    rng = random.Random(42)
    script = []
    for i in range(count):
        src = i % N
        dest = set(rng.sample([p for p in range(N) if p != src], 2))
        script.append((start + i * gap, src, DEADLINE, dest))
    return script


def scenario_from_script(script, name, params):
    def workload(rng):
        return ScriptedWorkload(script, rng)

    return Scenario(
        name=name,
        n=N,
        rounds=ROUNDS,
        seed=0,
        params=params,
        workload_factory=workload,
    )


def expand_script(script):
    """Apply Section 7's destination hiding to a script."""
    rng = random.Random(99)
    expanded = []
    for index, (round_no, src, deadline, dest) in enumerate(script):
        from repro.gossip.rumor import Rumor, RumorId

        rumor = Rumor(
            rid=RumorId(src, index),
            data=b"secret-%02d" % index,
            deadline=deadline,
            dest=frozenset(dest),
            injected_at=round_no,
        )
        subs = expand_destination_hiding(rumor, N, rng)
        # One injection per process per round: spread the n-1 sub-rumors
        # over consecutive rounds at the same source.
        for offset, sub in enumerate(subs):
            expanded.append(
                (round_no + offset, src, deadline, set(sub.dest), sub.data)
            )
    return expanded


def test_e10_destination_hiding_cost(benchmark):
    params = lean_params()

    def experiment():
        plain = run_congos_scenario(
            scenario_from_script(base_script(), "plain", params)
        )
        hidden = run_congos_scenario(
            scenario_from_script(expand_script(base_script()), "dest-hidden", params)
        )
        assert plain.qod.satisfied
        assert hidden.qod.satisfied
        return plain, hidden

    plain, hidden = run_once(benchmark, experiment)
    rows = [
        [
            "plain",
            plain.rumors_injected,
            plain.stats.total,
            plain.stats.total_size,
            plain.stats.max_per_round(),
        ],
        [
            "dest-hidden",
            hidden.rumors_injected,
            hidden.stats.total,
            hidden.stats.total_size,
            hidden.stats.max_per_round(),
        ],
        [
            "overhead x",
            round(hidden.rumors_injected / plain.rumors_injected, 2),
            round(hidden.stats.total / plain.stats.total, 2),
            round(hidden.stats.total_size / plain.stats.total_size, 2),
            round(hidden.stats.max_per_round() / plain.stats.max_per_round(), 2),
        ],
    ]
    table = format_table(
        ["run", "rumors", "total msgs", "total size", "max/round"],
        rows,
        title=(
            "E10  Destination hiding (Section 7): every rumor becomes n-1 "
            "single-destination rumors"
        ),
    )
    emit("e10_destination_hiding", table)
    # Rumor count inflates by ~n-1; per-destination chaff is the price.
    assert hidden.rumors_injected == plain.rumors_injected * (N - 1)
    assert hidden.stats.total > plain.stats.total


def test_e10_chaff_really_hides(benchmark):
    """Receivers of chaff extract nothing; destinations extract payload."""

    def experiment():
        from repro.gossip.rumor import Rumor, RumorId

        rng = random.Random(0)
        rumor = Rumor(
            rid=RumorId(0, 0),
            data=b"the-plan",
            deadline=DEADLINE,
            dest=frozenset({2, 4}),
            injected_at=0,
        )
        subs = expand_destination_hiding(rumor, N, rng)
        verdicts = []
        for sub in subs:
            (dst,) = sub.dest
            verdicts.append((dst, extract_hidden_payload(sub.data)))
        return verdicts

    verdicts = run_once(benchmark, experiment)
    for dst, payload in verdicts:
        if dst in (2, 4):
            assert payload == b"the-plan"
        else:
            assert payload is None
    emit(
        "e10b_chaff",
        "E10b  chaff check: {} sub-rumors, destinations {{2,4}} extracted "
        "the payload, everyone else got None".format(len(verdicts)),
    )


def test_e10_metadata_exposure(benchmark):
    """Section 7's leak, measured: how many outsiders learn a rumor's
    existence and destination set, with and without destination hiding."""
    from repro.audit.metadata import MetadataAuditor
    from repro.core.extensions import DestinationHidingWorkload
    from repro.adversary.injection import ScriptedWorkload
    from repro.sim.rng import derive_rng

    params = lean_params()
    script = base_script()

    def run_mode(hide):
        def workload(rng):
            inner = ScriptedWorkload(script, derive_rng(3, "inner"))
            if hide:
                return DestinationHidingWorkload(inner, N, rng)
            return inner

        auditor = MetadataAuditor()
        scenario = Scenario(
            name="exposure-{}".format(hide),
            n=N,
            rounds=ROUNDS,
            seed=0,
            params=params,
            workload_factory=workload,
        )
        result = run_congos_scenario(scenario, observers=[auditor])
        assert result.qod.satisfied
        return auditor.exposure(N)

    def experiment():
        return run_mode(False), run_mode(True)

    plain, hidden = run_once(benchmark, experiment)
    rows = [
        [
            "plain",
            plain.rumors,
            plain.mean_observers_per_rumor,
            plain.dest_set_disclosures,
            plain.max_dest_set_size_seen,
        ],
        [
            "dest-hidden",
            hidden.rumors,
            hidden.mean_observers_per_rumor,
            hidden.dest_set_disclosures,
            hidden.max_dest_set_size_seen,
        ],
    ]
    table = format_table(
        [
            "run",
            "rumors",
            "mean outside observers",
            "dest-set disclosures",
            "max |D| seen by outsiders",
        ],
        rows,
        title=(
            "E10d  Metadata exposure: destination hiding collapses every "
            "observed destination set to a singleton"
        ),
    )
    emit("e10d_metadata_exposure", table)
    assert plain.max_dest_set_size_seen >= 2
    assert hidden.max_dest_set_size_seen <= 1


def test_e10_cover_traffic_cost(benchmark):
    params = lean_params()

    def experiment():
        rows = []
        for cover_rate in (0, 1, 2):
            scenario = steady_scenario(
                n=N,
                rounds=ROUNDS,
                seed=0,
                deadline=DEADLINE,
                rate=1,
                period=8,
                params=params,
                name="cover-{}".format(cover_rate),
            )
            if cover_rate:
                real_factory = scenario.workload_factory

                def workload(rng, real_factory=real_factory, rate=cover_rate):
                    real = real_factory(rng)
                    cover = CoverTrafficWorkload(
                        N,
                        random.Random(rng.random()),
                        rate=rate,
                        period=8,
                        deadline=DEADLINE,
                        start_round=real.start_round + 4,
                        stop_round=real.stop_round,
                    )
                    return ComposedAdversary([real, cover])

                scenario.workload_factory = workload
            result = run_congos_scenario(scenario)
            assert result.qod.satisfied
            rows.append(
                [
                    cover_rate,
                    result.rumors_injected,
                    result.stats.total,
                    result.stats.max_per_round(),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["cover rate", "rumors (real+fake)", "total msgs", "max/round"],
        rows,
        title="E10c  Cover traffic: hiding rumor existence costs linear overhead",
    )
    emit("e10c_cover_traffic", table)
    totals = [row[2] for row in rows]
    assert totals == sorted(totals)
