"""E7 — Theorem 12: border messages under collusion tolerance.

A tau-collusion-tolerant partition-based protocol must push at least
tau + 1 *border* fragments (copies crossing from D + {source} to
outsiders) per rumor whose fragments cover the whole rumor outside D —
otherwise tau colluders could assemble it.  We run collusion-tolerant
CONGOS on the Theorem-12 layout (same as Theorem 1's) and count border
messages with the auditor: the per-rumor border count must grow at least
linearly in tau, and the measured minimum must respect the tau + 1 floor.
"""

import pytest

from repro.analysis.bounds import collusion_lower_bound
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import theorem1_scenario

from _util import emit, lean_params, run_once

N = 16
DMAX = 64


def test_e07_border_messages(benchmark):
    def experiment():
        rows = []
        per_tau_min = {}
        for tau in (1, 2, 3):
            params = lean_params(tau=tau, collusion_direct_factor=16.0)
            scenario = theorem1_scenario(
                N, rounds=4 * DMAX, seed=0, c=8, dmax=DMAX, params=params
            )
            result = run_congos_scenario(scenario)
            assert result.qod.satisfied
            assert result.confidentiality.is_clean()
            borders = [
                result.confidentiality.border_messages.get(rid, 0)
                for rid in result.confidentiality.rumors
            ]
            pipelined = [b for b in borders if b > 0]
            per_rumor_min = min(pipelined) if pipelined else 0
            per_tau_min[tau] = per_rumor_min
            rows.append(
                [
                    tau,
                    len(borders),
                    result.confidentiality.total_border_messages,
                    per_rumor_min,
                    tau + 1,
                    round(collusion_lower_bound(N, DMAX, tau, epsilon=0.25), 2),
                ]
            )
        return rows, per_tau_min

    rows, per_tau_min = run_once(benchmark, experiment)
    table = format_table(
        [
            "tau",
            "rumors",
            "total border msgs",
            "min border/rumor",
            "Thm-12 floor (tau+1)",
            "Thm-12 LB/round",
        ],
        rows,
        title=(
            "E7  Theorem 12: fragment copies crossing the D+{src} border "
            "grow with the collusion tolerance"
        ),
    )
    emit("e07_collusion_lb", table)
    for tau, minimum in per_tau_min.items():
        assert minimum >= tau + 1, (
            "a rumor shipped fewer than tau+1 border fragments; tau "
            "colluders could reconstruct it"
        )
    totals = [row[2] for row in rows]
    assert totals == sorted(totals), "border volume should grow with tau"
