"""E6 — Theorem 11: per-round message complexity scaling.

Sweep n at fixed deadline, measure the maximum per-round message count,
divide out the polylog factor, and fit the polynomial exponent.  The
theorem predicts ``n^{1 + C/sqrt(dmin)} polylog n``: the fitted exponent
must sit well below 2 (the trivial all-pairs bound) and *decrease* as the
deadline grows.
"""

import pytest

from repro.analysis.fitting import fit_with_polylog
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario

from _util import emit, lean_params, run_once

SIZES = (16, 24, 32, 48, 64)


def max_per_round(n, deadline, seed=0):
    params = lean_params()
    result = run_congos_scenario(
        steady_scenario(
            n=n,
            rounds=3 * deadline + 128,
            seed=seed,
            deadline=deadline,
            rate=1,
            period=4,
            params=params,
        )
    )
    assert result.qod.satisfied
    return result.stats.max_per_round()


def test_e06_scaling_exponent(benchmark):
    def experiment():
        rows = []
        fits = {}
        for deadline in (64, 256):
            peaks = []
            for n in SIZES:
                peak = max_per_round(n, deadline)
                peaks.append(peak)
                rows.append([deadline, n, peak])
            fits[deadline] = fit_with_polylog(SIZES, peaks, polylog_power=2.0)
        return rows, fits

    rows, fits = run_once(benchmark, experiment)
    fit_rows = [
        [
            deadline,
            round(fit.exponent, 3),
            round(fit.r_squared, 3),
        ]
        for deadline, fit in sorted(fits.items())
    ]
    table = format_table(
        ["dline", "n", "max msgs/round"],
        rows,
        title="E6  Theorem 11: per-round peak vs n",
    )
    table += "\n\n" + format_table(
        ["dline", "fitted exponent (polylog^2 removed)", "R^2"],
        fit_rows,
        title="Power-law fit: peak ~ n^alpha * log^2 n",
    )
    emit("e06_perround_scaling", table)
    for deadline, fit in fits.items():
        assert fit.exponent < 2.0, "super-quadratic scaling at dline={}".format(
            deadline
        )
    # Longer deadlines must not scale worse than shorter ones (small
    # tolerance for fit noise at these sizes).
    assert fits[256].exponent <= fits[64].exponent + 0.15


def test_e06_deadline_sweep_at_fixed_n(benchmark):
    """At fixed n and a fixed in-flight rumor population, the per-round
    peak decreases as dmin grows.

    (A fixed *arrival rate* would not show this: longer deadlines keep
    more rumors concurrently in flight, masking the n^{C/sqrt(d)} term.
    The theorem speaks about the cost of the currently active rumors, so
    we hold the active set constant: one 8-source burst.)
    """
    from repro.adversary.injection import ScriptedWorkload
    from repro.harness.runner import Scenario

    n = 32
    params = lean_params()

    def experiment():
        rows = []
        for deadline in (64, 128, 256, 512):
            inject_at = 2 * deadline
            script = [
                (inject_at, src, deadline, {(src + 5) % n, (src + 9) % n})
                for src in range(8)
            ]

            def workload(rng, script=script):
                return ScriptedWorkload(script, rng)

            scenario = Scenario(
                name="e6b-{}".format(deadline),
                n=n,
                rounds=inject_at + 2 * deadline,
                seed=0,
                params=params,
                workload_factory=workload,
            )
            result = run_congos_scenario(scenario)
            assert result.qod.satisfied
            rows.append([deadline, result.stats.max_per_round()])
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["dline", "max msgs/round (n=32, 8-rumor burst)"],
        rows,
        title="E6b  Longer deadlines buy cheaper rounds (dmin dependence)",
    )
    emit("e06b_deadline_sweep", table)
    peaks = [row[1] for row in rows]
    assert peaks[-1] <= peaks[0]
