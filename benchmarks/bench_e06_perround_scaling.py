"""E6 — Theorem 11: per-round message complexity scaling.

Sweep n at fixed deadline, measure the maximum per-round message count,
divide out the polylog factor, and fit the polynomial exponent.  The
theorem predicts ``n^{1 + C/sqrt(dmin)} polylog n``: the fitted exponent
must sit well below 2 (the trivial all-pairs bound) and *decrease* as the
deadline grows.

The grid cells are independent simulations, so they run as RunSpecs on
the exec pool (``REPRO_BENCH_JOBS`` controls fan-out); results are
bit-identical to the old serial loop because every cell derives its
randomness from its own spec.
"""

import time

import pytest

from repro.analysis.fitting import fit_with_polylog
from repro.exec.bench_io import grid_payload, profile_payload
from repro.exec.pool import run_specs
from repro.exec.tasks import RunSpec
from repro.harness.report import format_table

from _util import bench_jobs, emit, lean_params, run_once

SIZES = (16, 24, 32, 48, 64)
DEADLINES = (64, 256)


def cell_spec(n, deadline, seed=0):
    return RunSpec.make(
        "steady",
        seed=seed,
        n=n,
        rounds=3 * deadline + 128,
        deadline=deadline,
        rate=1,
        period=4,
        params=lean_params(),
    )


def test_e06_scaling_exponent(benchmark):
    specs = [cell_spec(n, deadline) for deadline in DEADLINES for n in SIZES]

    def experiment():
        started = time.perf_counter()
        records = run_specs(specs, jobs=bench_jobs())
        elapsed = time.perf_counter() - started
        rows = []
        fits = {}
        cursor = 0
        for deadline in DEADLINES:
            peaks = []
            for n in SIZES:
                record = records[cursor]
                cursor += 1
                assert record.qod_satisfied
                peaks.append(record.peak)
                rows.append([deadline, n, record.peak])
            fits[deadline] = fit_with_polylog(SIZES, peaks, polylog_power=2.0)
        return rows, fits, elapsed, records

    rows, fits, elapsed, records = run_once(benchmark, experiment)
    fit_rows = [
        [
            deadline,
            round(fit.exponent, 3),
            round(fit.r_squared, 3),
        ]
        for deadline, fit in sorted(fits.items())
    ]
    headers = ["dline", "n", "max msgs/round"]
    table = format_table(
        headers,
        rows,
        title="E6  Theorem 11: per-round peak vs n",
    )
    table += "\n\n" + format_table(
        ["dline", "fitted exponent (polylog^2 removed)", "R^2"],
        fit_rows,
        title="Power-law fit: peak ~ n^alpha * log^2 n",
    )
    emit(
        "e06_perround_scaling",
        table,
        data={
            "grid": grid_payload(headers, rows),
            "fits": {
                str(deadline): {
                    "exponent": fit.exponent,
                    "r_squared": fit.r_squared,
                }
                for deadline, fit in fits.items()
            },
            "timing": {"seconds": round(elapsed, 3), "jobs": bench_jobs()},
            "profile": profile_payload(records),
        },
    )
    for deadline, fit in fits.items():
        assert fit.exponent < 2.0, "super-quadratic scaling at dline={}".format(
            deadline
        )
    # Longer deadlines must not scale worse than shorter ones (small
    # tolerance for fit noise at these sizes).
    assert fits[256].exponent <= fits[64].exponent + 0.15


def test_e06_deadline_sweep_at_fixed_n(benchmark):
    """At fixed n and a fixed in-flight rumor population, the per-round
    peak decreases as dmin grows.

    (A fixed *arrival rate* would not show this: longer deadlines keep
    more rumors concurrently in flight, masking the n^{C/sqrt(d)} term.
    The theorem speaks about the cost of the currently active rumors, so
    we hold the active set constant: one 8-source burst.)
    """
    n = 32
    deadlines = (64, 128, 256, 512)
    specs = [
        RunSpec.make(
            "scripted-burst",
            seed=0,
            n=n,
            rounds=4 * deadline,
            deadline=deadline,
            sources=8,
            inject_round=2 * deadline,
            params=lean_params(),
            name="e6b-{}".format(deadline),
        )
        for deadline in deadlines
    ]

    def experiment():
        started = time.perf_counter()
        records = run_specs(specs, jobs=bench_jobs())
        elapsed = time.perf_counter() - started
        rows = []
        for deadline, record in zip(deadlines, records):
            assert record.qod_satisfied
            rows.append([deadline, record.peak])
        return rows, elapsed, records

    rows, elapsed, records = run_once(benchmark, experiment)
    headers = ["dline", "max msgs/round (n=32, 8-rumor burst)"]
    table = format_table(
        headers,
        rows,
        title="E6b  Longer deadlines buy cheaper rounds (dmin dependence)",
    )
    emit(
        "e06b_deadline_sweep",
        table,
        data={
            "grid": grid_payload(headers, rows),
            "timing": {"seconds": round(elapsed, 3), "jobs": bench_jobs()},
            "profile": profile_payload(records),
        },
    )
    peaks = [row[1] for row in rows]
    assert peaks[-1] <= peaks[0]
