"""E5 — Lemmas 8, 9 and 10: the pipeline timeline.

For a single rumor injected at a known round, the paper claims (w.h.p.):

* fragments reach both groups within 2 blocks of dline/4 (Lemma 8);
* every destination holds all fragments within 3 blocks (Lemma 9);
* the source sees its confirmation by round t + d - 1 (Lemma 10).

We measure the actual rounds at which each stage completes across seeds
and injection offsets, under benign and adversarial conditions, and
compare against the per-lemma budgets.
"""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.delivery import DeliveryAuditor
from repro.core.congos import build_partition_set, congos_factory
from repro.harness.report import format_table
from repro.harness.runner import Scenario, run_congos_scenario
from repro.sim.rng import derive_rng

from _util import emit, lean_params, run_once

N = 16
DLINE = 64
BLOCK = DLINE // 4


def timeline_scenario(inject_at, seed, dest, params):
    def workload(rng):
        return ScriptedWorkload([(inject_at, 0, DLINE, set(dest))], rng)

    return Scenario(
        name="timeline",
        n=N,
        rounds=inject_at + 2 * DLINE,
        seed=seed,
        params=params,
        workload_factory=workload,
    )


def test_e05_delivery_timeline(benchmark):
    params = lean_params()
    dest = (3, 5, 10)

    def experiment():
        rows = []
        for offset_label, offset in (
            ("block start", 0),
            ("mid block", BLOCK // 2),
            ("block end", BLOCK - 1),
        ):
            for seed in (0, 1, 2):
                inject_at = 2 * DLINE + offset
                result = run_congos_scenario(
                    timeline_scenario(inject_at, seed, dest, params)
                )
                report = result.qod
                assert report.satisfied
                latencies = report.latencies()
                coordinator = result.engine.behavior(0).coordinator
                confirm_round = None
                # The cache entry is removed on fallback; confirmed ones stay.
                for rid, cached in coordinator.rumor_cache.items():
                    confirm_round = cached.confirmed_at
                rows.append(
                    [
                        offset_label,
                        seed,
                        inject_at,
                        max(latencies),
                        3 * BLOCK + 2 * BLOCK,  # Lemma-9 budget + alignment slack
                        (confirm_round - inject_at) if confirm_round else None,
                        DLINE - 1,
                        report.path_counts(),
                    ]
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "injection",
            "seed",
            "round",
            "max delivery latency",
            "Lemma-9 budget",
            "confirm latency",
            "Lemma-10 budget",
            "paths",
        ],
        rows,
        title="E5  Pipeline timeline vs Lemma 8/9/10 budgets (single rumor)",
    )
    emit("e05_delivery_timeline", table)
    for row in rows:
        assert row[3] <= row[4], "delivery exceeded the Lemma-9 budget"
        assert row[5] is not None and row[5] <= row[6], "confirmation late"


def test_e05_timeline_under_proxy_killer(benchmark):
    """Lemma 8's adversary: proxies crash on contact; the retry loop must
    still land everything inside the deadline."""
    from repro.adversary.adaptive import ProxyKillerAdversary

    params = lean_params()
    dest = (3, 5)

    def experiment():
        rows = []
        for seed in (0, 1):
            inject_at = 2 * DLINE
            scenario = timeline_scenario(inject_at, seed, dest, params)
            scenario.fault_factory = lambda rng, partitions, n: ProxyKillerAdversary(
                budget_per_round=1, total_budget=4, restart_after=DLINE // 2
            )
            result = run_congos_scenario(scenario)
            assert result.qod.satisfied
            rows.append(
                [
                    seed,
                    result.engine.event_log.summary()["crashes"],
                    max(result.qod.latencies()),
                    DLINE,
                    result.qod.path_counts(),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["seed", "proxy kills", "max latency", "deadline", "paths"],
        rows,
        title="E5b  Timeline under the adaptive proxy killer (Lemma 8's adversary)",
    )
    emit("e05b_timeline_proxy_killer", table)
    for row in rows:
        assert row[2] <= row[3]
