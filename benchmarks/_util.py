"""Shared helpers for the benchmark suite.

Each bench regenerates one experiment from DESIGN.md's per-experiment
index (E1..E13) and emits its table both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture; EXPERIMENTS.md records the reference run.  Since the exec
subsystem landed, :func:`emit` also writes a timestamped, machine-
readable ``BENCH_<name>.json`` sidecar (optionally carrying structured
``data``) so the perf trajectory can be tracked by tooling, not eyeballs.

Benches use ``benchmark.pedantic(fn, rounds=1, iterations=1)``: the
subject is a whole simulation, so wall-clock per run is the meaningful
timing and repetition is wasteful.  Grid-shaped benches fan their cells
out over the exec pool; ``REPRO_BENCH_JOBS`` overrides the worker count
(default: cpu count).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from repro.exec.bench_io import write_bench_json

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_jobs(default: Optional[int] = None) -> int:
    """Worker count for bench grids: $REPRO_BENCH_JOBS or cpu count."""
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        return max(1, int(env))
    if default is not None:
        return default
    return os.cpu_count() or 1


def emit(name: str, text: str, data: Optional[Dict[str, object]] = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Writes ``<name>.txt`` (the human-readable table, unchanged) and a
    ``BENCH_<name>.json`` sidecar holding the table plus any structured
    ``data`` the bench provides (grids, fits, timings).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print()
    print(text)
    path = os.path.join(RESULTS_DIR, "{}.txt".format(name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    payload: Dict[str, object] = {"table": text}
    if data:
        payload.update(data)
    write_bench_json(name, payload, results_dir=RESULTS_DIR)


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def lean_params(**overrides):
    from repro.core.config import CongosParams

    return CongosParams.lean(**overrides)
