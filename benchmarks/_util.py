"""Shared helpers for the benchmark suite.

Each bench regenerates one experiment from DESIGN.md's per-experiment
index (E1..E13) and emits its table both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture; EXPERIMENTS.md records the reference run.

Benches use ``benchmark.pedantic(fn, rounds=1, iterations=1)``: the
subject is a whole simulation, so wall-clock per run is the meaningful
timing and repetition is wasteful.
"""

from __future__ import annotations

import os
from typing import Callable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print()
    print(text)
    path = os.path.join(RESULTS_DIR, "{}.txt".format(name))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def run_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def lean_params(**overrides):
    from repro.core.config import CongosParams

    return CongosParams.lean(**overrides)
