"""E14 — the continuous-gossip black box, studied in isolation.

CONGOS consumes the substrate of [13] purely through its interface
(DESIGN.md §2).  This bench characterises our implementation of that
interface so the top-level numbers can be decomposed:

* saturation speed: rounds for one item to reach a whole group, vs the
  O(log n) epidemic prediction;
* schedule comparison: randomized push vs the deterministic expander;
* the reliable-mode guarantee: with the origin flush, admissible items
  are delivered by their deadline in 100% of trials even with a starved
  fanout.
"""

import math
import random

import pytest

from repro.gossip.continuous import ContinuousGossip
from repro.harness.report import format_table

from _util import emit, run_once


class Harness:
    """Standalone synchronous loop over one gossip instance per member."""

    def __init__(self, size, seed=0, **kwargs):
        self.size = size
        self.services = {}
        self.first_delivery = {}
        self.sent = 0
        self.round = 0
        for pid in range(size):
            self.services[pid] = ContinuousGossip(
                pid=pid,
                n=size,
                channel="bench",
                scope=range(size),
                rng=random.Random(seed * 977 + pid),
                deliver=self._cb(pid),
                **kwargs,
            )

    def _cb(self, pid):
        def callback(round_no, item):
            self.first_delivery.setdefault(pid, round_no)

        return callback

    def run_round(self):
        outgoing = []
        for pid in range(self.size):
            outgoing.extend(self.services[pid].send_phase(self.round))
        self.sent += len(outgoing)
        for message in outgoing:
            self.services[message.dst].on_message(self.round, message)
        for pid in range(self.size):
            self.services[pid].end_round(self.round)
        self.round += 1

    def saturation_round(self):
        if len(self.first_delivery) < self.size:
            return None
        return max(self.first_delivery.values())


def saturate(size, schedule, seed, deadline=64):
    harness = Harness(size, seed=seed, schedule=schedule)
    harness.services[0].inject(0, "item", deadline=deadline, dest=range(size))
    while harness.saturation_round() is None and harness.round < deadline:
        harness.run_round()
    return harness.saturation_round(), harness.sent


def test_e14_saturation_speed(benchmark):
    def experiment():
        rows = []
        for size in (16, 32, 64, 128):
            for schedule in ("random", "expander"):
                rounds_needed = []
                messages = []
                for seed in (0, 1, 2):
                    sat, sent = saturate(size, schedule, seed)
                    assert sat is not None, "group failed to saturate"
                    rounds_needed.append(sat)
                    messages.append(sent)
                rows.append(
                    [
                        size,
                        schedule,
                        max(rounds_needed),
                        round(2 * math.log2(size), 1),
                        round(sum(messages) / len(messages), 0),
                    ]
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "group size",
            "schedule",
            "worst saturation (rounds)",
            "2*log2(n) reference",
            "mean msgs to saturate",
        ],
        rows,
        title=(
            "E14  Substrate saturation: epidemic push informs a group in "
            "O(log n) rounds, both schedules"
        ),
    )
    emit("e14_substrate_saturation", table)
    for row in rows:
        assert row[2] <= 3 * math.log2(row[0]) + 4


def test_e14_reliable_interface_guarantee(benchmark):
    """The black box promises probability-1 delivery of admissible items
    (reliable mode); verify across trials with a starved fanout."""

    def experiment():
        failures = 0
        trials = 20
        for seed in range(trials):
            harness = Harness(24, seed=seed, fanout_scale=0.05, reliable=True)
            harness.services[0].inject(0, "item", deadline=6, dest=range(24))
            for _ in range(7):
                harness.run_round()
            if harness.saturation_round() is None:
                failures += 1
        return failures, trials

    failures, trials = run_once(benchmark, experiment)
    emit(
        "e14b_reliable_guarantee",
        "E14b  reliable-mode delivery with starved fanout: {}/{} trials "
        "missed the deadline (must be 0)".format(failures, trials),
    )
    assert failures == 0
