"""E4 — Lemma 7 ([PROXY:MESSAGES] + [GD:MESSAGES]).

The Proxy and GroupDistribution services collectively send at most
``O(n^{1+C/sqrt(dline)} log n)`` messages per round (gossip substrate
excluded).  We run steady traffic, take the maximum per-round count
restricted to the proxy/GD service tags, and compare it to the formula
instantiated with the *configured* constants — the measured peak must sit
below the budget the services are allowed (they send
``formula / |collaborators|`` each, and collaborators can only be
*under*-counted transiently).
"""

import math

import pytest

from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import churn_scenario, steady_scenario
from repro.sim.messages import ServiceTags

from _util import emit, lean_params, run_once

DEADLINE = 64
SIZES = (16, 32, 64)


def formula(params, n, dline):
    """The Lemma-7 budget with the run's own constants.

    Per partition, each of the two groups collectively sends at most the
    full fanout formula for each of the two roles (proxy requests and GD
    deliveries): every sender transmits ``formula / |collaborators|`` and
    the collaborator census covers the senders.  Budget =
    2 roles x 2 groups x ceil(log2 n) partitions x formula.
    """
    per_group_total = params.service_fanout(n, dline, collaborators=1)
    partitions = max(1, math.ceil(math.log2(n)))
    return 2 * 2 * partitions * per_group_total


def test_e04_proxy_gd_bound(benchmark):
    params = lean_params()

    def experiment():
        rows = []
        for n in SIZES:
            for scenario_builder, label in (
                (steady_scenario, "fault-free"),
                (churn_scenario, "churn"),
            ):
                result = run_congos_scenario(
                    scenario_builder(
                        n=n, rounds=360, seed=0, deadline=DEADLINE, params=params
                    )
                )
                measured = result.stats.max_per_round(
                    services=[ServiceTags.PROXY, ServiceTags.GROUP_DISTRIBUTION]
                )
                budget = formula(params, n, DEADLINE)
                rows.append(
                    [
                        n,
                        label,
                        measured,
                        budget,
                        round(measured / budget, 3),
                        result.qod.satisfied,
                    ]
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["n", "faults", "max Proxy+GD /round", "Lemma-7 budget", "ratio", "qod"],
        rows,
        title=(
            "E4  Lemma 7: Proxy + GroupDistribution per-round messages stay "
            "inside the O(n^{1+C/sqrt(d)} log n) budget"
        ),
    )
    emit("e04_service_message_bounds", table)
    for row in rows:
        assert row[4] <= 1.0, "Lemma-7 budget exceeded at n={} ({})".format(
            row[0], row[1]
        )


def test_e04_deadline_dependence(benchmark):
    """Shorter deadlines must cost more per round (the exponent term)."""
    params = lean_params()

    def experiment():
        rows = []
        for dline in (64, 256, 512):
            result = run_congos_scenario(
                steady_scenario(
                    n=32,
                    rounds=3 * dline + 200,
                    seed=0,
                    deadline=dline,
                    params=params,
                )
            )
            rows.append(
                [
                    dline,
                    result.stats.max_per_round(
                        services=[ServiceTags.PROXY, ServiceTags.GROUP_DISTRIBUTION]
                    ),
                    params.service_fanout(32, dline, collaborators=1),
                    result.qod.satisfied,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["dline", "max Proxy+GD /round", "per-proc formula", "qod"],
        rows,
        title="E4b  Deadline dependence: the n^{C/sqrt(d)} factor shrinks with d",
    )
    emit("e04b_deadline_dependence", table)
    formulas = [row[2] for row in rows]
    assert formulas == sorted(formulas, reverse=True)
