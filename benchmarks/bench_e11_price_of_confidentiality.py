"""E11 — the price of confidentiality (Section 1's motivating comparison).

One workload, four ways to serve it:

* **CONGOS** — confidential, collaborative (the paper's contribution);
* **plain gossip** — cheap and robust, but every process may learn every
  rumor (the auditor counts the leaks);
* **direct send** — strongly confidential, no collaboration, no
  fault-tolerance margin; pays |D| per rumor up front;
* **LKH key tree** (cost model) — the cryptographic alternative: cheap
  for stable groups, expensive when every rumor has a fresh destination
  set and crashes force re-keying.

The three simulations are independent, so they run concurrently as pool
tasks; each worker ships back a slim metrics dict (plus, for CONGOS, the
``(source, destinations)`` pairs the LKH cost models replay — the cost
models themselves are cheap and run in the parent).
"""

import time

import pytest

from repro.audit.delivery import DeliveryAuditor
from repro.baselines.direct import direct_factory
from repro.baselines.key_tree import KeyTreeCostModel
from repro.baselines.plain_gossip import plain_gossip_factory
from repro.exec.bench_io import grid_payload
from repro.exec.pool import run_tasks
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario, run_with_factory
from repro.harness.scenarios import steady_scenario

from _util import bench_jobs, emit, lean_params, run_once

N = 16
ROUNDS = 360
DEADLINE = 64


def build_scenario(name):
    return steady_scenario(
        n=N,
        rounds=ROUNDS,
        seed=0,
        deadline=DEADLINE,
        rate=1,
        period=4,
        dest_size=4,
        params=lean_params(),
        name=name,
    )


def run_baseline(kind):
    scenario = build_scenario(kind)
    delivery = DeliveryAuditor()
    if kind == "direct":
        factory = direct_factory(N, deliver_callback=delivery.record_delivery)
    else:
        factory = plain_gossip_factory(
            N, seed=0, deliver_callback=delivery.record_delivery
        )
    return run_with_factory(scenario, factory, delivery=delivery)


def _protocol_task(kind):
    """Worker-side unit: one full simulation, slim metrics back."""
    if kind == "congos":
        result = run_congos_scenario(build_scenario("congos"))
        rumor_pairs = [
            (rumor.rid.src, sorted(rumor.dest))
            for rumor in result.delivery.rumors.values()
        ]
    else:
        result = run_baseline(kind)
        rumor_pairs = None
    latencies = result.qod.latencies()
    return {
        "kind": kind,
        "total": result.stats.total,
        "peak": result.stats.max_per_round(),
        "satisfied": result.qod.satisfied,
        "mean_latency": (
            round(sum(latencies) / len(latencies), 1) if latencies else None
        ),
        "leaks": result.confidentiality.violation_counts()["plaintext"],
        "rumor_count": result.rumors_injected,
        "rumor_pairs": rumor_pairs,
    }


def key_tree_costs(rumor_pairs, mode):
    model = KeyTreeCostModel(N, mode=mode)
    for src, dest in rumor_pairs:
        model.on_rumor(src, dest)
    return model.report


def test_e11_price_of_confidentiality(benchmark):
    def experiment():
        started = time.perf_counter()
        congos, plain, direct = run_tasks(
            ["congos", "plain", "direct"], fn=_protocol_task, jobs=bench_jobs()
        )
        lkh_cover = key_tree_costs(congos["rumor_pairs"], "subset-cover")
        lkh_rekey = key_tree_costs(congos["rumor_pairs"], "rekey")
        elapsed = time.perf_counter() - started
        return congos, plain, direct, lkh_cover, lkh_rekey, elapsed

    congos, plain, direct, lkh_cover, lkh_rekey, elapsed = run_once(
        benchmark, experiment
    )
    assert congos["satisfied"] and plain["satisfied"] and direct["satisfied"]
    rumor_count = congos["rumor_count"]

    def sim_row(label, verdict):
        return [
            label,
            verdict["total"],
            round(verdict["total"] / rumor_count, 1),
            verdict["peak"],
            verdict["mean_latency"],
            verdict["leaks"],
        ]

    rows = [
        sim_row("CONGOS", congos),
        sim_row("plain gossip", plain),
        sim_row("direct send", direct),
        [
            "LKH subset-cover",
            lkh_cover.total_messages,
            round(lkh_cover.mean_per_rumor(), 1),
            "n/a",
            "n/a",
            0,
        ],
        [
            "LKH re-key",
            lkh_rekey.total_messages,
            round(lkh_rekey.mean_per_rumor(), 1),
            "n/a",
            "n/a",
            0,
        ],
    ]
    headers = [
        "protocol",
        "total msgs",
        "msgs/rumor",
        "max/round",
        "mean latency",
        "plaintext leaks",
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "E11  Price of confidentiality: same workload across CONGOS, "
            "plain gossip, direct send and the LKH crypto model"
        ),
    )
    emit(
        "e11_price_of_confidentiality",
        table,
        data={
            "grid": grid_payload(headers, rows),
            "rumor_count": rumor_count,
            "timing": {"seconds": round(elapsed, 3), "jobs": bench_jobs()},
        },
    )
    # The claims being reproduced:
    assert congos["leaks"] == 0 and direct["leaks"] == 0
    assert plain["leaks"] > 0, "plain gossip must leak — that is its point"
    # Under per-rumor random destination sets, LKH re-keying costs a
    # log-factor more than the bare payload multicast per rumor.
    assert lkh_rekey.mean_per_rumor() > 4


def test_e11_lkh_churn_amplification(benchmark):
    """Crashes force the key server to rotate every affected group key —
    the paper's 'efficient secret key maintenance under dynamic crashes'
    concern, quantified."""

    def experiment():
        import random

        rng = random.Random(3)
        stable = KeyTreeCostModel(N, mode="rekey")
        churned = KeyTreeCostModel(N, mode="rekey")
        group = rng.sample(range(1, N), 5)
        for step in range(40):
            stable.on_rumor(0, group)
            churned.on_rumor(0, group)
            if step % 4 == 0:
                churned.on_crash(rng.choice(group))
        return stable.report, churned.report

    stable, churned = run_once(benchmark, experiment)
    rows = [
        ["stable group", stable.total_messages, stable.churn_rekey_messages],
        ["with churn", churned.total_messages, churned.churn_rekey_messages],
    ]
    headers = ["regime", "total msgs", "churn re-key msgs"]
    table = format_table(
        headers,
        rows,
        title="E11b  LKH under churn: every crash forces root-path re-keying",
    )
    emit(
        "e11b_lkh_churn",
        table,
        data={"grid": grid_payload(headers, rows)},
    )
    assert churned.total_messages > stable.total_messages
