"""E11 — the price of confidentiality (Section 1's motivating comparison).

One workload, four ways to serve it:

* **CONGOS** — confidential, collaborative (the paper's contribution);
* **plain gossip** — cheap and robust, but every process may learn every
  rumor (the auditor counts the leaks);
* **direct send** — strongly confidential, no collaboration, no
  fault-tolerance margin; pays |D| per rumor up front;
* **LKH key tree** (cost model) — the cryptographic alternative: cheap
  for stable groups, expensive when every rumor has a fresh destination
  set and crashes force re-keying.
"""

import pytest

from repro.audit.delivery import DeliveryAuditor
from repro.baselines.direct import direct_factory
from repro.baselines.key_tree import KeyTreeCostModel
from repro.baselines.plain_gossip import plain_gossip_factory
from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario, run_with_factory
from repro.harness.scenarios import steady_scenario

from _util import emit, lean_params, run_once

N = 16
ROUNDS = 360
DEADLINE = 64


def build_scenario(name):
    return steady_scenario(
        n=N,
        rounds=ROUNDS,
        seed=0,
        deadline=DEADLINE,
        rate=1,
        period=4,
        dest_size=4,
        params=lean_params(),
        name=name,
    )


def run_baseline(kind):
    scenario = build_scenario(kind)
    delivery = DeliveryAuditor()
    if kind == "direct":
        factory = direct_factory(N, deliver_callback=delivery.record_delivery)
    else:
        factory = plain_gossip_factory(
            N, seed=0, deliver_callback=delivery.record_delivery
        )
    return run_with_factory(scenario, factory, delivery=delivery)


def key_tree_costs(rumors, mode):
    model = KeyTreeCostModel(N, mode=mode)
    for rumor in rumors:
        model.on_rumor(rumor.rid.src, rumor.dest)
    return model.report


def mean_latency(result):
    latencies = result.qod.latencies()
    return round(sum(latencies) / len(latencies), 1) if latencies else None


def test_e11_price_of_confidentiality(benchmark):
    def experiment():
        congos = run_congos_scenario(build_scenario("congos"))
        plain = run_baseline("plain")
        direct = run_baseline("direct")
        rumors = list(congos.delivery.rumors.values())
        lkh_cover = key_tree_costs(rumors, "subset-cover")
        lkh_rekey = key_tree_costs(rumors, "rekey")
        return congos, plain, direct, lkh_cover, lkh_rekey

    congos, plain, direct, lkh_cover, lkh_rekey = run_once(benchmark, experiment)
    assert congos.qod.satisfied and plain.qod.satisfied and direct.qod.satisfied
    rumor_count = congos.rumors_injected

    def leak(result):
        return result.confidentiality.violation_counts()["plaintext"]

    rows = [
        [
            "CONGOS",
            congos.stats.total,
            round(congos.stats.total / rumor_count, 1),
            congos.stats.max_per_round(),
            mean_latency(congos),
            leak(congos),
        ],
        [
            "plain gossip",
            plain.stats.total,
            round(plain.stats.total / rumor_count, 1),
            plain.stats.max_per_round(),
            mean_latency(plain),
            leak(plain),
        ],
        [
            "direct send",
            direct.stats.total,
            round(direct.stats.total / rumor_count, 1),
            direct.stats.max_per_round(),
            mean_latency(direct),
            leak(direct),
        ],
        [
            "LKH subset-cover",
            lkh_cover.total_messages,
            round(lkh_cover.mean_per_rumor(), 1),
            "n/a",
            "n/a",
            0,
        ],
        [
            "LKH re-key",
            lkh_rekey.total_messages,
            round(lkh_rekey.mean_per_rumor(), 1),
            "n/a",
            "n/a",
            0,
        ],
    ]
    table = format_table(
        [
            "protocol",
            "total msgs",
            "msgs/rumor",
            "max/round",
            "mean latency",
            "plaintext leaks",
        ],
        rows,
        title=(
            "E11  Price of confidentiality: same workload across CONGOS, "
            "plain gossip, direct send and the LKH crypto model"
        ),
    )
    emit("e11_price_of_confidentiality", table)
    # The claims being reproduced:
    assert leak(congos) == 0 and leak(direct) == 0
    assert leak(plain) > 0, "plain gossip must leak — that is its point"
    # Under per-rumor random destination sets, LKH re-keying costs a
    # log-factor more than the bare payload multicast per rumor.
    assert lkh_rekey.mean_per_rumor() > 4


def test_e11_lkh_churn_amplification(benchmark):
    """Crashes force the key server to rotate every affected group key —
    the paper's 'efficient secret key maintenance under dynamic crashes'
    concern, quantified."""

    def experiment():
        import random

        rng = random.Random(3)
        stable = KeyTreeCostModel(N, mode="rekey")
        churned = KeyTreeCostModel(N, mode="rekey")
        group = rng.sample(range(1, N), 5)
        for step in range(40):
            stable.on_rumor(0, group)
            churned.on_rumor(0, group)
            if step % 4 == 0:
                churned.on_crash(rng.choice(group))
        return stable.report, churned.report

    stable, churned = run_once(benchmark, experiment)
    rows = [
        ["stable group", stable.total_messages, stable.churn_rekey_messages],
        ["with churn", churned.total_messages, churned.churn_rekey_messages],
    ]
    table = format_table(
        ["regime", "total msgs", "churn re-key msgs"],
        rows,
        title="E11b  LKH under churn: every crash forces root-path re-keying",
    )
    emit("e11b_lkh_churn", table)
    assert churned.total_messages > stable.total_messages
