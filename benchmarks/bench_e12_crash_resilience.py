"""E12 — robustness under increasing churn (Section 1's Robustness claim).

Crash-rate sweep: at every level, zero admissible deliveries may be
missed (probability-1 QoD) and confidentiality stays intact; what *is*
allowed to degrade is the delivered fraction of *inadmissible* pairs and
the fallback rate, which the table reports.
"""

import pytest

from repro.harness.report import format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import churn_scenario, steady_scenario

from _util import emit, lean_params, run_once

N = 12
ROUNDS = 400
DEADLINE = 64
CRASH_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)


def test_e12_crash_resilience(benchmark):
    params = lean_params()

    def experiment():
        rows = []
        for p_crash in CRASH_RATES:
            if p_crash == 0.0:
                scenario = steady_scenario(
                    n=N, rounds=ROUNDS, seed=1, deadline=DEADLINE, params=params
                )
            else:
                scenario = churn_scenario(
                    n=N,
                    rounds=ROUNDS,
                    seed=1,
                    deadline=DEADLINE,
                    p_crash=p_crash,
                    p_restart=0.25,
                    params=params,
                )
            result = run_congos_scenario(scenario)
            report = result.qod
            pairs = len(report.outcomes)
            admissible = report.admissible_pairs
            delivered_all = sum(1 for o in report.outcomes if o.delivered)
            paths = report.path_counts(admissible_only=True)
            served = sum(paths.values())
            rows.append(
                [
                    p_crash,
                    result.engine.event_log.summary()["crashes"],
                    pairs,
                    admissible,
                    len(report.missed),
                    "{:.1%}".format(delivered_all / pairs) if pairs else "n/a",
                    "{:.1%}".format(paths.get("shoot", 0) / served)
                    if served
                    else "n/a",
                    result.stats.max_per_round(),
                    result.confidentiality.is_clean(),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        [
            "p_crash",
            "crashes",
            "pairs",
            "admissible",
            "missed adm.",
            "delivered (all)",
            "fallback",
            "max/round",
            "confidential",
        ],
        rows,
        title=(
            "E12  Crash-rate sweep: admissible deliveries never missed; "
            "only best-effort coverage degrades"
        ),
    )
    emit("e12_crash_resilience", table)
    for row in rows:
        assert row[4] == 0, "missed admissible deliveries at p={}".format(row[0])
        assert row[8] is True
    # Churn shrinks the admissible set — the sweep must show the trend.
    admissible_counts = [row[3] for row in rows]
    assert admissible_counts[-1] <= admissible_counts[0]
