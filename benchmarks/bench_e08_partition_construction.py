"""E8 — Lemma 13: random partition families satisfy both properties.

Lemma 13 proves (probabilistic method) that ``c tau log n`` random
(tau+1)-group partitions exist with Partition-Property 1 (no empty
groups) and Property 2 (every large-enough survivor set covers every
group of some partition).  We *construct* families by sampling, validate
Property 1 exactly, and measure Property 2 over exhaustive (small n) or
Monte-Carlo survivor sets.
"""

import random

import pytest

from repro.core.partitions import (
    RandomPartitions,
    property2_exact,
    property2_monte_carlo,
    property2_set_size,
)
from repro.harness.report import format_table

from _util import emit, run_once

TRIALS = 400


def test_e08_partition_properties(benchmark):
    def experiment():
        rows = []
        for n, tau in ((16, 1), (16, 2), (64, 2), (64, 3), (128, 4)):
            rng = random.Random(1000 * n + tau)
            partitions = RandomPartitions.generate(n, tau, rng)
            set_size = property2_set_size(n, tau, c_prime=1.0)
            exact = property2_exact(partitions, set_size, limit=20_000)
            if exact is None:
                satisfied, trials = property2_monte_carlo(
                    partitions, set_size, TRIALS, random.Random(7)
                )
                p2 = "{}/{} sampled".format(satisfied, trials)
                p2_ok = satisfied == trials
            else:
                p2 = "exact: {}".format(exact)
                p2_ok = bool(exact)
            rows.append(
                [
                    n,
                    tau,
                    partitions.count,
                    partitions.num_groups,
                    set_size,
                    "ok",  # property 1 validated at construction
                    p2,
                    p2_ok,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["n", "tau", "partitions", "groups", "|S| threshold", "P1", "P2", "P2 ok"],
        rows,
        title=(
            "E8  Lemma 13: sampled c*tau*log n partition families satisfy "
            "Partition-Properties 1 and 2"
        ),
    )
    emit("e08_partition_construction", table)
    for row in rows:
        assert row[7], "Property 2 failed for n={}, tau={}".format(row[0], row[1])


def test_e08_small_survivor_sets_do_fail(benchmark):
    """Sanity direction: sets smaller than tau+1 can never cover all
    groups, so Property 2 genuinely needs the size threshold."""

    def experiment():
        rng = random.Random(5)
        partitions = RandomPartitions.generate(32, tau=3, rng=rng)
        satisfied, trials = property2_monte_carlo(
            partitions, set_size=3, trials=100, rng=random.Random(6)
        )
        return satisfied, trials

    satisfied, trials = run_once(benchmark, experiment)
    emit(
        "e08b_small_sets",
        "E8b  sets of size tau (< tau+1 groups) never cover: {}/{} covered".format(
            satisfied, trials
        ),
    )
    assert satisfied == 0
