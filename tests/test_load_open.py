"""Tests for repro.load: open-workload arrivals, admission control,
SLO summaries, the ``open`` scenario builder, and the E20 soak helpers.

Covers the determinism contract (streams draw only from their own rng
and the round number, so open runs are jobs- and backend-invariant),
the shed-leak audit, telemetry leak safety, RunRecord round-trips, and
knee location in the E20 payload.
"""

import dataclasses
import random

import pytest

from repro.core.config import CongosParams
from repro.exec.results import RunRecord
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import get_builder, open_scenario, open_window
from repro.load.admission import AdmissionPolicy, AdmissionQueue
from repro.load.arrivals import (
    Arrival,
    ArrivalSpec,
    ArrivalStream,
    PROCESSES,
    poisson_sample,
)
from repro.load.slo import slo_summary
from repro.load.soak import load_cells, load_payload, run_load_soak
from repro.load.workload import OpenWorkload
from repro.sim.rng import derive_rng


def stream(spec=None, n=16, seed=0, **kwargs):
    return ArrivalStream(
        spec if spec is not None else ArrivalSpec(), n, derive_rng(seed, "wl"),
        **kwargs,
    )


def collect(s, rounds):
    return [s.arrivals(r) for r in range(rounds)]


class TestPoissonSample:
    def test_deterministic(self):
        a = poisson_sample(random.Random(7), 3.5)
        b = poisson_sample(random.Random(7), 3.5)
        assert a == b

    def test_zero_mean_is_zero(self):
        assert poisson_sample(random.Random(0), 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            poisson_sample(random.Random(0), -1.0)

    def test_large_mean_near_lambda(self):
        # The chunked sampler must survive lambdas that would underflow
        # exp(-lam); the sample mean should land near lambda.
        rng = random.Random(11)
        lam = 500.0
        samples = [poisson_sample(rng, lam) for _ in range(200)]
        mean = sum(samples) / len(samples)
        assert abs(mean - lam) < 0.05 * lam


class TestArrivalSpec:
    def test_round_trip(self):
        spec = ArrivalSpec(
            process="bursty",
            rate=4.0,
            deadlines=(32, 64),
            deadline_weights=(3.0, 1.0),
            zipf_groups=4,
        )
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec

    def test_json_lists_coerced_to_tuples(self):
        spec = ArrivalSpec.from_dict(
            {"deadlines": [16, 32], "deadline_weights": [1, 1]}
        )
        assert spec.deadlines == (16, 32)
        assert spec.deadline_weights == (1, 1)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ArrivalSpec"):
            ArrivalSpec.from_dict({"ratee": 2.0})

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="process"):
            ArrivalSpec(process="flash_crowd")

    @pytest.mark.parametrize(
        "bad",
        [
            {"rate": -1.0},
            {"burst_on": 0},
            {"period": 1},
            {"dest_size": 0},
            {"zipf_s": 0.0},
            {"deadlines": ()},
            {"deadlines": (0,)},
            {"payload_size": 0},
        ],
    )
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            ArrivalSpec(**bad)

    def test_weights_must_match_deadlines(self):
        with pytest.raises(ValueError, match="length"):
            ArrivalSpec(deadlines=(16, 32), deadline_weights=(1.0,))

    def test_mean_rate_curves(self):
        poisson = ArrivalSpec(process="poisson", rate=3.0)
        assert poisson.mean_rate(0) == poisson.mean_rate(123) == 3.0
        bursty = ArrivalSpec(
            process="bursty", rate=5.0, burst_on=4, burst_off=4, off_rate=1.0
        )
        assert bursty.mean_rate(3) == 5.0
        assert bursty.mean_rate(4) == 1.0
        diurnal = ArrivalSpec(process="diurnal", rate=8.0, period=10)
        assert diurnal.mean_rate(0) == pytest.approx(0.0)
        assert diurnal.mean_rate(5) == pytest.approx(8.0)

    def test_processes_registry(self):
        assert PROCESSES == ("poisson", "bursty", "diurnal")


class TestArrivalStream:
    def test_same_seed_same_stream(self):
        assert collect(stream(seed=4), 60) == collect(stream(seed=4), 60)

    def test_different_seed_different_stream(self):
        assert collect(stream(seed=4), 60) != collect(stream(seed=5), 60)

    def test_window_respected(self):
        s = stream(seed=1, start_round=10, stop_round=20)
        assert all(not s.arrivals(r) for r in range(10))
        assert all(not s.arrivals(r) for r in range(20, 30))

    def test_arrival_shape(self):
        spec = ArrivalSpec(rate=8.0, dest_size=3, payload_size=8)
        batches = collect(stream(spec, n=16, seed=2), 20)
        arrivals = [a for batch in batches for a in batch]
        assert arrivals
        for a in arrivals:
            assert 0 <= a.src < 16
            assert a.src not in a.dest
            assert 1 <= len(a.dest) <= 3
            assert a.deadline == 64
            assert len(a.data) == 8

    def test_zipf_skews_destinations(self):
        spec = ArrivalSpec(rate=8.0, zipf_groups=4, zipf_s=1.5, dest_size=2)
        batches = collect(stream(spec, n=32, seed=3), 200)
        hot = other = 0
        for batch in batches:
            for a in batch:
                for d in a.dest:
                    if d < 8:  # block 0 of 4 over n=32
                        hot += 1
                    else:
                        other += 1
        assert hot > other  # block 0 gets the Zipf head

    def test_deadline_mix_weighted(self):
        spec = ArrivalSpec(
            rate=8.0, deadlines=(16, 64), deadline_weights=(9.0, 1.0)
        )
        batches = collect(stream(spec, seed=5), 200)
        deadlines = [a.deadline for batch in batches for a in batch]
        assert set(deadlines) <= {16, 64}
        assert deadlines.count(16) > 5 * deadlines.count(64)

    def test_needs_two_processes(self):
        with pytest.raises(ValueError, match="two processes"):
            stream(n=1)

    def test_zipf_groups_bounded_by_n(self):
        with pytest.raises(ValueError, match="zipf_groups"):
            stream(ArrivalSpec(zipf_groups=20), n=16)


def mk_arrival(src=0, round_no=0, data=b"x" * 4):
    return Arrival(
        arrival_round=round_no,
        src=src,
        dest=frozenset({src + 1}),
        deadline=16,
        data=data,
    )


class TestAdmissionQueue:
    def test_offer_sheds_when_full(self):
        q = AdmissionQueue(2)
        assert q.offer(0, mk_arrival(0))
        assert q.offer(0, mk_arrival(1))
        assert not q.offer(0, mk_arrival(2))
        assert len(q) == 2

    def test_expire_removes_old_entries(self):
        q = AdmissionQueue(8)
        q.offer(0, mk_arrival(0))
        q.offer(3, mk_arrival(1))
        expired = q.expire(5, max_wait=4)
        assert [e.arrival.src for e in expired] == [0]
        assert len(q) == 1

    def test_expire_none_means_no_cap(self):
        q = AdmissionQueue(8)
        q.offer(0, mk_arrival(0))
        assert q.expire(10_000, max_wait=None) == []

    def test_take_budget_oldest_first(self):
        q = AdmissionQueue(8)
        for src in range(4):
            q.offer(src, mk_arrival(src, round_no=src))
        used = set()
        taken = q.take(10, budget=2, is_alive=lambda p: True, used_sources=used)
        assert [e.arrival.src for e in taken] == [0, 1]
        assert used == {0, 1}
        assert len(q) == 2

    def test_take_skips_crashed_and_used_sources(self):
        q = AdmissionQueue(8)
        for src in (0, 1, 2):
            q.offer(0, mk_arrival(src))
        taken = q.take(
            1, budget=3, is_alive=lambda p: p != 1, used_sources={0}
        )
        assert [e.arrival.src for e in taken] == [2]
        # Skipped entries stay queued for another chance next round.
        assert len(q) == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="per_round"):
            AdmissionPolicy(per_round=0)
        with pytest.raises(ValueError, match="queue_cap"):
            AdmissionPolicy(queue_cap=0)
        with pytest.raises(ValueError, match="max_wait"):
            AdmissionPolicy(max_wait=0)
        with pytest.raises(ValueError, match="unknown AdmissionPolicy"):
            AdmissionPolicy.from_dict({"cap": 1})
        policy = AdmissionPolicy(per_round=2, queue_cap=8, max_wait=4)
        assert AdmissionPolicy.from_dict(policy.to_dict()) == policy


class TestInjectionBudget:
    def test_floor_is_one(self):
        assert CongosParams().injection_budget(16) == 1

    def test_scales_with_n(self):
        params = CongosParams()
        assert params.injection_budget(64) == 2
        assert params.injection_budget(256) == 8

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            CongosParams().injection_budget(1)


def run_open_scenario(**kwargs):
    defaults = dict(
        n=16, rounds=160, seed=3, rate=2.0, params=CongosParams.lean()
    )
    defaults.update(kwargs)
    return run_congos_scenario(open_scenario(**defaults))


class TestOpenScenario:
    def test_registered(self):
        assert get_builder("open") is open_scenario

    def test_end_to_end_clean(self):
        result = run_open_scenario()
        workload = result.workload
        assert isinstance(workload, OpenWorkload)
        assert workload.offered > 0
        assert workload.admitted > 0
        assert result.confidentiality.is_clean()
        load = result.summary()["load"]
        assert load["offered"] == workload.offered
        assert load["shed_leak_free"]
        assert load["qod_satisfied"] == result.qod.satisfied

    def test_open_window_leaves_drain_margin(self):
        start, stop = open_window(200, max_deadline=64, max_wait=32)
        assert 0 < start < stop
        assert stop + 64 + 32 < 200

    def test_budget_defaults_to_core_hook(self):
        result = run_open_scenario()
        assert result.workload.budget == CongosParams().injection_budget(16)

    def test_per_round_override(self):
        result = run_open_scenario(per_round=3)
        assert result.workload.budget == 3

    def test_overload_sheds_but_stays_clean(self):
        # rate 8 against budget 1 and a small queue must shed heavily.
        result = run_open_scenario(
            rate=8.0, queue_cap=8, max_wait=8, rounds=200
        )
        workload = result.workload
        assert workload.shed_total > 0
        assert set(workload.shed_counts) == {"queue_full", "aged_out"}
        load = result.summary()["load"]
        assert load["shed_rate"] > 0
        assert load["shed_leaks"] == 0 and load["shed_leak_free"]
        assert result.confidentiality.is_clean()

    @pytest.mark.parametrize("process", PROCESSES)
    def test_all_processes_run(self, process):
        result = run_open_scenario(process=process, rounds=200)
        assert result.confidentiality.is_clean()
        assert result.summary()["load"]["process"] == process

    def test_record_round_trips_with_load_section(self):
        record = RunRecord.from_result(run_open_scenario())
        assert record.load["offered"] > 0
        data = record.to_dict()
        assert "load" in data
        assert RunRecord.from_dict(data) == record

    def test_closed_records_stay_inert(self):
        closed = run_congos_scenario(
            get_builder("steady")(
                n=10, rounds=120, seed=1, params=CongosParams.lean()
            )
        )
        assert slo_summary(closed) is None
        assert "load" not in closed.summary()
        record = RunRecord.from_result(closed)
        assert record.load == {}
        assert "load" not in record.to_dict()


class TestOpenDeterminism:
    def test_same_seed_bit_identical(self):
        a = RunRecord.from_result(run_open_scenario()).without_profile()
        b = RunRecord.from_result(run_open_scenario()).without_profile()
        assert a == b

    def test_jobs_invariance_on_exec_pool(self):
        cells = load_cells([2.0], [16])
        fixed = dict(rounds=160, params=CongosParams.lean())
        serial = run_load_soak(cells, seeds=(0, 1), jobs=1, **fixed)
        pooled = run_load_soak(cells, seeds=(0, 1), jobs=2, **fixed)
        strip = lambda sweep: [
            [run.without_profile() for run in cell.runs]
            for cell in sweep.cells
        ]
        assert strip(serial) == strip(pooled)

    def test_sharded_backend_matches_inproc(self):
        scenario = open_scenario(
            n=16, rounds=160, seed=3, rate=2.0, params=CongosParams.lean()
        )
        inproc = run_congos_scenario(scenario)
        sharded = run_congos_scenario(
            dataclasses.replace(
                scenario, backend="sharded", net={"workers": 2}
            )
        )
        assert (
            RunRecord.from_result(sharded).without_profile()
            == RunRecord.from_result(inproc).without_profile()
        )
        assert sharded.summary()["load"] == inproc.summary()["load"]


class TestShedLeakAudit:
    def test_shed_payloads_never_surface(self):
        result = run_open_scenario(
            rate=8.0, queue_cap=8, max_wait=8, rounds=200
        )
        workload = result.workload
        assert workload.shed_records  # non-vacuous
        from repro.audit.confidentiality import shed_rumor_leaks

        assert shed_rumor_leaks(result) == []
        # Every shed payload is concrete bytes, none of them injected.
        injected_payloads = {rumor.data for rumor in workload.injected}
        for shed in workload.shed_records:
            assert shed.data
            assert shed.data not in injected_payloads

    def test_audit_flags_a_planted_leak(self):
        result = run_open_scenario(
            rate=8.0, queue_cap=8, max_wait=8, rounds=200
        )
        workload = result.workload
        shed = workload.shed_records[0]
        # Plant the shed payload as if it had been injected anyway.
        workload.injected[0] = dataclasses.replace(
            workload.injected[0], data=shed.data
        )
        from repro.audit.confidentiality import shed_rumor_leaks

        leaks = shed_rumor_leaks(result)
        assert leaks and "was injected" in leaks[0]


class TestTelemetry:
    def test_counters_and_leak_safe_events(self):
        from repro.obs.events import json_safe
        from repro.obs.instrument import Telemetry
        from repro.obs.sink import CollectSink

        sink = CollectSink()
        telemetry = Telemetry(sinks=[sink])
        scenario = open_scenario(
            n=16,
            rounds=200,
            seed=3,
            rate=8.0,
            queue_cap=8,
            max_wait=8,
            params=CongosParams.lean(),
        )
        result = run_congos_scenario(scenario, telemetry=telemetry)
        workload = result.workload
        metrics = telemetry.metrics
        assert metrics.counter("load.offered").value == workload.offered
        assert metrics.counter("load.admitted").value == workload.admitted
        shed_events = [e for e in sink.events if e.kind == "load_shed"]
        assert len(shed_events) == workload.shed_total
        shed_payloads = {s.data for s in workload.shed_records}
        for event in shed_events:
            assert event.fields["reason"] in ("queue_full", "aged_out")
            safe = str(json_safe(event.fields))
            for payload in shed_payloads:
                assert str(payload) not in safe
                assert payload.hex() not in safe

    def test_disabled_telemetry_not_bound(self):
        from repro.obs.instrument import NullTelemetry

        workload = OpenWorkload(
            16,
            derive_rng(0, "wl"),
            ArrivalSpec(),
            AdmissionPolicy(),
            budget=1,
        )
        workload.bind_telemetry(NullTelemetry())
        assert workload._telemetry is None


class TestSoakHelpers:
    def test_load_cells_grid(self):
        cells = load_cells(
            [1.0, 2.0], [16], processes=("poisson", "bursty"), presets=("lean",)
        )
        assert len(cells) == 4
        assert {c["preset"] for c in cells} == {"lean"}

    def test_payload_and_knee(self):
        cells = load_cells([0.5, 8.0], [16], presets=("lean",))
        sweep = run_load_soak(
            cells, seeds=(0,), jobs=2, rounds=200, queue_cap=8, max_wait=8
        )
        payload = load_payload(sweep, {"rounds": 200})
        assert payload["fixed"] == {"rounds": 200}
        assert len(payload["cells"]) == 2
        assert payload["total_offered"] == sum(
            e["offered"] for e in payload["cells"]
        )
        assert payload["all_shed_leak_free"]
        (knee,) = payload["knees"]
        assert knee["rates"] == [0.5, 8.0]
        # rate 0.5 sustains under budget 1; rate 8 over a cap-8 queue
        # must shed (rate 1 would sit exactly at the budget, where
        # stochastic queueing against the tight wait cap already sheds).
        assert knee["knee_rate"] == 0.5
        assert knee["first_saturated_rate"] == 8.0
        assert knee["shed_rate_at_peak"] > 0
