"""Tests for repro.core.splitting: XOR secret sharing of rumors."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.splitting import (
    Fragment,
    can_reconstruct,
    merge_fragments,
    split_data,
    split_rumor,
    xor_bytes,
)
from repro.gossip.rumor import RumorId
from repro.sim.messages import fragment_atom

from conftest import mk_rumor


class TestXorBytes:
    def test_roundtrip(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x10"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    def test_self_inverse(self):
        a = b"payload"
        assert xor_bytes(a, a) == bytes(len(a))


class TestSplitData:
    def test_roundtrip_two_way(self, rng):
        shares = split_data(b"secret", 2, rng)
        assert xor_bytes(shares[0], shares[1]) == b"secret"

    def test_share_count(self, rng):
        assert len(split_data(b"secret", 5, rng)) == 5

    def test_shares_same_length(self, rng):
        for share in split_data(b"0123456789", 4, rng):
            assert len(share) == 10

    def test_single_share_rejected(self, rng):
        with pytest.raises(ValueError):
            split_data(b"x", 1, rng)

    def test_proper_subset_independent_of_data(self):
        """The same RNG state yields identical non-final shares regardless
        of the secret — information-theoretic secrecy in code form."""
        shares_a = split_data(b"AAAA", 3, random.Random(7))
        shares_b = split_data(b"BBBB", 3, random.Random(7))
        assert shares_a[:-1] == shares_b[:-1]
        assert shares_a[-1] != shares_b[-1]


@given(
    data=st.binary(min_size=0, max_size=64),
    groups=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_split_merge_roundtrip_property(data, groups, seed):
    """Property: XOR of all shares always recovers the data."""
    shares = split_data(data, groups, random.Random(seed))
    assert len(shares) == groups
    merged = shares[0]
    for share in shares[1:]:
        merged = xor_bytes(merged, share)
    assert merged == data


def make_fragments(rumor=None, partition=0, groups=2, seed=0, dline=64, expiry=64):
    rumor = rumor if rumor is not None else mk_rumor(data=b"topsecret")
    return split_rumor(rumor, partition, groups, random.Random(seed), dline, expiry)


class TestSplitRumor:
    def test_metadata_carried(self):
        rumor = mk_rumor(dest=(1, 2, 3))
        fragments = make_fragments(rumor, partition=2, groups=3)
        for index, fragment in enumerate(fragments):
            assert fragment.rid == rumor.rid
            assert fragment.partition == 2
            assert fragment.group == index
            assert fragment.total_groups == 3
            assert fragment.dest == rumor.dest
            assert fragment.dline == 64

    def test_fragments_reveal_their_slot(self):
        fragments = make_fragments(partition=1)
        assert list(fragments[0].reveals()) == [
            fragment_atom(fragments[0].rid, 1, 0)
        ]

    def test_uid_unique_per_slot(self):
        fragments = make_fragments(groups=3)
        assert len({f.uid for f in fragments}) == 3

    def test_different_partitions_use_fresh_randomness(self):
        rumor = mk_rumor(data=b"topsecret")
        rng = random.Random(0)
        first = split_rumor(rumor, 0, 2, rng, 64, 64)
        second = split_rumor(rumor, 1, 2, rng, 64, 64)
        assert first[0].data != second[0].data

    def test_expired(self):
        fragment = make_fragments(expiry=50)[0]
        assert not fragment.expired(50)
        assert fragment.expired(51)

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            Fragment(
                rid=RumorId(0, 0),
                src=0,
                partition=0,
                group=3,
                total_groups=2,
                data=b"",
                dest=frozenset(),
                dline=64,
                expiry=0,
            )


class TestMergeFragments:
    def test_roundtrip(self):
        rumor = mk_rumor(data=b"topsecret")
        fragments = make_fragments(rumor, groups=4)
        assert merge_fragments(fragments) == b"topsecret"

    def test_roundtrip_any_order(self):
        rumor = mk_rumor(data=b"topsecret")
        fragments = make_fragments(rumor, groups=3)
        assert merge_fragments(list(reversed(fragments))) == b"topsecret"

    def test_missing_fragment_rejected(self):
        fragments = make_fragments(groups=3)
        with pytest.raises(ValueError):
            merge_fragments(fragments[:2])

    def test_duplicate_fragment_rejected(self):
        fragments = make_fragments(groups=2)
        with pytest.raises(ValueError):
            merge_fragments([fragments[0], fragments[0]])

    def test_cross_partition_merge_rejected(self):
        """Lemma 3: fragments of different partitions cannot combine."""
        rumor = mk_rumor(data=b"topsecret")
        rng = random.Random(0)
        first = split_rumor(rumor, 0, 2, rng, 64, 64)
        second = split_rumor(rumor, 1, 2, rng, 64, 64)
        with pytest.raises(ValueError):
            merge_fragments([first[0], second[1]])

    def test_cross_rumor_merge_rejected(self):
        a = make_fragments(mk_rumor(seq=0, data=b"aaaa"))
        b = make_fragments(mk_rumor(seq=1, data=b"bbbb"))
        with pytest.raises(ValueError):
            merge_fragments([a[0], b[1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_fragments([])


@given(
    data=st.binary(min_size=1, max_size=32),
    groups=st.integers(min_value=2, max_value=6),
    partition=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=999),
)
def test_split_rumor_merge_property(data, groups, partition, seed):
    rumor = mk_rumor(data=data)
    fragments = split_rumor(
        rumor, partition, groups, random.Random(seed), 64, 100
    )
    assert merge_fragments(fragments) == data


class TestCanReconstruct:
    def test_complete_set_detected(self):
        fragments = make_fragments(groups=2)
        complete = can_reconstruct(fragments)
        assert len(complete) == 1
        key = (fragments[0].rid, 0)
        assert merge_fragments(complete[key]) == b"topsecret"

    def test_incomplete_set_empty(self):
        fragments = make_fragments(groups=3)
        assert can_reconstruct(fragments[:2]) == {}

    def test_mixed_partitions_grouped_separately(self):
        rumor = mk_rumor(data=b"topsecret")
        rng = random.Random(0)
        p0 = split_rumor(rumor, 0, 2, rng, 64, 64)
        p1 = split_rumor(rumor, 1, 2, rng, 64, 64)
        complete = can_reconstruct(p0 + p1[:1])
        assert set(complete) == {(rumor.rid, 0)}
