"""Tests for repro.sim.clock: round clock and block/iteration arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import BlockSchedule, RoundClock


class TestRoundClock:
    def test_starts_at_zero(self):
        assert RoundClock().round == 0

    def test_custom_start(self):
        assert RoundClock(10).round == 10

    def test_advance_increments(self):
        clock = RoundClock()
        assert clock.advance() == 1
        assert clock.round == 1

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            RoundClock(-1)


class TestBlockScheduleBasics:
    def test_block_len_is_quarter_deadline(self):
        assert BlockSchedule(64).block_len == 16
        assert BlockSchedule(256).block_len == 64

    def test_iteration_len_is_sqrt_plus_two(self):
        assert BlockSchedule(64).iteration_len == 10
        assert BlockSchedule(256).iteration_len == 18

    def test_iterations_per_block(self):
        assert BlockSchedule(64).iterations_per_block == 1
        assert BlockSchedule(256).iterations_per_block == 3

    def test_lemma6_iteration_count(self):
        """Lemma 6: at least sqrt(dline)/8 iterations per block."""
        for exponent in range(6, 13):
            dline = 2 ** exponent
            schedule = BlockSchedule(dline)
            assert schedule.iterations_per_block >= math.isqrt(dline) / 8

    def test_tiny_deadline_rejected(self):
        with pytest.raises(ValueError):
            BlockSchedule(2)

    def test_gossip_deadline_is_sqrt(self):
        assert BlockSchedule(64).gossip_deadline == 8

    def test_allgossip_deadline_fits_block(self):
        schedule = BlockSchedule(64)
        assert schedule.allgossip_deadline == schedule.block_len - 1


class TestBlockPositions:
    def test_block_of(self):
        schedule = BlockSchedule(64)  # blocks of 16
        assert schedule.block_of(0) == 0
        assert schedule.block_of(15) == 0
        assert schedule.block_of(16) == 1

    def test_block_start_end(self):
        schedule = BlockSchedule(64)
        assert schedule.block_start(2) == 32
        assert schedule.block_end(2) == 47

    def test_is_block_start(self):
        schedule = BlockSchedule(64)
        assert schedule.is_block_start(32)
        assert not schedule.is_block_start(33)

    def test_is_block_last_round(self):
        schedule = BlockSchedule(64)
        assert schedule.is_block_last_round(47)
        assert not schedule.is_block_last_round(46)

    def test_iteration_of_within_block(self):
        schedule = BlockSchedule(256)  # block 64, iter 18 -> 3 iterations
        assert schedule.iteration_of(0) == 0
        assert schedule.iteration_of(17) == 0
        assert schedule.iteration_of(18) == 1
        assert schedule.iteration_of(53) == 2

    def test_slack_tail_has_no_iteration(self):
        schedule = BlockSchedule(256)
        # 3 iterations cover rounds 0..53 of the block; 54..63 are slack.
        assert schedule.iteration_of(54) == -1
        assert schedule.round_in_iteration(54) == -1

    def test_round_in_iteration(self):
        schedule = BlockSchedule(64)
        assert schedule.round_in_iteration(0) == 0
        assert schedule.round_in_iteration(1) == 1
        assert schedule.round_in_iteration(9) == 9

    def test_is_iteration_last_round(self):
        schedule = BlockSchedule(64)  # iteration length 10
        assert schedule.is_iteration_last_round(9)
        assert not schedule.is_iteration_last_round(8)

    def test_describe_is_readable(self):
        text = BlockSchedule(64).describe(17)
        assert "round=17" in text and "block=1" in text


@given(
    exponent=st.integers(min_value=6, max_value=14),
    round_no=st.integers(min_value=0, max_value=100_000),
)
def test_positions_are_consistent(exponent, round_no):
    """Property: positions derived from a round always agree."""
    schedule = BlockSchedule(2 ** exponent)
    block = schedule.block_of(round_no)
    assert schedule.block_start(block) <= round_no <= schedule.block_end(block)
    offset = schedule.round_in_block(round_no)
    assert offset == round_no - schedule.block_start(block)
    iteration = schedule.iteration_of(round_no)
    if iteration >= 0:
        position = schedule.round_in_iteration(round_no)
        assert 0 <= position < schedule.iteration_len
        assert offset == iteration * schedule.iteration_len + position
    else:
        assert offset >= schedule.iterations_per_block * schedule.iteration_len
