"""Golden payload digests: the bit-identical contract of the perf work.

Every optimization in the hot-path overhaul (deferred message validation,
incremental alive sets, observer dispatch tables, batched stats, pooled
target selection, the auditor's batch cache, the gossip broadcast-horizon
dict) claims to preserve behavior *exactly* — same rng stream consumption,
same event order, same audit verdicts.  These tests pin the sha256 of the
canonical-JSON run payload for one representative cell per experiment
family (E6/E6b/E9/E11/E15/E16).  The digests were captured at commit
29cc6bd, immediately before the overhaul; any optimization that perturbs
an rng call sequence or event ordering flips a digest and fails here.

If a digest changes because of an *intentional* semantic change, re-pin it
in the same commit and say so in the commit message — never silently.
"""

from __future__ import annotations

import hashlib

from repro.chaos.soak import chaos_cells, run_soak, soak_payload
from repro.core.config import CongosParams
from repro.exec.tasks import RunSpec, canonical_json, execute_spec


def run_digest(spec: RunSpec) -> str:
    record = execute_spec(spec).without_profile()
    return hashlib.sha256(
        canonical_json(record.to_dict()).encode("utf-8")
    ).hexdigest()


def payload_digest(payload) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def test_e6_steady_digest():
    spec = RunSpec.make(
        "steady",
        seed=0,
        n=16,
        rounds=3 * 64 + 128,
        deadline=64,
        rate=1,
        period=4,
        params=CongosParams.lean(),
    )
    assert (
        run_digest(spec)
        == "a75ac05eea3608aac65e15b3dd9b684d8e15eaa2a76b209a9ae87ba8182a04ff"
    )


def test_e6b_burst_digest():
    spec = RunSpec.make(
        "scripted-burst",
        seed=0,
        n=32,
        rounds=4 * 64,
        deadline=64,
        sources=8,
        inject_round=2 * 64,
        params=CongosParams.lean(),
        name="e6b-64",
    )
    assert (
        run_digest(spec)
        == "8372526026305ce88e45b7961a62e515e62577d1752d877446dda7325cbb6ebb"
    )


def test_e9_collusion_digest():
    spec = RunSpec.make(
        "collusion",
        seed=1,
        n=16,
        rounds=300,
        deadline=64,
        tau=2,
        params=CongosParams.lean(tau=2),
    )
    assert (
        run_digest(spec)
        == "b81aa935a39fc80b33d7a30452327d89208b232a9a237ffd06d95b3073b955ee"
    )


def test_e11_steady_default_params_digest():
    # Default (non-lean) CongosParams: exercises proxy GD and fallback
    # scheduling paths the lean profile skips.
    spec = RunSpec.make("steady", seed=2, n=16, rounds=300, deadline=64)
    assert (
        run_digest(spec)
        == "c28605ba471d48e7ffde70b79ce59ffd71effe819a3e91e3bef52467bd38649c"
    )


def test_e16_direct_hardened_digest():
    spec = RunSpec.make(
        "direct", seed=0, n=16, rounds=120, deadline=32, drop=0.3, hardened=True
    )
    assert (
        run_digest(spec)
        == "1e404c3a6c2a4d247f6b1a98e81a3f5285d5dd76fa9ec29de330a9ed3469f192"
    )


def test_e15_soak_payload_digest():
    # The whole chaos pipeline (fault schedule, exec pool aggregation,
    # payload serialization) in one digest.  Serial on purpose: the pool
    # guarantees jobs-independence elsewhere (test_exec_pool).
    fixed = {
        "n": 8,
        "rounds": 80,
        "deadline": 64,
        "max_delay": 4,
        "duplicate": 0.02,
        "reorder": 0.0,
        "partition_period": 0,
        "partition_width": 0,
        "churn": 0.0,
        "hardened": False,
    }
    sweep = run_soak(
        chaos_cells([0.0, 0.15], [0.1]),
        seeds=(0, 1),
        jobs=1,
        cache=None,
        **fixed,
    )
    payload = soak_payload(
        sweep,
        {
            "n": 8,
            "rounds": 80,
            "deadline": 64,
            "max_delay": 4,
            "duplicate": 0.02,
            "drop": None,
            "delay": None,
        },
    )
    assert (
        payload_digest(payload)
        == "7630f178fe858fe6dcbc96841988778e28db692f1feef4ece5c3f92be7ce8d79"
    )
