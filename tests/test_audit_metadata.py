"""Tests for the metadata-exposure auditor (Section 7 quantified)."""

import pytest

from repro.adversary.injection import ScriptedWorkload
from repro.audit.metadata import MetadataAuditor
from repro.core.extensions import DestinationHidingWorkload
from repro.harness.runner import Scenario, run_congos_scenario
from repro.sim.rng import derive_rng

N = 8
DEADLINE = 64


def run_with_metadata(workload_factory, rounds=300, seed=0):
    auditor = MetadataAuditor()
    scenario = Scenario(
        name="meta",
        n=N,
        rounds=rounds,
        seed=seed,
        workload_factory=workload_factory,
    )
    result = run_congos_scenario(scenario, observers=[auditor])
    return result, auditor


def plain_workload(rng):
    return ScriptedWorkload([(64, 0, DEADLINE, {2, 5})], rng)


def hidden_workload(rng):
    inner = ScriptedWorkload([(64, 0, DEADLINE, {2, 5})], derive_rng(0, "in"))
    return DestinationHidingWorkload(inner, N, rng)


class TestExposureTracking:
    def test_outsiders_learn_existence(self):
        """The paper's admission: the rumor's existence leaks."""
        result, auditor = run_with_metadata(plain_workload)
        rid = next(iter(auditor.rumors))
        assert auditor.observers_of(rid), "fragments must have crossed outsiders"

    def test_outsiders_learn_destination_set(self):
        """Fragments carry D as routing metadata: outsiders see it."""
        result, auditor = run_with_metadata(plain_workload)
        rid = next(iter(auditor.rumors))
        disclosed = auditor.dest_disclosed_to(rid)
        assert disclosed
        some_pid = next(iter(disclosed))
        assert auditor.knows_dest[some_pid][rid] == frozenset({2, 5})

    def test_exposure_summary_shape(self):
        result, auditor = run_with_metadata(plain_workload)
        exposure = auditor.exposure(N)
        assert exposure.rumors == 1
        assert exposure.observer_rumor_pairs > 0
        assert 0 <= exposure.disclosure_rate() <= 1
        assert exposure.max_dest_set_size_seen == 2


class TestDestinationHidingReducesExposure:
    def test_observed_dest_sets_are_singletons(self):
        """With hiding on, no observer ever sees a multi-member D."""
        result, auditor = run_with_metadata(hidden_workload)
        exposure = auditor.exposure(N)
        assert exposure.max_dest_set_size_seen <= 1

    def test_true_destination_set_never_visible(self):
        result, auditor = run_with_metadata(hidden_workload)
        for per_rid in auditor.knows_dest.values():
            for dest in per_rid.values():
                assert dest != frozenset({2, 5})

    def test_plain_run_does_disclose(self):
        """Contrast: without hiding, the same traffic discloses D."""
        _, plain_auditor = run_with_metadata(plain_workload)
        plain_exposure = plain_auditor.exposure(N)
        assert plain_exposure.max_dest_set_size_seen == 2


class TestApparentCounts:
    def test_apparent_rumor_count(self):
        result, auditor = run_with_metadata(plain_workload)
        counts = [auditor.apparent_rumor_count(pid) for pid in range(N)]
        assert max(counts) >= 1

    def test_hiding_inflates_apparent_count(self):
        """n-1 sub-rumors look like n-1 independent rumors to observers —
        existence of the *logical* rumor is still visible, its multiplicity
        is not."""
        _, plain_auditor = run_with_metadata(plain_workload)
        _, hidden_auditor = run_with_metadata(hidden_workload)
        plain_max = max(
            plain_auditor.apparent_rumor_count(pid) for pid in range(N)
        )
        hidden_max = max(
            hidden_auditor.apparent_rumor_count(pid) for pid in range(N)
        )
        assert hidden_max > plain_max
