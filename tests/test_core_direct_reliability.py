"""Tests for the reliable direct-send layer: ack/retransmit/k-copy
behavior, default-path inertness, and leak-safety of the control traffic."""

import pytest

from repro.audit.confidentiality import ConfidentialityAuditor
from repro.core.confidential_gossip import DirectAck, DirectSendState
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import direct_scenario
from repro.obs import Telemetry
from repro.obs.timeline import RumorTimeline
from repro.sim.messages import ServiceTags, reveals_of

from conftest import mk_message

DIRECT = {"n": 12, "rounds": 140, "deadline": 32}


def run_direct(seed=0, drop=0.0, hardened=False, telemetry=None, **kwargs):
    scenario = direct_scenario(
        seed=seed, drop=drop, hardened=hardened, **DIRECT, **kwargs
    )
    observers = []
    timeline = None
    if telemetry is not None:
        timeline = RumorTimeline()
        telemetry.subscribe(timeline)
        observers.append(timeline)
    result = run_congos_scenario(
        scenario, observers=observers, telemetry=telemetry
    )
    return result, timeline


class TestScenarioGuard:
    def test_direct_scenario_rejects_pipeline_deadlines(self):
        with pytest.raises(ValueError, match="direct"):
            direct_scenario(n=12, rounds=200, seed=0, deadline=128)

    def test_threshold_deadline_accepted(self):
        scenario = direct_scenario(n=12, rounds=140, seed=0, deadline=48)
        assert "direct" in scenario.description


class TestDefaultInertness:
    def test_default_run_has_no_reliability_traffic(self):
        result, _ = run_direct(seed=0)
        by_service = result.stats.by_service()
        assert ServiceTags.DIRECT_ACK not in by_service
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()

    def test_default_run_is_deterministic(self):
        first, _ = run_direct(seed=3)
        second, _ = run_direct(seed=3)
        assert first.stats.total == second.stats.total
        assert first.stats.by_service() == second.stats.by_service()

    def test_reliable_property_gates_the_machinery(self):
        # Same seed, fault-free: the hardened run sends strictly more
        # (k-copy redundancy + acks), delivers the same rumors.
        default, _ = run_direct(seed=1)
        hardened, _ = run_direct(seed=1, hardened=True)
        assert hardened.stats.total > default.stats.total
        assert hardened.qod.satisfied and default.qod.satisfied
        by_service = hardened.stats.by_service()
        assert by_service.get(ServiceTags.DIRECT_ACK, 0) > 0


class TestReliabilityUnderLoss:
    def test_hardened_recovers_dropped_sends(self):
        default, _ = run_direct(seed=0, drop=0.3)
        hardened, _ = run_direct(seed=0, drop=0.3, hardened=True)
        assert len(default.qod.missed) > 0  # single unacked send really loses
        assert len(hardened.qod.missed) < len(default.qod.missed)
        assert hardened.confidentiality.is_clean()

    def test_timeline_records_acks_and_retries(self):
        telemetry = Telemetry()
        _, timeline = run_direct(
            seed=0, drop=0.3, hardened=True, telemetry=telemetry
        )
        records = timeline.lifecycles()
        assert any(rec.direct_retries for rec in records)
        assert any(rec.direct_acks for rec in records)
        retried = next(rec for rec in records if rec.direct_retries)
        entry = retried.direct_retries[0]
        assert set(entry) == {"round", "targets", "attempt"}
        assert entry["attempt"] >= 2
        # Retransmits only go to destination-set members.
        assert set(entry["targets"]) <= set(retried.dest)

    def test_acks_only_from_destinations(self):
        telemetry = Telemetry()
        _, timeline = run_direct(
            seed=1, drop=0.2, hardened=True, telemetry=telemetry
        )
        for rec in timeline.lifecycles():
            assert set(rec.direct_acks) <= set(rec.dest)


class TestDirectSendState:
    def test_exhausted_when_no_work_left(self):
        state = DirectSendState(
            rumor=None,
            deadline_round=10,
            unacked={1, 2},
            copy_rounds=[],
            retries_left=0,
            backoff=2,
            next_retry=None,
        )
        assert state.exhausted()
        state.copy_rounds.append(5)
        assert not state.exhausted()


class TestAckLeakSafety:
    def test_ack_reveals_nothing(self):
        ack = DirectAck(rid="r0:0", acker=3)
        assert list(reveals_of(ack)) == []
        assert not any(
            isinstance(value, (bytes, bytearray))
            for value in vars(ack).values()
        )

    def test_auditor_accepts_well_formed_ack(self):
        auditor = ConfidentialityAuditor(num_partitions=1, num_groups=2)
        message = mk_message(
            src=3, dst=0, service=ServiceTags.DIRECT_ACK,
            payload=DirectAck(rid="r0:0", acker=3),
        )
        auditor.on_deliver(0, message)
        assert auditor.is_clean()

    def test_auditor_flags_ack_carrying_bytes(self):
        ack = DirectAck(rid="r0:0", acker=3)
        object.__setattr__(ack, "z", b"smuggled-fragment")  # regression sim
        auditor = ConfidentialityAuditor(num_partitions=1, num_groups=2)
        auditor.on_deliver(
            0,
            mk_message(
                src=3, dst=0, service=ServiceTags.DIRECT_ACK, payload=ack
            ),
        )
        assert not auditor.is_clean()
        assert auditor.violation_counts()["ack_leak"] == 1
        assert auditor.violations[0].kind == "ack_leak"

    def test_hardened_soak_stays_clean(self):
        for seed in (0, 1):
            result, _ = run_direct(seed=seed, drop=0.3, hardened=True)
            counts = result.confidentiality.violation_counts()
            assert counts.get("ack_leak", 0) == 0
            assert result.confidentiality.is_clean()
