"""Tests for the fail-fast invariant monitor."""

import pytest

from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.failfast import FailFastMonitor, InvariantViolation
from repro.baselines.plain_gossip import plain_gossip_factory
from repro.harness.runner import run_congos_scenario, run_with_factory
from repro.harness.scenarios import steady_scenario
from repro.sim.engine import Engine
from repro.sim.process import NodeBehavior


class TestFailFast:
    def test_clean_run_passes(self):
        # The runner wires its own auditor; attach a second one with the
        # monitor to prove it stays quiet on a clean CONGOS run.
        auditor = ConfidentialityAuditor(3, 2)
        monitor = FailFastMonitor(auditor)
        result = run_congos_scenario(
            steady_scenario(n=8, rounds=240, seed=0, deadline=64),
            observers=[auditor, monitor],
        )
        assert result.qod.satisfied

    def test_plain_gossip_trips_the_monitor(self):
        """Plain gossip leaks by design: the monitor must abort the run
        at the first leaking round."""
        from repro.audit.delivery import DeliveryAuditor

        auditor = ConfidentialityAuditor(1, 2)
        monitor = FailFastMonitor(auditor)
        scenario = steady_scenario(n=8, rounds=240, seed=0, deadline=64)
        delivery = DeliveryAuditor()
        factory = plain_gossip_factory(
            8, seed=0, deliver_callback=delivery.record_delivery
        )
        with pytest.raises(InvariantViolation) as excinfo:
            run_with_factory(
                scenario,
                factory,
                delivery=delivery,
                observers=[auditor, monitor],
            )
        assert excinfo.value.violations
        assert excinfo.value.round_no >= 0

    def test_violation_message_mentions_round(self):
        from repro.audit.confidentiality import Violation
        from repro.gossip.rumor import RumorId

        violation = Violation("plaintext", RumorId(0, 0), 5, 12)
        error = InvariantViolation(12, [violation])
        assert "round 12" in str(error)

    def test_non_strict_ignores_multiplicity(self):
        from repro.audit.confidentiality import Violation
        from repro.gossip.rumor import RumorId

        auditor = ConfidentialityAuditor(1, 2)
        monitor = FailFastMonitor(auditor, strict=False)
        auditor.violations.append(
            Violation("multiplicity", RumorId(0, 0), 5, 3)
        )
        engine = Engine(2, lambda pid: NodeBehavior(pid, 2))
        monitor.on_round_end(3, engine)  # must not raise

    def test_strict_raises_on_multiplicity(self):
        from repro.audit.confidentiality import Violation
        from repro.gossip.rumor import RumorId

        auditor = ConfidentialityAuditor(1, 2)
        monitor = FailFastMonitor(auditor, strict=True)
        auditor.violations.append(
            Violation("multiplicity", RumorId(0, 0), 5, 3)
        )
        engine = Engine(2, lambda pid: NodeBehavior(pid, 2))
        with pytest.raises(InvariantViolation):
            monitor.on_round_end(3, engine)
