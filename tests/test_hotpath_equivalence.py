"""Regression tests for the hot-path overhaul's equivalence claims.

Each optimization landed with an argument for why behavior is unchanged;
these tests pin those arguments down individually (the golden-digest
tests in ``test_golden_digests.py`` pin the composition).
"""

from __future__ import annotations

import random

from repro.audit.confidentiality import ConfidentialityAuditor
from repro.gossip.continuous import ContinuousGossip
from repro.gossip.epidemic import _POOL_CACHE, choose_push_targets
from repro.gossip.rumor import GossipItem
from repro.sim.engine import AdversaryView, Engine, SimObserver
from repro.sim.messages import Message, ServiceTags, fragment_atom, reveals_of
from repro.sim.metrics import MessageStats
from repro.sim.process import NodeBehavior


def make_engine(n=6, observers=()):
    return Engine(n, lambda pid: NodeBehavior(pid, n), observers=observers)


class Revealer:
    def __init__(self, atom):
        self.atom = atom

    def reveals(self):
        yield self.atom

    def __repr__(self):
        return "Revealer({!r})".format(self.atom)

    def __eq__(self, other):
        return isinstance(other, Revealer) and other.atom == self.atom

    def __hash__(self):
        return hash(self.atom)


# ----------------------------------------------------------------------
# Satellite 1: reveals_of over sets must not depend on hash order
# ----------------------------------------------------------------------


class TestRevealsOfSetOrder:
    def test_set_payload_yields_sorted_order(self):
        atoms = [fragment_atom("r{}".format(i), i, 0) for i in range(6)]
        payload = frozenset(Revealer(atom) for atom in atoms)
        got = list(reveals_of(payload))
        want = [item.atom for item in sorted(payload, key=repr)]
        assert got == want
        assert sorted(got) == sorted(atoms)

    def test_set_order_stable_across_construction_orders(self):
        atoms = [
            fragment_atom("rumor-{}".format(i), i % 3, i % 2) for i in range(8)
        ]
        forward = {Revealer(a) for a in atoms}
        backward = {Revealer(a) for a in reversed(atoms)}
        assert list(reveals_of(forward)) == list(reveals_of(backward))


# ----------------------------------------------------------------------
# Satellite 2: AdversaryView.crashed_pids caching + incremental alive set
# ----------------------------------------------------------------------


class TestAliveSetMaintenance:
    def test_crashed_pids_tracks_engine_crashes(self):
        engine = make_engine(5)
        view = AdversaryView(engine)
        assert view.crashed_pids() == set()
        engine._crash(0, 3, mid_round=False)
        assert view.crashed_pids() == {3}
        assert view.alive_pids() == {0, 1, 2, 4}
        engine._restart(1, 3)
        assert view.crashed_pids() == set()

    def test_all_pids_frozenset_is_cached(self):
        view = AdversaryView(make_engine(4))
        assert view.all_pids == frozenset(range(4))
        assert view.all_pids is view.all_pids

    def test_alive_pids_returns_defensive_copy(self):
        engine = make_engine(4)
        alive = engine.alive_pids()
        alive.discard(0)
        assert engine.alive_pids() == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Observer dispatch tables
# ----------------------------------------------------------------------


class CountingObserver(SimObserver):
    def __init__(self):
        self.delivered = 0

    def on_deliver(self, round_no, message):
        self.delivered += 1


class ChattyBehavior(NodeBehavior):
    def send_phase(self, round_no):
        return [
            Message(
                src=self.pid,
                dst=(self.pid + 1) % self.n,
                service=ServiceTags.BASELINE,
            )
        ]


class TestObserverDispatch:
    def test_base_noop_observer_excluded_from_dispatch(self):
        engine = make_engine(4, observers=[SimObserver()])
        assert all(not hooks for hooks in engine._dispatch.values())

    def test_subclass_override_registered_and_called(self):
        counting = CountingObserver()
        engine = Engine(
            4,
            lambda pid: ChattyBehavior(pid, 4),
            observers=[SimObserver(), counting],
        )
        deliver_hooks = engine._dispatch["on_deliver"]
        assert len(deliver_hooks) == 1
        engine.run(2)
        assert counting.delivered == 8

    def test_instance_attribute_hook_registered(self):
        # A hook monkeypatched onto an *instance* (not the class) must
        # still dispatch — the table check looks at the instance dict too.
        observer = SimObserver()
        calls = []
        observer.on_round_end = lambda round_no, engine: calls.append(round_no)
        engine = make_engine(4, observers=[observer])
        engine.run(3)
        assert calls == [0, 1, 2]


# ----------------------------------------------------------------------
# Batched per-round stats
# ----------------------------------------------------------------------


class TestRecordRoundEquivalence:
    def test_record_round_matches_per_message_recording(self):
        messages = [
            Message(
                src=0,
                dst=1,
                service=ServiceTags.ALL_GOSSIP if i % 2 else ServiceTags.BASELINE,
                size=1 + i % 3,
            )
            for i in range(9)
        ]
        one = MessageStats()
        for message in messages:
            one.record_send(7, message)
        by_service = {}
        for message in messages:
            by_service[message.service] = by_service.get(message.service, 0) + 1
        other = MessageStats()
        other.record_round(
            7,
            len(messages),
            sum(m.size for m in messages),
            by_service,
        )
        assert one.per_round(7) == other.per_round(7)
        assert one.by_service() == other.by_service()
        assert one.round_record(7) == other.round_record(7)
        assert one.summary() == other.summary()

    def test_record_round_empty_is_noop(self):
        stats = MessageStats()
        stats.record_round(3, 0, 0, {})
        assert stats.rounds_observed == 0


# ----------------------------------------------------------------------
# Pooled epidemic target selection
# ----------------------------------------------------------------------


class TestPushTargetPool:
    def test_cached_pool_preserves_rng_call_sequence(self):
        scope = tuple(range(20))
        first = random.Random(5)
        got_first = [
            choose_push_targets(first, scope, pid % 20, 4) for pid in range(30)
        ]
        _POOL_CACHE.clear()
        second = random.Random(5)
        got_second = [
            choose_push_targets(second, scope, pid % 20, 4) for pid in range(30)
        ]
        assert got_first == got_second
        # And both rngs consumed the identical stream.
        assert first.random() == second.random()

    def test_small_pool_returned_sorted_without_rng(self):
        rng = random.Random(0)
        before = rng.getstate()
        targets = choose_push_targets(rng, (3, 1, 2), 2, 5)
        assert targets == [1, 3]
        assert rng.getstate() == before

    def test_exclude_participates_in_cache_key(self):
        rng = random.Random(1)
        scope = tuple(range(10))
        with_exclude = choose_push_targets(
            rng, scope, 0, 8, exclude=frozenset({1, 2, 3})
        )
        assert not {1, 2, 3} & set(with_exclude)
        plain = choose_push_targets(random.Random(1), scope, 0, 9)
        assert set(plain) == set(range(1, 10))


# ----------------------------------------------------------------------
# Gossip broadcast horizon + min-expiry gating
# ----------------------------------------------------------------------


def make_gossip(pid=0, n=8, **kwargs):
    return ContinuousGossip(
        pid=pid,
        n=n,
        channel="t/equiv",
        scope=range(n),
        rng=random.Random(pid),
        **kwargs,
    )


class TestBroadcastHorizon:
    def test_item_leaves_broadcast_set_after_horizon(self):
        gossip = make_gossip(resend_horizon=4)
        item = gossip.inject(0, payload="p", deadline=100, dest=range(8))
        for round_no in range(1, 5):
            assert any(m.payload for m in gossip.send_phase(round_no))
        # Past the horizon: scanned out, but still active (not expired).
        assert gossip.send_phase(6) == []
        assert item.uid not in gossip._broadcast
        assert item.uid in gossip._active

    def test_backoff_path_still_rebroadcasts_after_horizon(self):
        gossip = make_gossip(resend_horizon=4, resend_backoff=True)
        gossip.inject(0, payload="p", deadline=100, dest=range(8))
        # ages 5 (=horizon+1) and 6 (=horizon+2) are backoff-due.
        assert gossip.send_phase(5) != []
        assert gossip.send_phase(6) != []
        assert gossip.send_phase(7) == []

    def test_min_expiry_skips_sweep_then_expires_both_dicts(self):
        gossip = make_gossip()
        item = gossip.inject(0, payload="p", deadline=3, dest=range(8))
        assert gossip._min_expiry == item.expiry
        gossip._expire(item.expiry)  # round == expiry: still alive
        assert item.uid in gossip._active
        gossip._expire(item.expiry + 1)
        assert item.uid not in gossip._active
        assert item.uid not in gossip._broadcast
        assert gossip._min_expiry > 2 ** 62


# ----------------------------------------------------------------------
# Auditor batch cache
# ----------------------------------------------------------------------


def frag_items(count, rid="r0", partitions=4):
    return tuple(
        GossipItem(
            uid=("equiv", i),
            origin=0,
            payload=Revealer(fragment_atom(rid, i % partitions, 0)),
            expiry=100,
            dest=frozenset(range(8)),
        )
        for i in range(count)
    )


class TestAuditorBatchCache:
    def _deliver_all(self, auditor, payload, dsts, rounds):
        for round_no in rounds:
            for dst in dsts:
                auditor.on_deliver(
                    round_no,
                    Message(
                        src=0,
                        dst=dst,
                        service=ServiceTags.GROUP_GOSSIP,
                        payload=payload,
                    ),
                )

    def test_repeated_batch_delivery_matches_fresh_auditor(self):
        payload = frag_items(6)
        cached = ConfidentialityAuditor(num_partitions=4, num_groups=2)
        # Same payload tuple fanned out repeatedly: exercises the id()-keyed
        # per-round cache plus the per-pid seen sets.
        self._deliver_all(cached, payload, dsts=range(1, 5), rounds=range(3))
        fresh = ConfidentialityAuditor(num_partitions=4, num_groups=2)
        for round_no in range(3):
            for dst in range(1, 5):
                # Re-built tuple each delivery: different id(), no cache hits.
                rebuilt = frag_items(6)
                fresh.on_deliver(
                    round_no,
                    Message(
                        src=0,
                        dst=dst,
                        service=ServiceTags.GROUP_GOSSIP,
                        payload=rebuilt,
                    ),
                )
        assert {
            pid: atoms for pid, atoms in cached.knowledge.items()
        } == {pid: atoms for pid, atoms in fresh.knowledge.items()}
        assert cached.total_border_messages == fresh.total_border_messages

    def test_batch_cache_cleared_on_round_change(self):
        payload = frag_items(2)
        auditor = ConfidentialityAuditor(num_partitions=4, num_groups=2)
        self._deliver_all(auditor, payload, dsts=[1], rounds=[0])
        assert auditor._batch_cache_round == 0
        assert id(payload) in auditor._batch_cache
        self._deliver_all(auditor, payload, dsts=[2], rounds=[5])
        assert auditor._batch_cache_round == 5
        assert list(auditor._batch_cache) == [id(payload)]

    def test_atomless_items_become_inert(self):
        items = tuple(
            GossipItem(
                uid=("inert", i),
                origin=0,
                payload="opaque-share",
                expiry=100,
                dest=frozenset(range(8)),
            )
            for i in range(3)
        )
        auditor = ConfidentialityAuditor(num_partitions=4, num_groups=2)
        self._deliver_all(auditor, items, dsts=[1, 2], rounds=[0])
        assert {item.uid for item in items} <= auditor._inert_uids
        assert auditor.knowledge.get(1, set()) == set()
