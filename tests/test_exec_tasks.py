"""Tests for repro.exec.tasks / results: specs, hashing, records."""

import os
import pickle

import pytest

from repro.core.config import CongosParams
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, canonical_json, execute_spec
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario


class TestRunSpecKey:
    def test_key_is_stable_hex(self):
        spec = RunSpec.make("steady", seed=0, n=8, rounds=200, deadline=64)
        assert len(spec.key) == 64
        assert spec.key == spec.key  # property recomputes deterministically
        assert spec.key == RunSpec.make(
            "steady", seed=0, n=8, rounds=200, deadline=64
        ).key

    def test_kwarg_order_does_not_matter(self):
        a = RunSpec.make("steady", seed=0, n=8, rounds=200, deadline=64)
        b = RunSpec.make("steady", seed=0, deadline=64, rounds=200, n=8)
        assert a.key == b.key

    def test_tuple_list_set_spellings_collide(self):
        a = RunSpec.make("churn", seed=0, n=8, rounds=200, immune=(0, 1))
        b = RunSpec.make("churn", seed=0, n=8, rounds=200, immune=[0, 1])
        c = RunSpec.make("churn", seed=0, n=8, rounds=200, immune={1, 0})
        assert a.key == b.key == c.key

    def test_seed_changes_key(self):
        a = RunSpec.make("steady", seed=0, n=8, rounds=200)
        b = RunSpec.make("steady", seed=1, n=8, rounds=200)
        assert a.key != b.key

    def test_kwargs_change_key(self):
        a = RunSpec.make("steady", seed=0, n=8, rounds=200)
        b = RunSpec.make("steady", seed=0, n=12, rounds=200)
        assert a.key != b.key

    def test_params_change_key(self):
        a = RunSpec.make("steady", seed=0, n=8, rounds=200)
        b = RunSpec.make(
            "steady", seed=0, n=8, rounds=200, params=CongosParams.lean()
        )
        c = RunSpec.make(
            "steady", seed=0, n=8, rounds=200, params=CongosParams()
        )
        assert a.key != b.key
        assert a.key != c.key  # explicit defaults still hash differently

    def test_builder_changes_key(self):
        a = RunSpec.make("steady", seed=0, n=8, rounds=200)
        b = RunSpec.make("burst", seed=0, n=8, rounds=200)
        assert a.key != b.key

    def test_golden_key_survives_restarts(self):
        # Pin the content hash: if this changes, every on-disk cache is
        # silently invalidated — bump it only on purpose.
        spec = RunSpec.make("steady", seed=0, n=8, rounds=200, deadline=64)
        assert spec.key == (
            "2801350ada440b11f5843b61fe728224bc25d86cb2b3375d6ca269b6fe259120"
        )

    def test_unregistered_callable_rejected(self):
        def anonymous_builder(**kwargs):
            raise AssertionError("never called")

        with pytest.raises(KeyError):
            RunSpec.make(anonymous_builder, seed=0, n=8, rounds=100)

    def test_registered_callable_resolves_to_name(self):
        spec = RunSpec.make(steady_scenario, seed=0, n=8, rounds=100)
        assert spec.builder == "steady"

    def test_unpicklable_kwarg_rejected(self):
        spec = RunSpec.make("steady", seed=0, n=8, fn=print)
        with pytest.raises(TypeError):
            spec.key

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": (2, 3)}) == '{"a":[2,3],"b":1}'


class TestRunSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = RunSpec.make(
            "steady", seed=3, n=8, rounds=200, params=CongosParams.lean()
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key == spec.key

    def test_pickle_round_trip(self):
        spec = RunSpec.make("steady", seed=3, n=8, rounds=200)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key == spec.key

    def test_to_scenario_rebuilds_params(self):
        spec = RunSpec.make(
            "steady",
            seed=3,
            n=8,
            rounds=200,
            deadline=64,
            params=CongosParams.lean(tau=2),
        )
        scenario = spec.to_scenario()
        assert scenario.n == 8
        assert scenario.seed == 3
        assert scenario.params == CongosParams.lean(tau=2)


class TestExecuteSpec:
    def test_matches_direct_run(self):
        spec = RunSpec.make(
            "steady",
            seed=0,
            n=8,
            rounds=200,
            deadline=64,
            params=CongosParams.lean(),
        )
        record = execute_spec(spec)
        direct = RunRecord.from_result(
            run_congos_scenario(
                steady_scenario(
                    n=8,
                    rounds=200,
                    seed=0,
                    deadline=64,
                    params=CongosParams.lean(),
                )
            ),
            spec_key=spec.key,
        )
        # execute_spec stamps wall_time/worker_pid; the simulation payload
        # must match the direct run exactly.
        assert record.without_profile() == direct
        assert record.wall_time > 0
        assert record.worker_pid == os.getpid()
        assert record.spec_key == spec.key
        assert record.qod_satisfied and record.clean
        assert record.peak > 0 and record.total >= record.peak


class TestRunRecord:
    def test_json_round_trip(self):
        spec = RunSpec.make(
            "steady",
            seed=0,
            n=8,
            rounds=200,
            deadline=64,
            params=CongosParams.lean(),
        )
        record = execute_spec(spec)
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_fallback_accounting(self):
        record = RunRecord(
            scenario="x",
            n=4,
            rounds=10,
            seed=0,
            peak=1,
            total=1,
            total_size=1,
            mean_per_round=0.1,
            filtered=0,
            paths={"shoot": 2, "pipeline": 6},
        )
        assert record.fallback_shots() == 2
        assert record.served_pairs() == 8
