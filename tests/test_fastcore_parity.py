"""The statistical-parity gate: ks_distance units plus one live cell.

The KS helper is pure python (tested without numpy); the live
object-vs-array comparison needs the ``repro[fast]`` extra and skips
without it.  CI's fast-smoke job runs the full four-cell gate; here one
small cell keeps tier-1 honest without the wall-clock cost.
"""

import pytest

from repro.fastcore.parity import (
    ParityGate,
    default_parity_cells,
    ks_distance,
)


class TestKsDistance:
    def test_identical_samples_zero(self):
        assert ks_distance([1, 2, 3], [1, 2, 3]) == 0.0

    def test_identical_with_ties_zero(self):
        # Regression guard: tied values must advance both ECDFs together,
        # otherwise identical histograms show phantom distance.
        a = [21] * 44 + [25] * 48 + [29] * 48 + [33] * 48
        assert ks_distance(a, list(a)) == 0.0

    def test_disjoint_supports_one(self):
        assert ks_distance([1, 2], [3, 4]) == 1.0

    def test_known_half(self):
        assert ks_distance([1, 1, 1, 2], [1, 2, 2, 2]) == pytest.approx(0.5)

    def test_symmetry(self):
        a = [1, 1, 2, 5, 9]
        b = [1, 3, 3, 4]
        assert ks_distance(a, b) == ks_distance(b, a)

    def test_empty_handling(self):
        assert ks_distance([], []) == 0.0
        assert ks_distance([1], []) == 1.0
        assert ks_distance([], [1]) == 1.0

    def test_unsorted_input_ok(self):
        assert ks_distance([3, 1, 2], [2, 3, 1]) == 0.0


class TestDefaultCells:
    def test_pinned_cells_shape(self):
        cells = default_parity_cells(seeds=(0, 1))
        names = [cell.name for cell in cells]
        assert "e6-parity-n16-s0" in names
        assert "e11-parity-s1" in names
        assert len(cells) == 8
        # All cells run fault-free on the default backend, in array scope.
        assert all(cell.chaos is None and cell.backend == "inproc" for cell in cells)


class TestGateLive:
    def test_smallest_cell_passes(self):
        pytest.importorskip("numpy")
        gate = ParityGate()
        report = gate.check(default_parity_cells(seeds=(0,))[0])
        assert report.passed, report.failures
        assert report.delivered_pairs_equal
        assert report.qod_clean and report.confidentiality_clean
        assert report.latency_ks <= gate.max_latency_ks
        body = report.to_dict()
        assert body["passed"] is True
        assert body["failures"] == []
        assert set(body["service_rel_err"])  # per-service errors recorded
