"""Distributed telemetry for the sharded backend.

The contract under test (see DESIGN.md §9): a traced sharded run ships
worker-side event captures and metric snapshots to the coordinator as
``telemetry``/``metrics`` control frames, which merges them on the
``(round, worker, seq)`` order key into one stream that is

* **equivalent** to the inproc stream for the same scenario, modulo one
  extra ``worker`` field (events are compared canonically per round —
  the shard layout may interleave worker emission order within a round);
* **deterministic** — the same sharded run replays to a byte-identical
  merged stream;
* **leak-safe** — sanitization happens worker-side before encode, so no
  rumor payload bytes ever ride a telemetry or metrics frame;
* **metric-exact** — worker registries merge into totals equal to the
  inproc run's counters (``net.*`` coordinator metrics excluded).
"""

import dataclasses
import json

import pytest

from repro.adversary.injection import ScriptedWorkload
from repro.core.config import CongosParams
from repro.harness.runner import Scenario, run_congos_scenario
from repro.harness.scenarios import get_builder
from repro.net.codec import decode_frame
from repro.net.transport import TcpConnection
from repro.obs import CollectSink, Telemetry
from repro.obs.timeline import RumorTimeline


def _traced(scenario, subscribe_timeline=False):
    sink = CollectSink()
    telemetry = Telemetry(sinks=[sink])
    timeline = RumorTimeline() if subscribe_timeline else None
    if timeline is not None:
        telemetry.subscribe(timeline)
    result = run_congos_scenario(scenario, telemetry=telemetry)
    return result, sink.events, telemetry, timeline


def _sharded(scenario, workers):
    return dataclasses.replace(
        scenario, backend="sharded", net={"workers": workers}
    )


def _canonical(events):
    """Per-round canonical event sequence, ``worker`` label dropped."""
    out = []
    for event in events:
        payload = event.to_dict()
        payload.pop("worker", None)
        out.append((payload["round"], json.dumps(payload, sort_keys=True)))
    return sorted(out)


def _protocol_counters(telemetry):
    """Counter totals excluding the coordinator-only ``net.`` namespace."""
    return {
        (entry["name"], tuple(sorted(entry["labels"].items()))): entry["value"]
        for entry in telemetry.metrics.dump()
        if entry["type"] == "counter" and not entry["name"].startswith("net.")
    }


def _steady(n=16, rounds=96, seed=0, deadline=64):
    return get_builder("steady")(
        n=n, rounds=rounds, seed=seed, deadline=deadline,
        params=CongosParams.lean(),
    )


@pytest.mark.parametrize("workers", [2, 3])
def test_sharded_stream_matches_inproc_modulo_worker_label(workers):
    scenario = _steady()
    _, inproc_events, inproc_telemetry, _ = _traced(scenario)
    _, sharded_events, sharded_telemetry, _ = _traced(
        _sharded(scenario, workers)
    )
    assert inproc_events, "scenario produced no events"
    assert _canonical(sharded_events) == _canonical(inproc_events)
    # Every merged event names its origin shard; inproc events never do.
    assert all("worker" in event.fields for event in sharded_events)
    assert all("worker" not in event.fields for event in inproc_events)
    assert _protocol_counters(sharded_telemetry) == _protocol_counters(
        inproc_telemetry
    )


def test_chaos_fault_events_match_inproc():
    scenario = get_builder("chaos")(
        n=16, rounds=60, seed=3, deadline=64,
        drop=0.1, delay=0.1, duplicate=0.05, reorder=0.1,
        params=CongosParams.lean(),
    )
    # Both backends must draw message-keyed fates to be comparable.
    scenario = dataclasses.replace(scenario, chaos_keyed=True)
    _, inproc_events, inproc_telemetry, _ = _traced(scenario)
    _, sharded_events, sharded_telemetry, _ = _traced(_sharded(scenario, 3))
    assert any(event.kind.startswith("fault_") for event in sharded_events)
    assert _canonical(sharded_events) == _canonical(inproc_events)
    assert _protocol_counters(sharded_telemetry) == _protocol_counters(
        inproc_telemetry
    )


def test_merged_stream_is_deterministic():
    # Byte-for-byte: the merge key (round, worker, seq) is a total
    # order, so two identical runs serialize identical streams in
    # identical order — not just canonically equal ones.
    scenario = _sharded(_steady(rounds=64), 2)
    _, first, _, _ = _traced(scenario)
    _, second, _, _ = _traced(scenario)
    assert [e.to_json() for e in first] == [e.to_json() for e in second]


def test_timeline_reconstruction_matches_inproc():
    # RumorTimeline consumes the merged stream unchanged (it ignores the
    # unknown ``worker`` field), so lifecycle reconstruction — the trace
    # CLI's backbone — must agree with the inproc backend exactly.
    scenario = _steady()
    _, _, _, inproc_timeline = _traced(scenario, subscribe_timeline=True)
    _, _, _, sharded_timeline = _traced(
        _sharded(scenario, 2), subscribe_timeline=True
    )
    inproc_records = inproc_timeline.lifecycles()
    sharded_records = sharded_timeline.lifecycles()
    assert inproc_records, "no rumor lifecycles reconstructed"
    assert len(sharded_records) == len(inproc_records)
    for ours, theirs in zip(sharded_records, inproc_records):
        assert ours.rid == theirs.rid
        assert ours.inject_round == theirs.inject_round
        assert ours.delivered_count == theirs.delivered_count
        assert sorted(ours.latencies()) == sorted(theirs.latencies())


def test_no_rumor_bytes_in_telemetry_frames(monkeypatch):
    # The leak-safety pin: rumor payloads DO cross the wire in protocol
    # frames (injections ride round frames, fragments ride batches) but
    # must never appear in a telemetry or metrics frame — json_safe
    # reduces bytes to "<N bytes>" worker-side, before encode.
    marker = b"TOP-SECRET-MARKER"
    captured = []
    original_send = TcpConnection.send
    original_recv = TcpConnection.recv

    def tee_send(self, frame):
        captured.append(frame)
        original_send(self, frame)

    def tee_recv(self):
        frame = original_recv(self)
        captured.append(frame)
        return frame

    # Only the coordinator side is patched (workers are separate spawned
    # processes), which sees every frame in both directions.
    monkeypatch.setattr(TcpConnection, "send", tee_send)
    monkeypatch.setattr(TcpConnection, "recv", tee_recv)

    def workload(rng):
        return ScriptedWorkload(
            [
                (4, 0, 16, (5, 6), marker + b"-0"),
                (6, 2, 16, (1, 7), marker + b"-1"),
            ],
            rng,
        )

    scenario = Scenario(
        name="marker-leak",
        n=8,
        rounds=28,
        seed=0,
        params=CongosParams.lean(),
        workload_factory=workload,
        backend="sharded",
        net={"workers": 2},
    )
    result, events, _, _ = _traced(scenario)
    assert result.rumors_injected == 2
    assert events

    telemetry_frames = 0
    marker_in_protocol_frames = 0
    for frame in captured:
        kind, _ = decode_frame(frame)
        if kind in ("telemetry", "metrics"):
            telemetry_frames += 1
            assert marker not in frame, "rumor bytes leaked into a {} frame".format(kind)
        elif marker in frame:
            marker_in_protocol_frames += 1
    assert telemetry_frames > 0, "no telemetry frames crossed the wire"
    # Positive control: the tee does see the payload in protocol frames,
    # so a clean telemetry pass is meaningful.
    assert marker_in_protocol_frames > 0


def test_default_runs_send_no_telemetry_frames(monkeypatch):
    # The bit-identical guarantee for null-telemetry runs is structural:
    # with telemetry off the wire carries exactly the pre-telemetry
    # frame sequence — no telemetry/metrics frames at all.
    captured = []
    original_recv = TcpConnection.recv

    def tee_recv(self):
        frame = original_recv(self)
        captured.append(frame)
        return frame

    monkeypatch.setattr(TcpConnection, "recv", tee_recv)
    run_congos_scenario(_sharded(_steady(n=8, rounds=24, deadline=16), 2))
    kinds = {decode_frame(frame)[0] for frame in captured}
    assert "telemetry" not in kinds
    assert "metrics" not in kinds
    assert {"hello", "sent", "events", "final"} <= kinds


def test_coordinator_net_metrics_are_populated():
    result, _, telemetry, _ = _traced(_sharded(_steady(rounds=48), 2))
    engine = result.engine
    phases = engine.phase_summary()
    assert sorted(phases) == ["barrier", "merge", "route", "ship"]
    for summary in phases.values():
        assert summary["count"] == 48
        assert summary["p50"] is not None
        assert summary["p99"] >= summary["p50"] >= 0.0
    pairs = engine.worker_pair_summary()
    assert pairs, "no cross-shard batches recorded"
    for counts in pairs.values():
        assert counts["frames"] > 0
        assert counts["bytes"] > 0
    # Worker wait/queue instrumentation and transport totals fold into
    # the engine registry, and the traced registry sees all of it too.
    names = {entry["name"] for entry in engine.metrics.dump()}
    assert {
        "net.round.phase_seconds",
        "net.worker.barrier_wait_seconds",
        "net.worker.ship_wait_seconds",
        "net.worker.queue_depth",
        "net.worker.queue_peak",
        "net.transport.frames",
        "net.transport.bytes",
        "net.cross.frames",
        "net.cross.bytes",
    } <= names
    traced_names = {entry["name"] for entry in telemetry.metrics.dump()}
    assert names <= traced_names
