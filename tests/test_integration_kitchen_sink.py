"""The kitchen sink: every mechanism at once.

Collusion-tolerant CONGOS (tau=2) under simultaneous churn AND an adaptive
proxy killer, serving mixed-deadline traffic that includes destination-
hidden rumors — with greedy coalition analysis at the end.  If the paper's
guarantees compose, they hold here too.
"""

import pytest

from repro.adversary.adaptive import ProxyKillerAdversary
from repro.adversary.base import Adversary, ComposedAdversary
from repro.adversary.collusion import GreedyCoalition
from repro.adversary.injection import ScriptedWorkload
from repro.adversary.random_crash import ChurnAdversary
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.core.extensions import DestinationHidingWorkload
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 12
ROUNDS = 560
TAU = 2


class CombinedFaults(Adversary):
    """Churn plus an adaptive proxy killer in one adversary."""

    def __init__(self, rng):
        # Scripted sources stay immune so every scripted injection lands;
        # everyone else is fair game.
        self.churn = ChurnAdversary(
            rng, p_crash=0.008, p_restart=0.3, min_alive=6, immune={0, 1, 2, 3, 4}
        )
        self.killer = ProxyKillerAdversary(
            budget_per_round=1, total_budget=6, restart_after=32
        )

    def round_start(self, view):
        decision = self.churn.round_start(view)
        revive = self.killer.round_start(view)
        decision.restarts |= revive.restarts - decision.crashes - decision.restarts
        return decision

    def mid_round(self, view, outgoing):
        return self.killer.mid_round(view, outgoing)


@pytest.fixture(scope="module")
def kitchen_sink_run():
    params = CongosParams(tau=TAU, collusion_direct_factor=16.0)
    partitions = build_partition_set(N, params, seed=99)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        partitions.count, partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=params,
        seed=99,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    plain_script = [
        (80, 0, 64, {3, 5}),
        (96, 1, 128, {2, 6, 9}),
        (140, 2, 300, {7}),
        (170, 3, 16, {8, 10}),  # direct-send class
    ]
    hidden_script = [(120, 4, 64, {6, 11})]

    def hidden_factory(rng):
        inner = ScriptedWorkload(
            hidden_script, derive_rng(99, "hidden"), seq_start=500_000
        )
        return DestinationHidingWorkload(inner, N, rng)

    adversary = ComposedAdversary(
        [
            ScriptedWorkload(plain_script, derive_rng(99, "plain")),
            hidden_factory(derive_rng(99, "hidewrap")),
            CombinedFaults(derive_rng(99, "faults")),
        ]
    )
    engine = Engine(
        N,
        factory,
        adversary,
        observers=[delivery, confidentiality],
        seed=99,
    )
    engine.run(ROUNDS)
    return engine, delivery, confidentiality


class TestKitchenSink:
    def test_faults_actually_happened(self, kitchen_sink_run):
        engine, *_ = kitchen_sink_run
        summary = engine.event_log.summary()
        assert summary["crashes"] > 0
        assert summary["restarts"] > 0

    def test_qod_holds(self, kitchen_sink_run):
        engine, delivery, _ = kitchen_sink_run
        report = delivery.report(engine)
        assert report.satisfied, report.summary()

    def test_confidentiality_holds(self, kitchen_sink_run):
        engine, _, confidentiality = kitchen_sink_run
        assert confidentiality.is_clean()
        assert confidentiality.violation_counts()["multiplicity"] == 0

    def test_tau_coalitions_blocked(self, kitchen_sink_run):
        engine, _, confidentiality = kitchen_sink_run
        findings = confidentiality.check_coalitions(
            GreedyCoalition(), tau=TAU, n=N
        )
        assert findings
        assert not any(f.reconstructs for f in findings)

    def test_mixed_deadline_classes_instantiated(self, kitchen_sink_run):
        engine, *_ = kitchen_sink_run
        classes = set()
        for pid in range(N):
            node = engine.behavior(pid)
            if node is not None:
                classes |= set(node.instances)
        assert 64 in classes
        assert 256 in classes

    def test_hidden_rumors_expanded(self, kitchen_sink_run):
        engine, delivery, _ = kitchen_sink_run
        hidden_rids = [
            rid for rid in delivery.rumors if rid.seq >= 500_000
        ]
        # One hidden rumor -> up to N-1 sub-rumors (crash timing may drop
        # a couple of expansions whose source happened to be down).
        assert len(hidden_rids) >= N // 2
        for rid in hidden_rids:
            assert len(delivery.rumors[rid].dest) == 1
