"""Tests for the repro.api facade: everything in ``__all__`` resolves,
and the three entry points behave like their underlying machinery."""

import json

import pytest

import repro.api as api
from repro.harness.scenarios import steady_scenario


class TestSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_registry_reexported(self):
        assert "steady" in api.BUILDERS
        assert api.get_builder("direct") is api.BUILDERS["direct"]
        assert api.builder_name(api.BUILDERS["chaos"]) == "chaos"

    def test_params_is_the_real_class(self):
        from repro.core.config import CongosParams

        assert api.CongosParams is CongosParams


class TestRunScenario:
    def test_by_name(self):
        result = api.run_scenario("steady", n=10, rounds=160, seed=2)
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()

    def test_prebuilt_scenario(self):
        scenario = steady_scenario(n=10, rounds=160, seed=2)
        by_name = api.run_scenario("steady", n=10, rounds=160, seed=2)
        prebuilt = api.run_scenario(scenario)
        assert prebuilt.stats.total == by_name.stats.total

    def test_kwargs_with_prebuilt_scenario_rejected(self):
        scenario = steady_scenario(n=10, rounds=160, seed=2)
        with pytest.raises(TypeError, match="registry name"):
            api.run_scenario(scenario, n=16)

    def test_seed_with_prebuilt_scenario_rejected(self):
        scenario = steady_scenario(n=10, rounds=160, seed=2)
        with pytest.raises(TypeError, match="registry name"):
            api.run_scenario(scenario, seed=7)

    def test_matching_or_default_seed_with_prebuilt_ok(self):
        scenario = steady_scenario(n=10, rounds=160, seed=2)
        # seed=0 (the default) and the scenario's own seed both pass.
        assert api.run_scenario(scenario, seed=2).qod.satisfied

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="steady"):
            api.run_scenario("nope", n=8, rounds=40)


class TestPresets:
    def test_names_match_config_registry(self):
        from repro.core.config import CongosParams

        described = api.presets()
        assert sorted(described) == sorted(CongosParams.preset_names())
        for name, description in described.items():
            assert isinstance(description, str) and description
            CongosParams.preset(name)  # every described name builds


class TestRunOpen:
    def test_defaults(self):
        result = api.run_open(n=16, rounds=160, seed=3)
        load = result.summary()["load"]
        assert load["offered"] > 0
        assert load["shed_leak_free"]

    def test_spec_objects(self):
        arrival = api.ArrivalSpec(process="poisson", rate=1.0)
        admission = api.AdmissionPolicy(per_round=2, queue_cap=32)
        result = api.run_open(
            arrival, admission, seed=3, n=16, rounds=160
        )
        workload = result.workload
        assert workload.spec == arrival
        assert workload.budget == 2

    def test_spec_kwarg_clash_rejected(self):
        with pytest.raises(TypeError, match="exactly one place"):
            api.run_open(
                api.ArrivalSpec(rate=1.0), n=16, rounds=160, rate=2.0
            )

    def test_matches_run_scenario(self):
        via_open = api.run_open(n=16, rounds=160, seed=3, rate=1.0)
        via_name = api.run_scenario(
            "open", n=16, rounds=160, seed=3, rate=1.0
        )
        assert via_open.summary() == via_name.summary()


class TestSweep:
    def test_matches_sweep_congos(self):
        from repro.analysis.sweeps import sweep_congos

        cells = api.grid(n=[8, 10])
        via_api = api.sweep("steady", cells, seeds=(0,), rounds=120)
        direct = sweep_congos("steady", cells, seeds=(0,), rounds=120)
        assert via_api.all_satisfied() and via_api.all_clean()
        assert [
            [run.without_profile() for run in cell.runs]
            for cell in via_api.cells
        ] == [
            [run.without_profile() for run in cell.runs]
            for cell in direct.cells
        ]

    def test_backend_and_net_pass_through(self):
        cells = api.grid(n=[8])
        inproc = api.sweep("steady", cells, seeds=(0,), rounds=80, deadline=16)
        sharded = api.sweep(
            "steady",
            cells,
            seeds=(0,),
            rounds=80,
            deadline=16,
            backend="sharded",
            net={"workers": 2},
        )

        # backend/net ride the spec (and thus the cache key), so compare
        # the payloads with spec_key stripped alongside the profile.
        def strip(sweep):
            import dataclasses

            return [
                [
                    dataclasses.replace(
                        run.without_profile(), spec_key=None
                    )
                    for run in cell.runs
                ]
                for cell in sweep.cells
            ]

        assert strip(sharded) == strip(inproc)


class TestTrace:
    def test_returns_result_and_timeline(self):
        result, timeline = api.trace("steady", seed=1, n=10, rounds=160)
        assert result.qod.satisfied
        records = timeline.lifecycles()
        assert records
        assert timeline.replay(records[0].rid)

    def test_jsonl_export(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        _, timeline = api.trace("steady", seed=1, n=10, rounds=160, jsonl=path)
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        kinds = {entry.get("kind") for entry in lines}
        assert "rumor_inject" in kinds
        assert "rumor_lifecycle" in kinds  # exported at the end
        assert len(timeline.lifecycles()) == sum(
            1 for entry in lines if entry.get("kind") == "rumor_lifecycle"
        )
