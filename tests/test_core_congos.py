"""Integration tests for the full CONGOS node (small n, short deadlines)."""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import CongosNode, build_partition_set, congos_factory
from repro.core.partitions import BitPartitions, RandomPartitions
from repro.sim.engine import Engine
from repro.sim.rng import SeedSequence, derive_rng


def run_script(script, n=8, rounds=260, params=None, seed=0):
    """Run CONGOS with a scripted workload and both auditors attached."""
    resolved = params if params is not None else CongosParams()
    partitions = build_partition_set(n, resolved, seed)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(partitions.count, partitions.num_groups)
    factory = congos_factory(
        n,
        params=resolved,
        seed=seed,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    workload = ScriptedWorkload(script, derive_rng(seed, "wl"))
    engine = Engine(
        n,
        factory,
        ComposedAdversary([workload]),
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(rounds)
    return engine, delivery, confidentiality, delivery.report(engine)


class TestPipelineDelivery:
    def test_single_rumor_delivered_by_deadline(self):
        engine, delivery, _, report = run_script(
            [(64, 0, 64, {3, 5})], rounds=200
        )
        assert report.satisfied
        assert report.admissible_pairs == 2
        assert report.path_counts() == {"reassembled": 2}

    def test_delivery_before_deadline_not_just_at(self):
        engine, delivery, _, report = run_script([(64, 0, 128, {3})], rounds=260)
        latencies = report.latencies()
        assert latencies and max(latencies) < 128

    def test_source_in_destination_set(self):
        engine, delivery, _, report = run_script([(64, 2, 64, {2, 5})])
        entry = delivery.deliveries[(delivery.injected_rid(0), 2)]
        assert entry[2] == "local"
        assert report.satisfied

    def test_data_integrity(self):
        engine, delivery, _, report = run_script(
            [(64, 1, 64, {6}, b"payload-bytes-123")]
        )
        rid = delivery.injected_rid(0)
        assert delivery.deliveries[(rid, 6)][1] == b"payload-bytes-123"

    def test_short_deadline_goes_direct(self):
        engine, delivery, _, report = run_script([(64, 0, 16, {3, 5})], rounds=120)
        assert report.satisfied
        assert set(report.path_counts()) == {"direct"}

    def test_multiple_sources_same_round(self):
        script = [(64, pid, 64, {(pid + 1) % 8, (pid + 2) % 8}) for pid in range(8)]
        engine, delivery, _, report = run_script(script, rounds=220)
        assert report.satisfied
        assert report.admissible_pairs == 16

    def test_mixed_deadline_classes(self):
        script = [(64, 0, 64, {1}), (64, 1, 200, {2}), (70, 2, 500, {3})]
        engine, delivery, _, report = run_script(script, rounds=600)
        assert report.satisfied

    def test_empty_destination_is_noop(self):
        engine, delivery, _, report = run_script([(64, 0, 64, set())], rounds=160)
        assert report.satisfied
        assert engine.stats.total == 0

    def test_self_only_destination_is_local(self):
        engine, delivery, _, report = run_script([(64, 0, 64, {0})], rounds=160)
        assert report.satisfied
        assert engine.stats.total == 0


class TestConfidentialityIntegration:
    def test_no_violations_fault_free(self):
        script = [(64 + i, i % 8, 64, {(i + 3) % 8}) for i in range(12)]
        _, _, confidentiality, report = run_script(script, rounds=300)
        assert report.satisfied
        assert confidentiality.is_clean()
        assert confidentiality.violation_counts()["multiplicity"] == 0

    def test_outsiders_cannot_reconstruct(self):
        script = [(64, 0, 64, {1})]
        engine, _, confidentiality, _ = run_script(script, rounds=200)
        rid = next(iter(confidentiality.rumors))
        # The minimal coalition able to reconstruct must need >= 2 members
        # (tau=1: no single outsider may reconstruct), or be impossible.
        size = confidentiality.min_coalition_size(rid, 8)
        assert size is None or size >= 2

    def test_filters_never_fire(self):
        engine, _, _, _ = run_script([(64, 0, 64, {3})], rounds=200)
        for pid in range(8):
            node = engine.behavior(pid)
            for bundle in node.instances.values():
                for gossip in bundle.gossip:
                    assert gossip.filter.dropped == 0


class TestCollusionMode:
    def test_tau2_pipeline_delivery(self):
        params = CongosParams(tau=2)
        engine, delivery, confidentiality, report = run_script(
            [(64, 0, 64, {3, 5})], n=12, rounds=200, params=params
        )
        assert report.satisfied
        assert confidentiality.is_clean()
        assert report.path_counts() == {"reassembled": 2}

    def test_tau2_fragments_are_three_way(self):
        params = CongosParams(tau=2)
        engine, _, confidentiality, _ = run_script(
            [(64, 0, 64, {3})], n=12, rounds=200, params=params
        )
        rid = next(iter(confidentiality.rumors))
        holders = confidentiality.fragment_holders
        groups_seen = {
            key[2] for key in holders if key[0] == rid and holders[key]
        }
        assert groups_seen == {0, 1, 2}

    def test_collusion_forced_direct_for_huge_tau(self):
        params = CongosParams(tau=6)
        engine, delivery, _, report = run_script(
            [(20, 0, 64, {3, 5})], n=8, rounds=120, params=params
        )
        assert report.satisfied
        assert set(report.path_counts()) == {"direct"}


class TestNodeConstruction:
    def test_partition_set_mismatch_rejected(self):
        params = CongosParams(tau=2)
        partitions = BitPartitions(8)  # 2 groups but tau=2 needs 3
        with pytest.raises(ValueError):
            CongosNode(0, 8, params, partitions, SeedSequence(0))

    def test_partition_n_mismatch_rejected(self):
        params = CongosParams()
        with pytest.raises(ValueError):
            CongosNode(0, 8, params, BitPartitions(16), SeedSequence(0))

    def test_build_partition_set_base(self):
        assert isinstance(build_partition_set(16, CongosParams()), BitPartitions)

    def test_build_partition_set_collusion(self):
        partitions = build_partition_set(16, CongosParams(tau=2))
        assert isinstance(partitions, RandomPartitions)
        assert partitions.num_groups == 3

    def test_rumor_with_unknown_destination_rejected(self):
        with pytest.raises(ValueError):
            run_script([(64, 0, 64, {99})], rounds=70)


class TestDeterminism:
    def test_identical_runs(self):
        script = [(64, 0, 64, {3, 5}), (80, 2, 128, {1, 4})]
        first_engine, *_ = run_script(script, seed=11, rounds=260)
        second_engine, *_ = run_script(script, seed=11, rounds=260)
        assert first_engine.stats.total == second_engine.stats.total
        assert first_engine.stats.series(0, 259) == second_engine.stats.series(0, 259)

    def test_different_seeds_use_different_random_targets(self):
        from repro.sim.trace import Tracer

        script = [(64, 0, 64, {3, 5})]

        def edges(seed):
            tracer = Tracer(kinds=["deliver"])
            resolved = CongosParams()
            partitions = build_partition_set(8, resolved, seed)
            factory = congos_factory(8, params=resolved, seed=seed)
            workload = ScriptedWorkload(script, derive_rng(seed, "wl"))
            engine = Engine(
                8, factory, ComposedAdversary([workload]), observers=[tracer], seed=seed
            )
            engine.run(200)
            return {
                (e.round_no, e.detail["src"], e.detail["dst"]) for e in tracer.events
            }

        assert edges(1) != edges(2)
