"""Tests for repro.sim.rng: seed derivation and stream splitting."""

import itertools

from repro.sim.rng import SeedSequence, derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_master(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_differs_by_label(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_differs_by_label_order(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_label_path_not_confusable_with_concatenation(self):
        # ("ab",) vs ("a", "b") must differ: labels are delimited.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_returns_64_bit_int(self):
        seed = derive_seed(7, "anything")
        assert 0 <= seed < 2 ** 64

    def test_integer_labels_supported(self):
        assert derive_seed(1, 5, 6) == derive_seed(1, "5", "6")


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(9, "stream")
        b = derive_rng(9, "stream")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent_looking(self):
        a = derive_rng(9, "s1")
        b = derive_rng(9, "s2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSeedSequence:
    def test_child_path_accumulates(self):
        seq = SeedSequence(3).child("x").child("y", 4)
        assert seq.path == ("x", "y", 4)

    def test_child_does_not_mutate_parent(self):
        parent = SeedSequence(3)
        parent.child("x")
        assert parent.path == ()

    def test_seed_matches_derive(self):
        seq = SeedSequence(3).child("a", "b")
        assert seq.seed() == derive_seed(3, "a", "b")

    def test_rng_with_extra_labels(self):
        seq = SeedSequence(3).child("a")
        direct = derive_rng(3, "a", "b")
        via_seq = seq.rng("b")
        assert direct.random() == via_seq.random()

    def test_spawn_yields_numbered_children(self):
        seq = SeedSequence(1)
        children = list(itertools.islice(seq.spawn(), 3))
        assert [c.path for c in children] == [(0,), (1,), (2,)]

    def test_spawned_streams_differ(self):
        seq = SeedSequence(1)
        first, second = itertools.islice(seq.spawn(), 2)
        assert first.rng().random() != second.rng().random()

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(SeedSequence(5))
