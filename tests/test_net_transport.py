"""The pluggable transports: TCP loopback for real, zmq gating."""

import threading

import pytest

from repro.net.transport import TransportClosed, get_transport


def _serve(listener, frames_out, frames_in, count):
    connection = listener.accept()
    try:
        for _ in range(count):
            frames_in.append(connection.recv())
        for frame in frames_out:
            connection.send(frame)
    finally:
        connection.close()


def test_tcp_round_trip_both_directions():
    transport = get_transport("tcp", timeout=10.0)
    listener = transport.listen()
    assert listener.address[0] == "tcp"
    replies = [b"ack-1", b"ack-2"]
    received = []
    server = threading.Thread(
        target=_serve, args=(listener, replies, received, 2)
    )
    server.start()
    connection = transport.connect(listener.address)
    try:
        connection.send(b"frame-1")
        connection.send(b"\x00" * 100)  # binary-safe, embedded NULs
        assert connection.recv() == b"ack-1"
        assert connection.recv() == b"ack-2"
    finally:
        connection.close()
        server.join(5.0)
        listener.close()
    assert received == [b"frame-1", b"\x00" * 100]


def test_tcp_large_frame():
    transport = get_transport("tcp", timeout=30.0)
    listener = transport.listen()
    big = bytes(range(256)) * 4096  # 1 MiB, exercises chunked recv
    received = []
    server = threading.Thread(target=_serve, args=(listener, [], received, 1))
    server.start()
    connection = transport.connect(listener.address)
    try:
        connection.send(big)
    finally:
        connection.close()
        server.join(10.0)
        listener.close()
    assert received == [big]


def test_tcp_peer_close_raises_transport_closed():
    transport = get_transport("tcp", timeout=5.0)
    listener = transport.listen()
    accepted = []
    server = threading.Thread(
        target=lambda: accepted.append(listener.accept())
    )
    server.start()
    connection = transport.connect(listener.address)
    server.join(5.0)
    accepted[0].close()
    with pytest.raises(TransportClosed):
        connection.recv()
    connection.close()
    listener.close()


def test_tcp_rejects_foreign_address():
    transport = get_transport("tcp")
    with pytest.raises(ValueError, match="tcp transport got address"):
        transport.connect(("zmq", "127.0.0.1", 1))


def test_unknown_transport_name():
    with pytest.raises(ValueError, match="unknown transport"):
        get_transport("carrier-pigeon")


def test_zmq_without_pyzmq_names_the_extra():
    try:
        import zmq  # noqa: F401

        pytest.skip("pyzmq installed; the lazy-import gate is not reachable")
    except ImportError:
        pass
    with pytest.raises(RuntimeError, match=r"repro\[net\]"):
        get_transport("zmq")
