"""Tests for the chaos soak harness: jobs-invariant determinism, the E15
bench sidecar, the fail-fast QoD planted violation, and RunRecord faults."""

import json
import os

import pytest

from repro.audit.failfast import InvariantViolation
from repro.chaos.soak import (
    BENCH_NAME,
    cell_spec,
    chaos_cells,
    run_soak,
    soak_payload,
)
from repro.exec.bench_io import write_bench_json
from repro.exec.tasks import RunSpec, execute_spec
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import chaos_scenario

FIXED = {"n": 8, "rounds": 60, "deadline": 16}


class TestCells:
    def test_matrix_is_the_cartesian_product(self):
        cells = chaos_cells([0.0, 0.1], [0.0, 0.2])
        assert len(cells) == 4
        assert {"delay": 0.2, "drop": 0.1} in cells

    def test_cell_spec_merges_cell_over_fixed(self):
        spec = cell_spec(
            {"drop": 0.2}, {"drop": 0.1, "max_delay": 3, "rounds": 60}
        )
        assert spec.drop == 0.2
        assert spec.max_delay == 3  # fixed knob carried through

    def test_cell_spec_ignores_non_spec_kwargs(self):
        spec = cell_spec({"drop": 0.1}, {"n": 8, "hardened": True})
        assert spec.drop == 0.1


class TestSoakDeterminism:
    @pytest.fixture(scope="class")
    def cells(self):
        return chaos_cells([0.0, 0.1], [0.1])

    def test_payload_identical_at_any_jobs(self, cells):
        serial = run_soak(cells, seeds=(0, 1), jobs=1, **FIXED)
        pooled = run_soak(cells, seeds=(0, 1), jobs=2, **FIXED)
        assert soak_payload(serial, FIXED) == soak_payload(pooled, FIXED)

    def test_confidentiality_clean_across_matrix(self, cells):
        payload = soak_payload(run_soak(cells, seeds=(0, 1), jobs=1, **FIXED), FIXED)
        assert payload["all_clean"] is True
        # faults were actually injected in the non-null cells
        assert sum(payload["total_faults"].values()) > 0

    def test_bench_sidecar_deterministic(self, cells, tmp_path):
        paths = []
        for tag in ("a", "b"):
            sweep = run_soak(cells, seeds=(0,), jobs=1, **FIXED)
            out = str(tmp_path / tag)
            paths.append(
                write_bench_json(
                    BENCH_NAME,
                    soak_payload(sweep, FIXED),
                    results_dir=out,
                    created="2026-01-01T00:00:00+00:00",
                )
            )
        contents = [open(path, encoding="utf-8").read() for path in paths]
        assert contents[0] == contents[1]
        assert os.path.basename(paths[0]) == "BENCH_e15_chaos_matrix.json"
        document = json.loads(contents[0])
        assert document["cells"][0]["intensity"] == 0.1


class TestFailFastQoD:
    def test_planted_violation_is_caught(self):
        # Dropping 90% of all traffic must make some admissible pair miss
        # its deadline; with failfast="qod" the monitor raises mid-run
        # instead of letting the report surface it at the end.
        scenario = chaos_scenario(
            8, 60, seed=0, deadline=16, drop=0.9, failfast="qod"
        )
        with pytest.raises(InvariantViolation) as caught:
            run_congos_scenario(scenario)
        assert any(v.kind == "qod" for v in caught.value.violations)
        assert caught.value.round_no <= 60

    def test_reliable_run_passes_qod_failfast(self):
        scenario = chaos_scenario(8, 120, seed=0, deadline=16, failfast="qod")
        result = run_congos_scenario(scenario)
        assert result.qod.satisfied


class TestRunRecordFaults:
    def test_chaos_record_carries_fault_counts(self):
        spec = RunSpec.make(
            "chaos", seed=0, drop=0.3, **FIXED
        )
        record = execute_spec(spec)
        assert record.faults["drop"] > 0
        round_tripped = type(record).from_dict(record.to_dict())
        assert round_tripped.faults == record.faults

    def test_reliable_record_has_empty_faults(self):
        spec = RunSpec.make("steady", seed=0, **FIXED)
        record = execute_spec(spec)
        assert record.faults == {}
