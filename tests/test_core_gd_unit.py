"""Direct unit tests of the GroupDistributionService state machine (Fig 10)."""

import random

import pytest

from repro.core import group_distribution as gd_mod
from repro.core.config import CongosParams
from repro.core.group_distribution import (
    DistributionShare,
    FragmentDelivery,
    GDShare,
    GroupDistributionService,
)
from repro.core.partitions import BitPartitions
from repro.core.splitting import split_rumor
from repro.gossip.continuous import ContinuousGossip
from repro.sim.messages import Message, ServiceTags

from conftest import mk_rumor

N = 8
DLINE = 64  # block 16, activation round offset 1
PARTITION = 0


def make_gd(pid=0, wakeup=-100, params=None, received=None):
    partitions = BitPartitions(N)
    resolved = params if params is not None else CongosParams()
    scope = partitions.members(PARTITION, partitions.group_of(PARTITION, pid))
    gossip = ContinuousGossip(pid, N, "gg-test", scope, random.Random(1))
    all_gossip = ContinuousGossip(pid, N, "all-test", range(N), random.Random(2))
    sink = received if received is not None else []
    service = GroupDistributionService(
        pid=pid,
        n=N,
        channel="gd-test",
        dline=DLINE,
        partition=PARTITION,
        partition_set=partitions,
        params=resolved,
        rng=random.Random(3),
        gossip=gossip,
        all_gossip=all_gossip,
        on_fragments=lambda r, frags: sink.extend(frags),
        wakeup=wakeup,
    )
    return service, partitions, gossip, all_gossip


def own_fragment(partitions, pid=0, seq=0, dest=(3, 5), expiry=1000):
    my_group = partitions.group_of(PARTITION, pid)
    rumor = mk_rumor(seq=seq, dest=dest)
    fragments = split_rumor(rumor, PARTITION, 2, random.Random(seq), DLINE, expiry)
    return fragments[my_group]


class TestActivation:
    def test_uptime_gate(self):
        service, *_ = make_gd(wakeup=0)
        service.send_phase(17)  # block 1 activation round, uptime 17 < 42
        assert service.status == gd_mod.WAITING
        service.send_phase(49)  # block 3 activation, uptime 49 >= 42
        assert service.status == gd_mod.ACTIVE

    def test_active_regardless_of_fragments(self):
        """Unlike the Proxy, GD's census counts every uptime-qualified
        member (Section 4.5)."""
        service, *_ = make_gd()
        service.send_phase(17)
        assert service.status == gd_mod.ACTIVE
        assert service.partials == {}

    def test_waiting_collected_at_activation(self):
        service, partitions, *_ = make_gd()
        fragment = own_fragment(partitions)
        service.add_waiting(5, fragment)
        service.send_phase(17)
        assert fragment.uid in service.partials

    def test_wrong_group_fragment_rejected(self):
        service, partitions, *_ = make_gd(pid=0)
        my_group = partitions.group_of(PARTITION, 0)
        rumor = mk_rumor()
        fragments = split_rumor(rumor, PARTITION, 2, random.Random(0), DLINE, 100)
        with pytest.raises(ValueError):
            service.add_waiting(5, fragments[1 - my_group])

    def test_expired_waiting_dropped(self):
        service, partitions, *_ = make_gd()
        fragment = own_fragment(partitions, expiry=10)
        service.add_waiting(5, fragment)
        service.send_phase(17)
        assert service.partials == {}

    def test_local_destination_served_at_activation(self):
        received = []
        service, partitions, *_ = make_gd(pid=0, received=received)
        fragment = own_fragment(partitions, dest=(0, 5))
        service.add_waiting(5, fragment)
        service.send_phase(17)
        assert received == [fragment]
        assert (0, fragment.rid) in service.hit_set


class TestDistribution:
    def test_sends_only_to_destinations(self):
        service, partitions, *_ = make_gd()
        fragment = own_fragment(partitions, dest=(3, 5))
        service.add_waiting(5, fragment)
        messages = service.send_phase(17)
        assert messages
        assert {m.dst for m in messages} <= {3, 5}
        for message in messages:
            assert isinstance(message.payload, FragmentDelivery)
            for frag in message.payload.fragments:
                assert message.dst in frag.dest

    def test_hits_recorded_per_send(self):
        service, partitions, *_ = make_gd()
        fragment = own_fragment(partitions, dest=(3, 5))
        service.add_waiting(5, fragment)
        messages = service.send_phase(17)
        for message in messages:
            assert (message.dst, fragment.rid) in service.hit_set

    def test_hit_destinations_not_resent_within_block(self):
        service, partitions, *_ = make_gd()
        service.send_phase(17)  # activate with empty partials
        fragment = own_fragment(partitions, dest=(3,))
        service.partials[fragment.uid] = fragment
        service.hit_set.add((3, fragment.rid))  # already served this block
        assert service._send_fragments(18) == []

    def test_hit_set_resets_per_block(self):
        """hitSets are per-block state (Figure 10): a new block clears
        them and re-serves the new block's partials."""
        service, partitions, *_ = make_gd()
        fragment = own_fragment(partitions, dest=(3,))
        service.add_waiting(5, fragment)
        service.send_phase(17)
        assert service.hit_set
        service.send_phase(33)  # next block activation
        assert service.hit_set == set()

    def test_group_pool_mode_sends_to_other_group(self):
        params = CongosParams(gd_target_pool="group")
        service, partitions, *_ = make_gd(params=params)
        fragment = own_fragment(partitions, dest=(3,))
        service.add_waiting(5, fragment)
        messages = service.send_phase(17)
        my_group = partitions.group_of(PARTITION, 0)
        for message in messages:
            assert partitions.group_of(PARTITION, message.dst) != my_group
            # Appropriateness: only destination-set members get fragments.
            for frag in message.payload.fragments:
                assert message.dst in frag.dest

    def test_receive_delivers_fragments_up(self):
        received = []
        service, partitions, *_ = make_gd(pid=3, received=received)
        fragment = own_fragment(partitions, pid=3, dest=(3,))
        message = Message(
            src=1,
            dst=3,
            service=ServiceTags.GROUP_DISTRIBUTION,
            payload=FragmentDelivery(1, (fragment,)),
            channel="gd-test",
        )
        service.on_message(20, message)
        assert received == [fragment]

    def test_expired_incoming_fragments_ignored(self):
        received = []
        service, partitions, *_ = make_gd(pid=3, received=received)
        fragment = own_fragment(partitions, pid=3, dest=(3,), expiry=10)
        message = Message(
            src=1,
            dst=3,
            service=ServiceTags.GROUP_DISTRIBUTION,
            payload=FragmentDelivery(1, (fragment,)),
            channel="gd-test",
        )
        service.on_message(20, message)
        assert received == []


class TestSharesAndPublication:
    def test_share_injected_when_busy(self):
        service, partitions, _, all_gossip = make_gd()
        fragment = own_fragment(partitions)
        service.add_waiting(5, fragment)
        service.send_phase(17)
        service.send_phase(18)  # iteration round 2: GDShare injected
        gossip_items = service.gossip.active_items()
        assert any(isinstance(i.payload, GDShare) for i in gossip_items)

    def test_no_share_when_idle(self):
        service, *_ = make_gd()
        service.send_phase(17)
        service.send_phase(18)
        assert service.gossip.active_items() == []

    def test_share_merges_hits_and_census(self):
        service, partitions, *_ = make_gd()
        service.send_phase(17)
        share = GDShare(sender=4, hits=frozenset({(3, mk_rumor().rid)}))
        service.on_share(18, share)
        assert 4 in service._collaborators_next
        assert share.hits <= service.hit_set

    def test_distribution_published_at_block_end(self):
        service, partitions, _, all_gossip = make_gd()
        fragment = own_fragment(partitions, dest=(3,))
        service.add_waiting(5, fragment)
        service.send_phase(17)
        service.end_round(31)  # block 1 last round
        records = [
            item.payload
            for item in all_gossip.active_items()
            if isinstance(item.payload, DistributionShare)
        ]
        assert len(records) == 1
        record = records[0]
        assert record.partition == PARTITION
        assert record.dline == DLINE
        assert (3, fragment.rid) in record.hits

    def test_no_publication_without_hits(self):
        service, _, _, all_gossip = make_gd()
        service.send_phase(17)
        service.end_round(31)
        assert all_gossip.active_items() == []


class TestCatchUp:
    def test_catch_up_mid_block(self):
        service, *_ = make_gd(wakeup=-100)
        service.catch_up(20)
        assert service.status == gd_mod.ACTIVE

    def test_catch_up_before_activation_round_noop(self):
        service, *_ = make_gd(wakeup=-100)
        service.catch_up(17)
        assert service.status == gd_mod.WAITING
