"""Tests for repro.gossip.rumor: rumors, ids and gossip items."""

import pytest

from repro.gossip.rumor import GossipItem, Rumor, RumorId, make_rumor
from repro.sim.messages import plaintext_atom

from conftest import mk_rumor


class TestRumorId:
    def test_ordering(self):
        assert RumorId(0, 1) < RumorId(0, 2) < RumorId(1, 0)

    def test_str(self):
        assert str(RumorId(3, 7)) == "r3:7"

    def test_hashable(self):
        assert {RumorId(0, 0): "x"}[RumorId(0, 0)] == "x"


class TestRumor:
    def test_expiry(self):
        rumor = mk_rumor(deadline=64, injected_at=10)
        assert rumor.expiry == 74

    def test_is_active_window(self):
        rumor = mk_rumor(deadline=10, injected_at=5)
        assert not rumor.is_active(4)
        assert rumor.is_active(5)
        assert rumor.is_active(15)
        assert not rumor.is_active(16)

    def test_reveals_plaintext(self):
        rumor = mk_rumor()
        assert list(rumor.reveals()) == [plaintext_atom(rumor.rid)]

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            mk_rumor(deadline=0)

    def test_non_bytes_data_rejected(self):
        with pytest.raises(TypeError):
            Rumor(
                rid=RumorId(0, 0),
                data="not-bytes",  # type: ignore[arg-type]
                deadline=4,
                dest=frozenset({1}),
            )

    def test_str_mentions_deadline_and_dest_size(self):
        text = str(mk_rumor(deadline=64, dest=(1, 2, 3)))
        assert "d=64" in text and "|D|=3" in text


class TestMakeRumor:
    def test_auto_sequence_increments(self):
        first = make_rumor(5, b"a", 8, {1})
        second = make_rumor(5, b"b", 8, {1})
        assert second.rid.seq == first.rid.seq + 1

    def test_explicit_seq(self):
        rumor = make_rumor(6, b"a", 8, {1}, seq=99)
        assert rumor.rid == RumorId(6, 99)

    def test_dest_frozen(self):
        rumor = make_rumor(0, b"a", 8, [1, 2, 2])
        assert rumor.dest == frozenset({1, 2})


class TestGossipItem:
    def test_expired(self):
        item = GossipItem(uid=("u",), origin=0, payload=None, expiry=10, dest=frozenset())
        assert not item.expired(10)
        assert item.expired(11)

    def test_reveals_delegates_to_payload(self):
        rumor = mk_rumor()
        item = GossipItem(
            uid=("u",), origin=0, payload=rumor, expiry=10, dest=frozenset({1})
        )
        assert list(item.reveals()) == [plaintext_atom(rumor.rid)]

    def test_reveals_empty_for_control(self):
        item = GossipItem(
            uid=("u",), origin=0, payload={"x": 1}, expiry=10, dest=frozenset({1})
        )
        assert list(item.reveals()) == []
