"""End-to-end adversarial integration tests (Theorem 2 in action).

Every test runs the full CONGOS stack under a CRRI adversary and asserts
the two probability-1 guarantees: zero confidentiality violations
(Lemma 3) and zero missed admissible deliveries (Lemma 4).
"""

import pytest

from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import (
    burst_scenario,
    churn_scenario,
    group_killer_scenario,
    proxy_killer_scenario,
    rolling_blackout_scenario,
    source_killer_scenario,
    steady_scenario,
)

N = 8
ROUNDS = 360
DEADLINE = 64


def assert_invariants(result):
    report = result.qod
    assert report.satisfied, "QoD violated: {}".format(
        [(o.rid, o.pid) for o in report.missed][:5]
    )
    assert result.confidentiality.is_clean(), result.confidentiality.violation_counts()
    assert result.confidentiality.violation_counts()["multiplicity"] == 0


SCENARIOS = {
    "steady": steady_scenario,
    "churn": churn_scenario,
    "proxy-killer": proxy_killer_scenario,
    "group-killer": group_killer_scenario,
    "source-killer": source_killer_scenario,
    "rolling-blackout": rolling_blackout_scenario,
    "burst": burst_scenario,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 1])
def test_invariants_hold(name, seed):
    scenario = SCENARIOS[name](n=N, rounds=ROUNDS, seed=seed, deadline=DEADLINE)
    result = run_congos_scenario(scenario)
    assert_invariants(result)


def test_churn_heavy():
    scenario = churn_scenario(
        n=8, rounds=400, seed=7, deadline=64, p_crash=0.05, p_restart=0.3
    )
    result = run_congos_scenario(scenario)
    assert_invariants(result)


def test_rolling_blackout_still_delivers_between_immune_pair():
    scenario = rolling_blackout_scenario(
        n=8, rounds=400, seed=3, deadline=64, immune=(0, 1)
    )
    result = run_congos_scenario(scenario)
    assert_invariants(result)
    assert result.qod.admissible_pairs > 0


def test_proxy_killer_forces_retries_but_not_failures():
    scenario = proxy_killer_scenario(n=8, rounds=400, seed=9, deadline=64)
    result = run_congos_scenario(scenario)
    assert_invariants(result)
    assert result.engine.event_log.summary()["crashes"] > 0


def test_source_killer_leaves_no_admissible_pairs_unserved():
    scenario = source_killer_scenario(
        n=8, rounds=320, seed=2, deadline=64, kill_probability=1.0
    )
    result = run_congos_scenario(scenario)
    assert_invariants(result)
    # Every source died: nothing is admissible, nothing is owed.
    assert result.qod.admissible_pairs == 0


def test_fallback_path_still_counts_as_delivery():
    """Cripple the pipeline (tiny gossip fanout): the deadline fallback
    must still deliver every admissible rumor — Lemma 4's probability-1
    mechanism."""
    from repro.core.config import CongosParams

    params = CongosParams(
        fanout_scale=0.01, min_fanout=1, gossip_fanout_scale=0.2
    )
    scenario = steady_scenario(
        n=8, rounds=320, seed=4, deadline=64, params=params
    )
    result = run_congos_scenario(scenario)
    assert result.qod.satisfied
    paths = result.qod.path_counts()
    assert paths.get("shoot", 0) > 0, "expected the fallback to fire"


def test_messages_flow_only_while_rumors_active():
    """After the last deadline passes, the system goes quiet."""
    scenario = steady_scenario(n=8, rounds=400, seed=5, deadline=64)
    result = run_congos_scenario(scenario)
    assert_invariants(result)
    tail = result.stats.series(380, 399)
    assert sum(tail) == 0
