"""Behavior of the array round kernel behind the Engine surfaces.

Needs the ``repro[fast]`` extra (skips without numpy).  Statistical
parity with the object engine is gated separately in
test_fastcore_parity.py; this file covers the hard invariants — same
delivered pairs, clean audit, spec plumbing, scope rejection.
"""

import dataclasses

import pytest

pytest.importorskip("numpy")

from repro.core.config import CongosParams
from repro.exec.tasks import RunSpec
from repro.fastcore.engine import UnsupportedScenario
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario
from repro.obs.instrument import Telemetry


def _cell(n=16, rounds=96, seed=0):
    return steady_scenario(
        n=n,
        rounds=rounds,
        seed=seed,
        deadline=64,
        rate=1,
        period=4,
        params=CongosParams.lean(),
        name="fastcore-test-n{}-s{}".format(n, seed),
    )


def _array(scenario):
    return dataclasses.replace(scenario, engine="array")


class TestArrayRun:
    def test_small_steady_delivers_clean(self):
        result = run_congos_scenario(_array(_cell()))
        assert result.scenario.engine == "array"
        assert result.stats.total > 0
        assert len(result.delivery.deliveries) > 0
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
        assert not any(result.confidentiality.summary()["violations"].values())

    def test_delivered_pairs_match_object_engine(self):
        scenario = _cell()
        reference = run_congos_scenario(scenario)
        candidate = run_congos_scenario(_array(scenario))
        assert set(candidate.delivery.deliveries) == set(
            reference.delivery.deliveries
        )
        assert (
            candidate.delivery.injection_rounds
            == reference.delivery.injection_rounds
        )

    def test_api_engine_kwarg(self):
        from repro.api import run_scenario

        result = run_scenario(_cell(), engine="array")
        assert result.scenario.engine == "array"
        assert result.qod.satisfied


class TestScope:
    def test_engine_field_validated(self):
        with pytest.raises(ValueError, match="engine"):
            dataclasses.replace(_cell(), engine="warp")

    def test_unsupported_params_rejected(self):
        scenario = _cell()
        reliable = dataclasses.replace(
            scenario,
            engine="array",
            params=dataclasses.replace(scenario.params, gossip_reliable=True),
        )
        with pytest.raises(UnsupportedScenario, match="use the object engine"):
            run_congos_scenario(reliable)

    def test_chaos_plane_rejected(self):
        from repro.harness.scenarios import BUILDERS

        chaos = BUILDERS["chaos"](seed=0, n=8, rounds=40, drop=0.2)
        with pytest.raises(UnsupportedScenario, match="chaos fault plane"):
            run_congos_scenario(dataclasses.replace(chaos, engine="array"))

    def test_telemetry_rejected(self):
        with pytest.raises(ValueError, match="telemetry"):
            run_congos_scenario(_array(_cell()), telemetry=Telemetry())


class TestRunSpecPlumbing:
    def test_default_engine_excluded_from_key(self):
        base = RunSpec.make("steady", seed=0, n=8, rounds=32)
        explicit = RunSpec.make("steady", seed=0, n=8, rounds=32, engine="object")
        assert base.key == explicit.key
        assert "engine" not in base.to_dict()

    def test_array_engine_changes_key_and_roundtrips(self):
        base = RunSpec.make("steady", seed=0, n=8, rounds=32)
        fast = RunSpec.make("steady", seed=0, n=8, rounds=32, engine="array")
        assert fast.key != base.key
        assert fast.to_dict()["engine"] == "array"
        assert RunSpec.from_dict(fast.to_dict()) == fast
        assert fast.to_scenario().engine == "array"
