"""Behavioural tests for the Proxy and GroupDistribution services.

These run a real engine with a single scripted rumor and inspect the
services' internal state machines and message flows at specific rounds —
the code-level counterparts of the [PROXY:*] and [GD:*] properties of
Sections 4.4 and 4.5.
"""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.core import proxy as proxy_mod
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.core.group_distribution import FragmentDelivery
from repro.core.proxy import ProxyRequest, ProxyService
from repro.sim.engine import Engine, SimObserver
from repro.sim.messages import ServiceTags
from repro.sim.rng import derive_rng

DLINE = 64
N = 8


class MessageLog(SimObserver):
    def __init__(self):
        self.delivered = []

    def on_deliver(self, round_no, message):
        self.delivered.append((round_no, message))


def run_one_rumor(
    rounds=220, inject_at=64, deadline=64, dest=(3, 5), src=0, params=None, seed=0
):
    resolved = params if params is not None else CongosParams()
    partitions = build_partition_set(N, resolved, seed)
    factory = congos_factory(N, params=resolved, seed=seed, partition_set=partitions)
    workload = ScriptedWorkload(
        [(inject_at, src, deadline, set(dest))], derive_rng(seed, "wl")
    )
    log = MessageLog()
    engine = Engine(
        N, factory, ComposedAdversary([workload]), observers=[log], seed=seed
    )
    engine.run(rounds)
    return engine, log, partitions


class TestProxyConfidential:
    def test_requests_only_carry_target_group_fragments(self):
        """[PROXY:CONFIDENTIAL]: a request to group a carries only
        fragments of group a."""
        engine, log, partitions = run_one_rumor()
        request_count = 0
        for round_no, message in log.delivered:
            if message.service != ServiceTags.PROXY:
                continue
            if not isinstance(message.payload, ProxyRequest):
                continue
            request_count += 1
            channel_parts = message.channel.split("/")
            partition = int(channel_parts[2])
            target_group = partitions.group_of(partition, message.dst)
            for fragment in message.payload.fragments:
                assert fragment.group == target_group
        assert request_count > 0

    def test_requests_target_other_group_only(self):
        engine, log, partitions = run_one_rumor()
        for round_no, message in log.delivered:
            if message.service != ServiceTags.PROXY:
                continue
            if not isinstance(message.payload, ProxyRequest):
                continue
            partition = int(message.channel.split("/")[2])
            src_group = partitions.group_of(partition, message.src)
            dst_group = partitions.group_of(partition, message.dst)
            assert src_group != dst_group

    def test_requests_happen_at_iteration_start(self):
        engine, log, _ = run_one_rumor()
        for round_no, message in log.delivered:
            if message.service == ServiceTags.PROXY and isinstance(
                message.payload, ProxyRequest
            ):
                # Block length 16, iteration length 10: requests at block
                # offsets that start an iteration (offset 0 here).
                assert round_no % 16 == 0


class TestGDConfidential:
    def test_fragments_sent_only_to_destinations(self):
        """[GD:CONFIDENTIAL]: fragment deliveries only reach dest members."""
        engine, log, _ = run_one_rumor(dest=(3, 5))
        gd_count = 0
        for round_no, message in log.delivered:
            if message.service != ServiceTags.GROUP_DISTRIBUTION:
                continue
            gd_count += 1
            assert isinstance(message.payload, FragmentDelivery)
            for fragment in message.payload.fragments:
                assert message.dst in fragment.dest
        assert gd_count > 0

    def test_confirmation_only_after_hits(self):
        """[GD:CONFIRM]: the source confirms only rumors whose hitSets
        cover the whole destination set."""
        engine, log, _ = run_one_rumor(src=0, dest=(3, 5))
        coordinator = engine.behavior(0).coordinator
        assert coordinator.confirmations == 1
        assert coordinator.fallbacks == 0

    def test_paper_literal_group_pool_mode(self):
        """gd_target_pool='group' (the paper's literal rule) still
        delivers and still never sends fragments to non-destinations."""
        params = CongosParams(gd_target_pool="group")
        engine, log, _ = run_one_rumor(params=params, rounds=220)
        for round_no, message in log.delivered:
            if message.service != ServiceTags.GROUP_DISTRIBUTION:
                continue
            for fragment in message.payload.fragments:
                assert message.dst in fragment.dest
        delivered = engine.behavior(3).coordinator.delivered()
        assert len(delivered) == 1


class TestProxyLifecycle:
    def test_requester_goes_idle_after_ack(self):
        engine, log, _ = run_one_rumor(rounds=130)
        node = engine.behavior(0)
        bundle = node.instances[DLINE]
        for proxy_service in bundle.proxies:
            # Long after the block that carried the rumor, no requester
            # should still be active.
            assert proxy_service.status in (proxy_mod.IDLE, proxy_mod.ACTIVE)
            assert not proxy_service.my_fragments or proxy_service.acked_groups

    def test_acks_flow_back(self):
        engine, log, _ = run_one_rumor()
        acks = [
            (round_no, message)
            for round_no, message in log.delivered
            if message.service == ServiceTags.PROXY
            and not isinstance(message.payload, ProxyRequest)
        ]
        assert acks, "expected proxy acknowledgments"

    def test_proxy_stats_counted(self):
        engine, log, _ = run_one_rumor()
        total_requests = sum(
            bundle_proxy.requests_sent
            for pid in range(N)
            for bundle in [engine.behavior(pid).instances.get(DLINE)]
            if bundle is not None
            for bundle_proxy in bundle.proxies
        )
        assert total_requests > 0


class TestFragmentExpiryHandling:
    def test_expired_fragments_not_distributed_forever(self):
        """After the rumor's true deadline, no fragment traffic remains."""
        engine, log, _ = run_one_rumor(rounds=300, inject_at=64, deadline=64)
        late_fragment_traffic = [
            (round_no, message)
            for round_no, message in log.delivered
            if round_no > 64 + 64 + 16
            and message.service
            in (ServiceTags.GROUP_DISTRIBUTION, ServiceTags.PROXY)
        ]
        assert late_fragment_traffic == []


class TestProxyValidation:
    def test_own_group_fragment_rejected(self):
        engine, log, partitions = run_one_rumor(rounds=70)
        node = engine.behavior(0)
        bundle = node.instances[DLINE]
        proxy_service = bundle.proxies[0]
        my_group = partitions.group_of(0, 0)
        import random as random_module

        from repro.core.splitting import split_rumor
        from conftest import mk_rumor

        fragments = split_rumor(
            mk_rumor(), 0, 2, random_module.Random(0), DLINE, 100
        )
        own = [f for f in fragments if f.group == my_group]
        with pytest.raises(ValueError):
            proxy_service.distribute(0, own)
