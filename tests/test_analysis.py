"""Tests for repro.analysis: bounds, fitting, statistics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.bounds import (
    collusion_lower_bound,
    collusion_upper_bound,
    congos_upper_bound,
    groupgossip_upper_bound,
    strong_confidentiality_lower_bound,
    theorem1_expected_pairs,
)
from repro.analysis.fitting import fit_power_law, fit_with_polylog
from repro.analysis.stats import (
    all_runs_hold,
    binomial_upper_p,
    summarize,
)


class TestBounds:
    def test_congos_bound_decreases_with_deadline(self):
        """Theorem 11: longer dmin means cheaper rounds."""
        short = congos_upper_bound(64, 64)
        long = congos_upper_bound(64, 4096)
        assert short > long

    def test_congos_bound_near_linear_for_long_deadlines(self):
        n = 1024
        bound = congos_upper_bound(n, 10 ** 9, polylog_power=0)
        assert bound < 3 * n  # two ~n terms, no polylog

    def test_collusion_bound_is_tau_squared(self):
        base = congos_upper_bound(64, 256)
        assert collusion_upper_bound(64, 256, tau=3) == pytest.approx(9 * base)

    def test_strong_lb_shape(self):
        assert strong_confidentiality_lower_bound(
            64, 64, epsilon=0.5
        ) == pytest.approx(64 / 64)  # n^1 / dmax

    def test_collusion_lb_min_of_terms(self):
        small_tau = collusion_lower_bound(256, 1, tau=1)
        assert small_tau == pytest.approx(256.0)
        big_tau = collusion_lower_bound(256, 1, tau=10 ** 6, epsilon=0.5)
        assert big_tau == pytest.approx(256.0)

    def test_groupgossip_bound(self):
        assert groupgossip_upper_bound(64, 216, polylog_power=0) == pytest.approx(
            64 ** 2.0
        )

    def test_theorem1_pairs(self):
        pairs = theorem1_expected_pairs(64, 8)
        x = 64 ** 0.25
        assert pairs == pytest.approx(63 * x)

    def test_validation(self):
        with pytest.raises(ValueError):
            congos_upper_bound(64, 0)
        with pytest.raises(ValueError):
            collusion_upper_bound(64, 64, tau=0)
        with pytest.raises(ValueError):
            strong_confidentiality_lower_bound(64, 64, epsilon=2.0)


class TestFitting:
    def test_recovers_exact_power_law(self):
        xs = [16, 32, 64, 128]
        ys = [3 * x ** 1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.scale == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_noise_tolerated(self):
        xs = [16, 32, 64, 128, 256]
        ys = [x ** 2 * (1.1 if i % 2 else 0.9) for i, x in enumerate(xs)]
        fit = fit_power_law(xs, ys)
        assert 1.8 <= fit.exponent <= 2.2

    def test_polylog_divided_out(self):
        xs = [16, 32, 64, 128]
        ys = [x ** 1.2 * math.log2(x) ** 2 for x in xs]
        fit = fit_with_polylog(xs, ys, polylog_power=2.0)
        assert fit.exponent == pytest.approx(1.2, abs=0.02)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_positive_data_required(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 2])


@given(
    exponent=st.floats(min_value=0.5, max_value=3.0),
    scale=st.floats(min_value=0.1, max_value=10.0),
)
def test_fit_recovers_parameters_property(exponent, scale):
    xs = [8.0, 16.0, 32.0, 64.0]
    ys = [scale * x ** exponent for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.exponent == pytest.approx(exponent, abs=1e-6)
    assert fit.scale == pytest.approx(scale, rel=1e-6)


class TestStats:
    def test_summarize(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.count == 4

    def test_summarize_odd_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_all_runs_hold(self):
        assert all_runs_hold([True, True])
        assert not all_runs_hold([True, False])

    def test_binomial_upper(self):
        assert binomial_upper_p(10, 10) == pytest.approx(1 / 11)
        assert binomial_upper_p(9, 10) == pytest.approx(2 / 11)

    def test_binomial_validation(self):
        with pytest.raises(ValueError):
            binomial_upper_p(5, 0)
