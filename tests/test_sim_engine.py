"""Tests for repro.sim.engine: the synchronous round loop."""

import pytest

from repro.adversary.base import Adversary
from repro.sim.engine import Engine, SimObserver
from repro.sim.events import MidRoundDecision, RoundDecision
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior

from conftest import mk_rumor


class EchoNode(NodeBehavior):
    """Sends one message per round to (pid+1) mod n; records receptions."""

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.inbox_log = []
        self.injected = []

    def on_inject(self, round_no, rumor):
        self.injected.append(rumor)

    def send_phase(self, round_no):
        return [
            Message(
                src=self.pid,
                dst=(self.pid + 1) % self.n,
                service=ServiceTags.BASELINE,
                payload=round_no,
            )
        ]

    def receive_phase(self, round_no, inbox):
        self.inbox_log.append((round_no, [m.src for m in inbox]))


def echo_factory(n):
    return lambda pid: EchoNode(pid, n)


class OneShotAdversary(Adversary):
    def __init__(self, decisions=None, mid_decisions=None):
        self.decisions = decisions or {}
        self.mid_decisions = mid_decisions or {}

    def round_start(self, view):
        return self.decisions.get(view.round, RoundDecision())

    def mid_round(self, view, outgoing):
        maker = self.mid_decisions.get(view.round)
        return maker(view, outgoing) if maker else MidRoundDecision()


class Recorder(SimObserver):
    def __init__(self):
        self.events = []

    def on_round_begin(self, round_no):
        self.events.append(("begin", round_no))

    def on_crash(self, round_no, pid, mid_round):
        self.events.append(("crash", round_no, pid, mid_round))

    def on_restart(self, round_no, pid):
        self.events.append(("restart", round_no, pid))

    def on_inject(self, round_no, pid, rumor):
        self.events.append(("inject", round_no, pid))

    def on_deliver(self, round_no, message):
        self.events.append(("deliver", round_no, message.src, message.dst))

    def on_round_end(self, round_no, engine):
        self.events.append(("end", round_no))


class TestBasics:
    def test_same_round_delivery(self):
        """Synchronous model: messages sent in round t arrive in round t."""
        engine = Engine(3, echo_factory(3))
        engine.run(1)
        node = engine.behavior(1)
        assert node.inbox_log == [(0, [0])]

    def test_round_counter_advances(self):
        engine = Engine(2, echo_factory(2))
        engine.run(5)
        assert engine.round == 5
        assert engine.rounds_executed == 5

    def test_message_stats_recorded(self):
        engine = Engine(3, echo_factory(3))
        engine.run(2)
        assert engine.stats.total == 6
        assert engine.stats.per_round(0) == 3

    def test_all_alive_initially(self):
        engine = Engine(4, echo_factory(4))
        assert engine.alive_pids() == {0, 1, 2, 3}

    def test_needs_processes(self):
        with pytest.raises(ValueError):
            Engine(0, echo_factory(1))


class TestCrashRestart:
    def test_round_start_crash_silences_process(self):
        adversary = OneShotAdversary({1: RoundDecision(crashes={0})})
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(2)
        # Round 0: both send. Round 1: only pid 1 sends.
        assert engine.stats.per_round(0) == 2
        assert engine.stats.per_round(1) == 1
        assert engine.alive_pids() == {1}

    def test_crashed_process_receives_nothing(self):
        adversary = OneShotAdversary({1: RoundDecision(crashes={1})})
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(2)
        # pid 1 crashed at round 1 start; pid 0's round-1 message is lost.
        log = engine.event_log
        assert log.crash_rounds(1) == [1]

    def test_restart_resets_state(self):
        adversary = OneShotAdversary(
            {
                1: RoundDecision(crashes={0}),
                3: RoundDecision(restarts={0}),
            }
        )
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(5)
        node = engine.behavior(0)
        # Fresh node: only rounds >= 3 in its log.
        assert all(round_no >= 3 for round_no, _ in node.inbox_log)

    def test_restarted_process_receives_same_round(self):
        adversary = OneShotAdversary(
            {
                1: RoundDecision(crashes={0}),
                2: RoundDecision(restarts={0}),
            }
        )
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(3)
        node = engine.behavior(0)
        assert node.inbox_log[0] == (2, [1])

    def test_crash_and_restart_same_round_rejected(self):
        adversary = OneShotAdversary(
            {0: RoundDecision(crashes={0}, restarts={0})}
        )
        engine = Engine(2, echo_factory(2), adversary)
        with pytest.raises(ValueError):
            engine.run(1)

    def test_mid_round_crash_after_sending(self):
        def mid(view, outgoing):
            return MidRoundDecision(crashes={0})

        adversary = OneShotAdversary(mid_decisions={0: mid})
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(1)
        # pid 0 sent (counted) but is now dead; its message was delivered.
        assert engine.stats.per_round(0) == 2
        assert not engine.shells[0].alive
        assert engine.behavior(1).inbox_log == [(0, [0])]

    def test_mid_round_crash_receiver_loses_inbox(self):
        def mid(view, outgoing):
            return MidRoundDecision(crashes={1})

        adversary = OneShotAdversary(mid_decisions={0: mid})
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(1)
        assert not engine.shells[1].alive

    def test_mid_round_crash_with_message_drop(self):
        def mid(view, outgoing):
            drops = {
                i for i, m in enumerate(outgoing) if m.src == 0
            }
            return MidRoundDecision(crashes={0}, dropped_messages=drops)

        adversary = OneShotAdversary(mid_decisions={0: mid})
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(1)
        assert engine.behavior(1).inbox_log == [(0, [])]

    def test_mid_round_crash_of_dead_process_rejected(self):
        def mid(view, outgoing):
            return MidRoundDecision(crashes={0})

        adversary = OneShotAdversary(
            {0: RoundDecision(crashes={0})}, {0: mid}
        )
        engine = Engine(2, echo_factory(2), adversary)
        with pytest.raises(ValueError):
            engine.run(1)


class TestInjections:
    def test_injection_reaches_node(self):
        rumor = mk_rumor()
        adversary = OneShotAdversary(
            {0: RoundDecision(injections=[(1, rumor)])}
        )
        engine = Engine(2, echo_factory(2), adversary)
        engine.run(1)
        assert engine.behavior(1).injected == [rumor]
        assert len(engine.event_log.injections) == 1

    def test_double_injection_same_round_rejected(self):
        adversary = OneShotAdversary(
            {0: RoundDecision(injections=[(1, mk_rumor(seq=0)), (1, mk_rumor(seq=1))])}
        )
        engine = Engine(2, echo_factory(2), adversary)
        with pytest.raises(ValueError):
            engine.run(1)

    def test_injection_at_crashed_rejected(self):
        adversary = OneShotAdversary(
            {0: RoundDecision(crashes={1}, injections=[(1, mk_rumor())])}
        )
        engine = Engine(2, echo_factory(2), adversary)
        with pytest.raises(ValueError):
            engine.run(1)


class TestObservers:
    def test_event_order_within_round(self):
        recorder = Recorder()
        engine = Engine(2, echo_factory(2), observers=[recorder])
        engine.run(1)
        kinds = [event[0] for event in recorder.events]
        assert kinds[0] == "begin"
        assert kinds[-1] == "end"
        assert kinds.count("deliver") == 2

    def test_observer_sees_crash(self):
        recorder = Recorder()
        adversary = OneShotAdversary({0: RoundDecision(crashes={1})})
        engine = Engine(2, echo_factory(2), adversary, observers=[recorder])
        engine.run(1)
        assert ("crash", 0, 1, False) in recorder.events

    def test_add_observer_later(self):
        engine = Engine(2, echo_factory(2))
        recorder = Recorder()
        engine.add_observer(recorder)
        engine.run(1)
        assert recorder.events


class TestDeterminism:
    def test_same_seed_same_messages(self):
        def run():
            engine = Engine(4, echo_factory(4), seed=5)
            engine.run(10)
            return engine.stats.total, engine.stats.series(0, 9)

        assert run() == run()
