"""Integration tests for the Section-7 workload wrappers."""

import pytest

from repro.adversary.injection import ScriptedWorkload
from repro.core.extensions import (
    DestinationHidingWorkload,
    extract_hidden_payload,
)
from repro.harness.runner import Scenario, run_congos_scenario
from repro.sim.rng import derive_rng

N = 8
DEADLINE = 64


def hiding_scenario(script, rounds=320, seed=0):
    def workload(rng):
        inner = ScriptedWorkload(script, derive_rng(seed, "inner"))
        return DestinationHidingWorkload(inner, N, rng)

    return Scenario(
        name="dest-hiding",
        n=N,
        rounds=rounds,
        seed=seed,
        workload_factory=workload,
    )


class TestDestinationHidingWorkload:
    def test_expands_to_n_minus_one_rumors(self):
        result = run_congos_scenario(hiding_scenario([(64, 0, DEADLINE, {2, 5})]))
        assert result.rumors_injected == N - 1

    def test_all_sub_rumors_delivered(self):
        result = run_congos_scenario(hiding_scenario([(64, 0, DEADLINE, {2, 5})]))
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()

    def test_destinations_recover_payload(self):
        result = run_congos_scenario(hiding_scenario([(64, 0, DEADLINE, {2, 5})]))
        recovered = {}
        for (rid, pid), (rnd, data, path) in result.delivery.deliveries.items():
            payload = extract_hidden_payload(data)
            if payload is not None:
                recovered[pid] = payload
        assert set(recovered) == {2, 5}
        assert len(set(recovered.values())) == 1

    def test_non_destinations_get_chaff(self):
        result = run_congos_scenario(hiding_scenario([(64, 0, DEADLINE, {2})]))
        chaff_receivers = set()
        for (rid, pid), (rnd, data, path) in result.delivery.deliveries.items():
            if extract_hidden_payload(data) is None:
                chaff_receivers.add(pid)
        # Everyone except the source and the real destination got chaff.
        assert chaff_receivers == set(range(N)) - {0, 2}

    def test_every_destination_set_is_singleton(self):
        result = run_congos_scenario(hiding_scenario([(64, 0, DEADLINE, {2, 5})]))
        for rumor in result.delivery.rumors.values():
            assert len(rumor.dest) == 1

    def test_overlapping_expansions_defer(self):
        # Two rumors from the same source four rounds apart: expansions
        # overlap; the wrapper must serialise to one injection per round.
        script = [(64, 0, DEADLINE, {2}), (68, 0, DEADLINE, {3})]
        result = run_congos_scenario(hiding_scenario(script))
        assert result.rumors_injected == 2 * (N - 1)
        assert result.qod.satisfied

    def test_sub_rumor_rids_unique(self):
        script = [(64, 0, DEADLINE, {2}), (80, 1, DEADLINE, {3})]
        result = run_congos_scenario(hiding_scenario(script))
        rids = list(result.delivery.rumors)
        assert len(rids) == len(set(rids)) == 2 * (N - 1)
