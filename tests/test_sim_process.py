"""Tests for repro.sim.process: aliveness and volatile-state reset."""

import pytest

from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior, ProcessShell

from conftest import mk_rumor


class CountingNode(NodeBehavior):
    """Remembers things in volatile state, for crash-reset tests."""

    def __init__(self, pid, n=8):
        super().__init__(pid, n)
        self.started_at = None
        self.injections = []
        self.received = []

    def on_start(self, round_no):
        self.started_at = round_no

    def on_inject(self, round_no, rumor):
        self.injections.append((round_no, rumor))

    def send_phase(self, round_no):
        return [
            Message(src=self.pid, dst=(self.pid + 1) % self.n, service=ServiceTags.BASELINE)
        ]

    def receive_phase(self, round_no, inbox):
        self.received.extend(inbox)


class ForgingNode(NodeBehavior):
    def send_phase(self, round_no):
        return [Message(src=self.pid + 1, dst=0, service=ServiceTags.BASELINE)]


class TestLifecycle:
    def test_starts_dead_until_started(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        assert not shell.alive
        shell.start(0)
        assert shell.alive

    def test_on_start_receives_round(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        behavior = shell.start(17)
        assert behavior.started_at == 17

    def test_double_start_rejected(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        shell.start(0)
        with pytest.raises(RuntimeError):
            shell.start(1)

    def test_crash_discards_state(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        node = shell.start(0)
        node.injections.append("marker")
        shell.crash()
        assert not shell.alive
        fresh = shell.restart(5)
        assert fresh.injections == []
        assert fresh is not node

    def test_crash_when_dead_rejected(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        with pytest.raises(RuntimeError):
            shell.crash()

    def test_counters(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        shell.start(0)
        shell.crash()
        shell.restart(1)
        shell.crash()
        shell.restart(2)
        assert shell.crash_count == 2
        assert shell.restart_count == 2

    def test_factory_pid_mismatch_rejected(self):
        shell = ProcessShell(3, lambda pid: CountingNode(0))
        with pytest.raises(ValueError):
            shell.start(0)


class TestPhases:
    def test_crashed_process_sends_nothing(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        assert shell.send_phase(0) == []

    def test_crashed_process_ignores_receive(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        shell.receive_phase(0, [])  # must not raise

    def test_inject_at_crashed_rejected(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        with pytest.raises(RuntimeError):
            shell.inject(0, mk_rumor())

    def test_inject_forwarded(self):
        shell = ProcessShell(0, lambda pid: CountingNode(pid))
        node = shell.start(0)
        rumor = mk_rumor()
        shell.inject(4, rumor)
        assert node.injections == [(4, rumor)]

    def test_src_forgery_detected(self):
        shell = ProcessShell(0, lambda pid: ForgingNode(pid, 8))
        shell.start(0)
        with pytest.raises(ValueError):
            shell.send_phase(0)

    def test_behavior_pid_range_checked(self):
        with pytest.raises(ValueError):
            CountingNode(9, n=8)
