"""Tests for repro.harness: scenarios, runner wiring, reporting."""

import pytest

from repro.baselines.direct import direct_factory
from repro.core.config import CongosParams
from repro.harness.report import banner, format_kv, format_table, ratio_series
from repro.harness.runner import RunResult, Scenario, run_congos_scenario, run_with_factory
from repro.harness.scenarios import (
    burst_scenario,
    churn_scenario,
    collusion_scenario,
    injection_window,
    steady_scenario,
    theorem1_scenario,
)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long-header"], [[1, 2], [33, 4.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "long-header" in lines[0]
        assert lines[1].startswith("-")

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_format_kv(self):
        text = format_kv([("alpha", 1), ("b", 2.5)])
        assert "alpha: 1" in text

    def test_banner(self):
        assert "hello" in banner("hello")

    def test_ratio_series(self):
        assert ratio_series([2, 4, 12]) == [2.0, 3.0]

    def test_ratio_series_zero(self):
        assert ratio_series([0, 5]) == [float("inf")]


class TestScenarios:
    def test_injection_window_margins(self):
        start, stop = injection_window(400, 64)
        assert start >= 64
        assert stop + 64 + 4 <= 400

    def test_steady_scenario_shape(self):
        scenario = steady_scenario(8, 300, 0)
        assert scenario.n == 8
        assert scenario.workload_factory is not None
        assert scenario.fault_factory is None

    def test_churn_scenario_has_faults(self):
        assert churn_scenario(8, 300, 0).fault_factory is not None

    def test_collusion_scenario_sets_tau(self):
        scenario = collusion_scenario(12, 300, 0, tau=2)
        assert scenario.params.tau == 2

    def test_collusion_scenario_respects_params(self):
        params = CongosParams(fanout_scale=0.1)
        scenario = collusion_scenario(12, 300, 0, tau=2, params=params)
        assert scenario.params.tau == 2
        assert scenario.params.fanout_scale == 0.1

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="bad", n=1, rounds=10, seed=0)
        with pytest.raises(ValueError):
            Scenario(name="bad", n=4, rounds=0, seed=0)


class TestRunner:
    def test_run_congos_scenario_result_shape(self):
        result = run_congos_scenario(steady_scenario(8, 240, 0, deadline=64))
        assert isinstance(result, RunResult)
        assert result.rumors_injected > 0
        assert result.qod.satisfied
        summary = result.summary()
        assert {"scenario", "messages", "qod", "confidentiality"} <= set(summary)

    def test_run_with_baseline_factory(self):
        from repro.audit.delivery import DeliveryAuditor

        scenario = steady_scenario(8, 120, 0, deadline=64)
        delivery = DeliveryAuditor()
        factory = direct_factory(8, deliver_callback=delivery.record_delivery)
        result = run_with_factory(scenario, factory, delivery=delivery)
        assert result.qod.satisfied
        assert result.stats.total > 0

    def test_theorem1_scenario_runs_with_baseline(self):
        from repro.audit.delivery import DeliveryAuditor

        scenario = theorem1_scenario(16, 160, 0, c=8, dmax=64)
        delivery = DeliveryAuditor()
        factory = direct_factory(16, deliver_callback=delivery.record_delivery)
        result = run_with_factory(scenario, factory, delivery=delivery)
        assert result.qod.satisfied
        assert result.rumors_injected >= 8

    def test_burst_scenario_runs(self):
        result = run_congos_scenario(burst_scenario(8, 320, 0, deadline=64, bursts=1))
        assert result.qod.satisfied

    def test_reproducible(self):
        scenario = steady_scenario(8, 240, 3, deadline=64)
        first = run_congos_scenario(scenario)
        second = run_congos_scenario(steady_scenario(8, 240, 3, deadline=64))
        assert first.stats.total == second.stats.total
        assert first.qod.summary() == second.qod.summary()

    def test_quick_run_api(self):
        from repro import quick_run

        result = quick_run(n=8, rounds=240, seed=1, deadline=64)
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
