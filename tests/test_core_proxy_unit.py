"""Direct unit tests of the ProxyService state machine (Figure 9)."""

import random

import pytest

from repro.core import proxy as proxy_mod
from repro.core.config import CongosParams
from repro.core.partitions import BitPartitions
from repro.core.proxy import ProxyAck, ProxyRequest, ProxyService, ProxyShare
from repro.core.splitting import split_rumor
from repro.gossip.continuous import ContinuousGossip
from repro.sim.messages import Message, ServiceTags

from conftest import mk_rumor

N = 8
DLINE = 64  # block 16, iteration 10
PARTITION = 0


def make_proxy(pid=0, wakeup=-100, returns=None):
    partitions = BitPartitions(N)
    params = CongosParams()
    scope = partitions.members(PARTITION, partitions.group_of(PARTITION, pid))
    gossip = ContinuousGossip(
        pid, N, "gg-test", scope, random.Random(1)
    )
    sink = returns if returns is not None else []
    service = ProxyService(
        pid=pid,
        n=N,
        channel="px-test",
        dline=DLINE,
        partition=PARTITION,
        partition_set=partitions,
        params=params,
        rng=random.Random(2),
        gossip=gossip,
        on_group_fragments=lambda r, frags: sink.append((r, frags)),
        wakeup=wakeup,
    )
    return service, partitions, gossip


def other_group_fragment(partitions, pid=0, seq=0, expiry=1000):
    my_group = partitions.group_of(PARTITION, pid)
    rumor = mk_rumor(seq=seq)
    fragments = split_rumor(rumor, PARTITION, 2, random.Random(seq), DLINE, expiry)
    return fragments[1 - my_group]


def own_group_fragment(partitions, pid=0, seq=0, expiry=1000):
    my_group = partitions.group_of(PARTITION, pid)
    rumor = mk_rumor(seq=seq)
    fragments = split_rumor(rumor, PARTITION, 2, random.Random(seq), DLINE, expiry)
    return fragments[my_group]


def request_message(service, fragment, sender=1):
    return Message(
        src=sender,
        dst=service.pid,
        service=ServiceTags.PROXY,
        payload=ProxyRequest(sender, (fragment,)),
        channel=service.channel,
    )


class TestBlockCollection:
    def test_uptime_gate(self):
        service, partitions, _ = make_proxy(wakeup=0)
        service.send_phase(0)  # block start, zero uptime
        assert service.status == proxy_mod.WAITING
        for r in range(1, 16):
            service.send_phase(r)
        service.send_phase(16)  # next block start: 16 rounds uptime
        assert service.status == proxy_mod.IDLE

    def test_fragments_collected_next_block(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(3, [fragment])  # during block 0
        messages = service.send_phase(16)  # block 1 start
        assert service.status == proxy_mod.ACTIVE
        assert messages, "requests expected at iteration round 0"

    def test_fragment_at_block_start_round_deferred(self):
        """A fragment arriving in round 16 (block 1's start) belongs to
        block 1 and is collected at block 2."""
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(16, [fragment])
        service.send_phase(16)
        assert service.status == proxy_mod.IDLE  # not yet collected
        service.send_phase(32)
        assert service.status == proxy_mod.ACTIVE

    def test_expired_fragments_dropped_at_collection(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions, expiry=10)
        service.distribute(3, [fragment])
        service.send_phase(16)
        assert service.status == proxy_mod.IDLE

    def test_requests_carry_only_target_group_fragments(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(3, [fragment])
        messages = service.send_phase(16)
        my_group = partitions.group_of(PARTITION, 0)
        for message in messages:
            assert partitions.group_of(PARTITION, message.dst) != my_group
            for frag in message.payload.fragments:
                assert frag.group != my_group

    def test_own_group_fragment_rejected(self):
        service, partitions, _ = make_proxy()
        with pytest.raises(ValueError):
            service.distribute(3, [own_group_fragment(partitions)])


class TestProxyRole:
    def test_request_cached_and_ack_pending(self):
        service, partitions, _ = make_proxy(pid=1)
        service.send_phase(16)  # becomes IDLE
        fragment = own_group_fragment(partitions, pid=1)
        service.on_message(16, request_message(service, fragment, sender=0))
        assert fragment.uid in service.proxy_buffer
        assert 0 in service.ack_pending

    def test_waiting_service_ignores_requests(self):
        service, partitions, _ = make_proxy(pid=1, wakeup=15)
        service.send_phase(16)  # uptime 1 < 16 -> WAITING
        fragment = own_group_fragment(partitions, pid=1)
        service.on_message(16, request_message(service, fragment, sender=0))
        assert not service.proxy_buffer
        assert not service.ack_pending

    def test_ack_sent_at_iteration_last_round(self):
        service, partitions, _ = make_proxy(pid=1)
        service.send_phase(16)
        fragment = own_group_fragment(partitions, pid=1)
        service.on_message(16, request_message(service, fragment, sender=0))
        for r in range(17, 25):
            assert not any(
                isinstance(m.payload, ProxyAck) for m in service.send_phase(r)
            )
        acks = [
            m
            for m in service.send_phase(25)  # block offset 9: iteration end
            if isinstance(m.payload, ProxyAck)
        ]
        assert [m.dst for m in acks] == [0]
        assert service.ack_pending == set()

    def test_wrong_group_request_asserts(self):
        service, partitions, _ = make_proxy(pid=1)
        service.send_phase(16)
        fragment = other_group_fragment(partitions, pid=1)
        with pytest.raises(AssertionError):
            service.on_message(16, request_message(service, fragment, sender=0))

    def test_buffer_returned_via_share_self_delivery(self):
        returns = []
        service, partitions, gossip = make_proxy(pid=1, returns=returns)
        # Re-wire gossip delivery into the proxy (as CongosNode does).
        gossip.deliver = lambda r, item: service.on_share(r, item.payload)
        service.send_phase(16)
        fragment = own_group_fragment(partitions, pid=1)
        service.on_message(16, request_message(service, fragment, sender=0))
        service.send_phase(17)  # iteration round 1: share injected
        assert fragment.uid in service.partial_rumors
        # End of block: partial rumors handed up.
        service.end_round(31)
        assert returns and returns[0][1][0].uid == fragment.uid
        assert service.partial_rumors == {}


class TestAckBookkeeping:
    def test_unacked_targets_blacklisted(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(3, [fragment])
        messages = service.send_phase(16)
        targets = {m.dst for m in messages}
        for r in range(17, 26):
            service.send_phase(r)
        service.end_round(25)  # iteration last round, no acks arrived
        assert targets <= service.failed_proxies
        assert service.status == proxy_mod.ACTIVE  # keeps retrying

    def test_ack_sets_idle_and_marks_group(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(3, [fragment])
        messages = service.send_phase(16)
        acker = messages[0].dst
        service.on_message(
            25,
            Message(
                src=acker,
                dst=0,
                service=ServiceTags.PROXY,
                payload=ProxyAck(acker),
                channel=service.channel,
            ),
        )
        service.end_round(25)
        assert service.status == proxy_mod.IDLE
        assert fragment.group in service.acked_groups

    def test_desperation_reset_when_everyone_blacklisted(self):
        service, partitions, _ = make_proxy()
        fragment = other_group_fragment(partitions)
        service.distribute(3, [fragment])
        other = partitions.members(PARTITION, fragment.group)
        service.send_phase(16)
        service.failed_proxies = set(other)
        # Next block: fragment already consumed; inject a new one to force
        # another active block with a full blacklist.
        service.distribute(20, [other_group_fragment(partitions, seq=1)])
        messages = service.send_phase(32)
        assert messages, "desperation reset must retry the full group"


class TestShares:
    def test_share_updates_blacklist_and_census(self):
        service, partitions, _ = make_proxy()
        service.send_phase(16)
        share = ProxyShare(
            sender=2,
            fragments=(),
            failed_proxies=frozenset({5}),
            collaborator=True,
        )
        service.on_share(17, share)
        assert 5 in service.failed_proxies
        assert 2 in service._collaborators_next

    def test_share_fragments_enter_partial_rumors(self):
        service, partitions, _ = make_proxy()
        service.send_phase(16)
        fragment = own_group_fragment(partitions)
        share = ProxyShare(
            sender=2,
            fragments=(fragment,),
            failed_proxies=frozenset(),
            collaborator=False,
        )
        service.on_share(17, share)
        assert fragment.uid in service.partial_rumors

    def test_expired_share_fragments_skipped(self):
        service, partitions, _ = make_proxy()
        service.send_phase(16)
        fragment = own_group_fragment(partitions, expiry=10)
        share = ProxyShare(
            sender=2,
            fragments=(fragment,),
            failed_proxies=frozenset(),
            collaborator=False,
        )
        service.on_share(17, share)
        assert fragment.uid not in service.partial_rumors


class TestCatchUp:
    def test_catch_up_mid_block(self):
        service, partitions, _ = make_proxy(wakeup=-100)
        service.catch_up(20)  # mid block 1
        assert service.status == proxy_mod.IDLE

    def test_catch_up_noop_at_block_start(self):
        service, partitions, _ = make_proxy(wakeup=-100)
        service.catch_up(16)
        assert service.status == proxy_mod.WAITING  # send_phase will handle it

    def test_catch_up_respects_uptime(self):
        service, partitions, _ = make_proxy(wakeup=18)
        service.catch_up(20)
        assert service.status == proxy_mod.WAITING
