"""Tests for repro.chaos.plane and its integration with the network:
fault semantics, leak-safe attribution, and the untouched default path."""

import pytest

from repro.chaos.plane import (
    ChaosFaultPlane,
    FaultPlane,
    message_rids,
    pipeline_stage,
)
from repro.chaos.spec import FaultSpec
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import chaos_scenario
from repro.obs import Telemetry
from repro.obs.timeline import RumorTimeline
from repro.sim.network import Network

from conftest import mk_message, mk_rumor


def route(network, round_no, outgoing, alive=None):
    alive = alive if alive is not None else set(range(network.n))
    return network.route(
        round_no, outgoing, alive_after_round=alive, boundary_pids=set()
    )


def plane_network(spec, n=8, seed=7, **kwargs):
    plane = ChaosFaultPlane(seed, spec, n, **kwargs)
    return Network(n, fault_plane=plane), plane


class TestMessageRids:
    def test_rumor_payload_attributes_by_rid(self):
        rumor = mk_rumor(src=3, seq=5)
        message = mk_message(payload=rumor)
        assert str(rumor.rid) in message_rids(message)

    def test_payload_bytes_never_leak(self):
        rumor = mk_rumor(data=b"super-secret-z")
        rids = message_rids(mk_message(payload=rumor))
        assert all("super-secret" not in rid for rid in rids)

    def test_opaque_payload_yields_nothing(self):
        assert message_rids(mk_message(payload=b"raw-bytes")) == []


class TestAdmitSemantics:
    def test_drop_everything(self):
        network, plane = plane_network(FaultSpec(drop=1.0))
        outcome = route(network, 0, [mk_message(src=0, dst=1)])
        assert outcome.delivered == []
        assert len(outcome.lost_to_fault) == 1
        assert plane.counts["drop"] == 1

    def test_delay_matures_through_release(self):
        spec = FaultSpec(delay=1.0, max_delay=1)
        network, plane = plane_network(spec)
        message = mk_message(src=0, dst=1)
        held = route(network, 0, [message])
        assert held.delivered == []
        assert held.delayed == [message]
        matured = route(network, 1, [])
        assert matured.delivered == [message]
        assert matured.inboxes[1] == [message]

    def test_duplicate_delivers_now_and_later(self):
        spec = FaultSpec(duplicate=1.0)
        network, plane = plane_network(spec)
        message = mk_message(src=0, dst=1)
        now = route(network, 0, [message])
        assert now.delivered == [message]
        assert now.duplicated == [message]
        later = route(network, 1, [])
        assert later.delivered == [message]
        assert plane.counts["duplicate"] == 1

    def test_matured_copy_to_crashed_dst_is_late_loss(self):
        spec = FaultSpec(delay=1.0, max_delay=1)
        network, plane = plane_network(spec)
        message = mk_message(src=0, dst=1)
        route(network, 0, [message])
        matured = route(network, 1, [], alive=set(range(8)) - {1})
        assert matured.delivered == []
        assert matured.lost_to_crash == [message]
        assert plane.counts["late_loss"] == 1

    def test_partition_severs_crossing_messages_only(self):
        spec = FaultSpec(partition_period=4, partition_width=1)
        network, plane = plane_network(spec)
        cut = plane.schedule.severed(0)
        inside = sorted(cut)
        outside = sorted(set(range(8)) - cut)
        crossing = mk_message(src=inside[0], dst=outside[0])
        internal = mk_message(src=inside[0], dst=inside[1])
        outcome = route(network, 0, [crossing, internal])
        assert crossing in outcome.lost_to_fault
        assert internal in outcome.delivered
        assert plane.counts["sever"] == 1
        # The storm is over at the next phase: everything delivers.
        calm = route(network, 1, [mk_message(src=inside[0], dst=outside[0])])
        assert len(calm.delivered) == 1

    def test_counts_summary_has_stable_keys(self):
        _, plane = plane_network(FaultSpec(drop=0.5))
        assert sorted(plane.counts_summary()) == sorted(
            ["drop", "delay", "duplicate", "sever", "reorder", "late_loss"]
        )

    def test_events_recorded_and_capped(self):
        network, plane = plane_network(FaultSpec(drop=1.0), max_events=2)
        route(network, 0, [mk_message(src=0, dst=d) for d in range(1, 6)])
        assert plane.counts["drop"] == 5
        assert len(plane.events) == 2
        assert all(event.kind == "drop" for event in plane.events)


class TestReorder:
    def test_shuffle_is_deterministic(self):
        spec = FaultSpec(reorder=1.0)
        messages = [mk_message(src=s, dst=1) for s in range(5)]
        orders = []
        for _ in range(2):
            network, _ = plane_network(spec)
            outcome = route(network, 0, list(messages))
            orders.append([m.src for m in outcome.inboxes[1]])
        assert orders[0] == orders[1]
        assert sorted(orders[0]) == [0, 1, 2, 3, 4]

    def test_single_message_inboxes_untouched(self):
        network, plane = plane_network(FaultSpec(reorder=1.0))
        route(network, 0, [mk_message(src=0, dst=1)])
        assert plane.counts["reorder"] == 0


class TestDefaultPathUntouched:
    def test_no_plane_means_no_chaos_fields(self):
        network = Network(8)
        assert network.fault_plane is None
        outcome = route(network, 0, [mk_message(src=0, dst=1)])
        assert outcome.lost_to_fault == []
        assert outcome.delayed == []
        assert outcome.duplicated == []
        assert len(outcome.delivered) == 1

    def test_base_plane_is_inert(self):
        plane = FaultPlane()
        assert not plane.active_in(0)
        assert not plane.has_pending()
        assert plane.admit(0, mk_message()) == "deliver"
        assert plane.release(0) == []

    def test_null_spec_scenario_installs_no_plane(self):
        scenario = chaos_scenario(8, 40, seed=0, deadline=16)
        assert scenario.fault_spec() is None
        result = run_congos_scenario(scenario)
        assert result.fault_plane is None
        assert result.chaos_summary() is None
        assert "chaos" not in result.summary()


class TestTelemetryAndTimeline:
    def run_traced(self, **chaos_kwargs):
        timeline = RumorTimeline()
        telemetry = Telemetry()
        telemetry.subscribe(timeline)
        scenario = chaos_scenario(8, 60, seed=3, deadline=16, **chaos_kwargs)
        result = run_congos_scenario(
            scenario, observers=[timeline], telemetry=telemetry
        )
        return result, timeline

    def test_faults_attributed_to_rumor_lifecycles(self):
        result, timeline = self.run_traced(drop=0.5)
        assert result.fault_plane.counts["drop"] > 0
        faulted = [rec for rec in timeline.lifecycles() if rec.faults]
        assert faulted
        entry = faulted[0].faults[0]
        assert entry["kind"] == "drop"
        assert isinstance(entry["src"], int)
        replay = "\n".join(timeline.replay(faulted[0].rid))
        assert "FAULT drop" in replay

    def test_fault_entries_survive_to_dict(self):
        _, timeline = self.run_traced(drop=0.5)
        faulted = [rec for rec in timeline.lifecycles() if rec.faults]
        payload = faulted[0].to_dict()
        assert payload["faults"][0]["kind"] == "drop"
        # json_safe output: no raw bytes anywhere in the fault entries
        assert all(
            not isinstance(value, bytes)
            for entry in payload["faults"]
            for value in entry.values()
        )

    def test_chaos_runs_stay_confidential(self):
        result, _ = self.run_traced(drop=0.3, delay=0.2, duplicate=0.1)
        assert result.confidentiality.is_clean()


class TestStageAttribution:
    def test_pipeline_stage_mapping(self):
        from repro.sim.messages import ServiceTags

        assert pipeline_stage(ServiceTags.PROXY) == "proxy"
        assert pipeline_stage(ServiceTags.GROUP_DISTRIBUTION) == "gd"
        assert pipeline_stage(ServiceTags.GROUP_GOSSIP) == "gossip"
        assert pipeline_stage(ServiceTags.ALL_GOSSIP) == "gossip"
        assert pipeline_stage(ServiceTags.CONFIDENTIAL) == "direct"
        assert pipeline_stage(ServiceTags.DIRECT_ACK) == "direct"
        assert pipeline_stage("mystery") == "other"

    def test_stage_counts_accumulate_per_service(self):
        from repro.sim.messages import ServiceTags

        network, plane = plane_network(FaultSpec(drop=1.0))
        route(
            network,
            0,
            [
                mk_message(src=0, dst=1, service=ServiceTags.PROXY),
                mk_message(src=0, dst=2, service=ServiceTags.PROXY),
                mk_message(src=0, dst=3, service=ServiceTags.CONFIDENTIAL),
            ],
        )
        assert plane.stage_counts["proxy"]["drop"] == 2
        assert plane.stage_counts["direct"]["drop"] == 1

    def test_counts_by_service_is_sorted_and_plain(self):
        from repro.sim.messages import ServiceTags

        network, plane = plane_network(FaultSpec(drop=1.0))
        route(
            network,
            0,
            [
                mk_message(src=0, dst=1, service=ServiceTags.GROUP_GOSSIP),
                mk_message(src=0, dst=2, service=ServiceTags.PROXY),
            ],
        )
        summary = plane.counts_by_service()
        assert list(summary) == sorted(summary)
        assert summary == {"gossip": {"drop": 1}, "proxy": {"drop": 1}}

    def test_soak_run_surfaces_stage_summary(self):
        scenario = chaos_scenario(8, 60, seed=3, deadline=16, drop=0.4)
        result = run_congos_scenario(scenario)
        by_stage = result.chaos_stage_summary()
        assert by_stage  # some stage got hit at this intensity
        assert result.summary()["chaos_by_stage"] == by_stage
        total_by_stage = sum(
            count for kinds in by_stage.values() for count in kinds.values()
        )
        # reorder is per-inbox (no single service), so it is the only
        # kind allowed to differ between the two views
        total_flat = sum(
            count
            for kind, count in result.fault_plane.counts.items()
            if kind != "reorder"
        )
        assert total_by_stage == total_flat

    def test_stage_metrics_emitted_when_telemetry_on(self):
        from repro.sim.messages import ServiceTags

        telemetry = Telemetry()
        plane = ChaosFaultPlane(7, FaultSpec(drop=1.0), 8, telemetry=telemetry)
        network = Network(8, fault_plane=plane)
        route(network, 0, [mk_message(src=0, dst=1, service=ServiceTags.PROXY)])
        sample = telemetry.metrics.counter(
            "chaos.faults", kind="drop", stage="proxy"
        )
        assert sample.value == 1
