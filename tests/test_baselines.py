"""Tests for the baseline protocols (direct, strongly confidential, plain)."""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.baselines.direct import direct_factory
from repro.baselines.plain_gossip import plain_gossip_factory
from repro.baselines.strongly_confidential import strongly_confidential_factory
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng


def run_baseline(factory_builder, script, n=8, rounds=80, seed=0):
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(num_partitions=1, num_groups=2)
    factory = factory_builder(delivery)
    workload = ScriptedWorkload(script, derive_rng(seed, "wl"))
    engine = Engine(
        n,
        factory,
        ComposedAdversary([workload]),
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(rounds)
    return engine, delivery, confidentiality, delivery.report(engine)


class TestDirectSend:
    def build(self, delivery):
        return direct_factory(8, deliver_callback=delivery.record_delivery)

    def test_delivers_same_round(self):
        engine, delivery, _, report = run_baseline(
            self.build, [(5, 0, 16, {1, 2, 3})]
        )
        assert report.satisfied
        assert report.latencies() == [0, 0, 0]

    def test_message_count_is_dest_size(self):
        engine, *_ = run_baseline(self.build, [(5, 0, 16, {1, 2, 3})])
        assert engine.stats.total == 3

    def test_strongly_confidential(self):
        _, _, confidentiality, _ = run_baseline(self.build, [(5, 0, 16, {1, 2})])
        assert confidentiality.is_clean()
        assert confidentiality.total_border_messages == 0

    def test_self_delivery(self):
        engine, delivery, _, report = run_baseline(self.build, [(5, 0, 16, {0, 1})])
        assert report.satisfied
        assert engine.stats.total == 1  # only pid 1 needed a message


class TestStronglyConfidential:
    def build(self, delivery):
        return strongly_confidential_factory(
            8, seed=3, deliver_callback=delivery.record_delivery
        )

    def test_delivers_by_deadline(self):
        engine, delivery, _, report = run_baseline(
            self.build, [(5, 0, 32, {1, 2, 3, 4})], rounds=80
        )
        assert report.satisfied

    def test_messages_confined_to_destination_set(self):
        """Strong confidentiality: only D + source ever receive traffic."""
        engine, _, confidentiality, _ = run_baseline(
            self.build, [(5, 0, 32, {1, 2})], rounds=80
        )
        assert confidentiality.is_clean()
        for pid, atoms in confidentiality.knowledge.items():
            if atoms:
                assert pid in {0, 1, 2}

    def test_relay_by_destinations(self):
        """Destination members forward rumors (collaboration inside D)."""
        from repro.sim.trace import Tracer

        delivery = DeliveryAuditor()
        tracer = Tracer(kinds=["deliver"])
        factory = strongly_confidential_factory(
            8, seed=5, deliver_callback=delivery.record_delivery
        )
        workload = ScriptedWorkload([(2, 0, 40, {1, 2, 3, 4, 5})], derive_rng(0))
        engine = Engine(8, factory, ComposedAdversary([workload]), observers=[tracer])
        engine.run(60)
        senders = {e.detail["src"] for e in tracer.events}
        assert senders - {0}, "destinations should relay, not just the source"

    def test_deadline_flush_guarantees_delivery(self):
        delivery_holder = []

        def build(delivery):
            delivery_holder.append(delivery)
            return strongly_confidential_factory(
                8, seed=0, fanout_scale=0.01, deliver_callback=delivery.record_delivery
            )

        engine, delivery, _, report = run_baseline(
            build, [(5, 0, 16, {1, 2, 3, 4, 5, 6})], rounds=40
        )
        assert report.satisfied


class TestPlainGossip:
    def build(self, delivery):
        return plain_gossip_factory(8, seed=1, deliver_callback=delivery.record_delivery)

    def test_delivers(self):
        engine, delivery, _, report = run_baseline(
            self.build, [(5, 0, 32, {1, 6})], rounds=80
        )
        assert report.satisfied

    def test_confidentiality_lost(self):
        """The point of the baseline: plaintext spreads to everyone."""
        _, _, confidentiality, _ = run_baseline(
            self.build, [(5, 0, 32, {1})], rounds=80
        )
        assert confidentiality.violation_counts()["plaintext"] > 0

    def test_everyone_relays(self):
        engine, *_ = run_baseline(self.build, [(5, 0, 32, {1})], rounds=80)
        # Far more messages than |D|: the whole system is gossiping.
        assert engine.stats.total > 8
