"""Advanced engine behaviours: non-zero start rounds, views, late joins."""

import pytest

from repro.adversary.base import Adversary
from repro.sim.engine import AdversaryView, Engine
from repro.sim.events import MidRoundDecision, RoundDecision
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior

from conftest import mk_rumor


class WakeupNode(NodeBehavior):
    def __init__(self, pid, n):
        super().__init__(pid, n)
        self.started_at = None

    def on_start(self, round_no):
        self.started_at = round_no


class TestStartRound:
    def test_engine_starts_at_given_round(self):
        engine = Engine(2, lambda pid: WakeupNode(pid, 2), start_round=100)
        assert engine.round == 100
        assert engine.behavior(0).started_at == 100

    def test_rounds_advance_from_start(self):
        engine = Engine(2, lambda pid: WakeupNode(pid, 2), start_round=100)
        engine.run(5)
        assert engine.round == 105
        assert engine.stats.rounds_observed == 0  # no traffic from WakeupNode


class TestAdversaryView:
    def test_view_accessors(self):
        engine = Engine(4, lambda pid: WakeupNode(pid, 4))
        view = engine.view
        assert view.n == 4
        assert view.alive_pids() == {0, 1, 2, 3}
        assert view.crashed_pids() == set()
        assert view.is_alive(2)
        assert isinstance(view.behavior(1), WakeupNode)

    def test_view_tracks_crashes(self):
        engine = Engine(4, lambda pid: WakeupNode(pid, 4))
        engine._crash(0, 2, mid_round=False)
        assert engine.view.crashed_pids() == {2}
        assert engine.view.behavior(2) is None

    def test_event_log_accessible(self):
        engine = Engine(2, lambda pid: WakeupNode(pid, 2))
        assert engine.view.event_log is engine.event_log


class SendToDead(NodeBehavior):
    """Keeps sending to pid 1 even after it dies."""

    def send_phase(self, round_no):
        if self.pid != 0:
            return []
        return [Message(src=0, dst=1, service=ServiceTags.BASELINE)]


class KillOne(Adversary):
    def round_start(self, view):
        if view.round == 1:
            return RoundDecision(crashes={1})
        return RoundDecision()


class TestLossAccounting:
    def test_sends_to_dead_counted_not_delivered(self):
        engine = Engine(3, lambda pid: SendToDead(pid, 3), KillOne())
        engine.run(3)
        # All 3 sends counted; rounds 1-2 deliveries lost.
        assert engine.stats.total == 3
        assert engine.stats.per_round(2) == 1


class RestartLoop(Adversary):
    """Crashes and restarts pid 0 on alternating rounds."""

    def round_start(self, view):
        if view.round % 2 == 1 and view.is_alive(0):
            return RoundDecision(crashes={0})
        if view.round % 2 == 0 and view.round > 0 and not view.is_alive(0):
            return RoundDecision(restarts={0})
        return RoundDecision()


class TestCrashRestartLoop:
    def test_flapping_process_state_fresh_each_time(self):
        engine = Engine(2, lambda pid: WakeupNode(pid, 2), RestartLoop())
        engine.run(9)
        shell = engine.shells[0]
        assert shell.crash_count == shell.restart_count + (0 if shell.alive else 1)
        log = engine.event_log
        assert len(log.crash_rounds(0)) >= 4
        # Never continuously alive across any crash boundary.
        assert not log.continuously_alive(0, 0, 8)
