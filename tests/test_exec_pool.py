"""Tests for repro.exec.pool: ordering, parity, crash retry, timeouts.

The crash/exception helpers must live at module scope so the forked
workers can unpickle them by qualified name.
"""

import os
import time

import pytest

from repro.core.config import CongosParams
from repro.exec.pool import (
    TaskTimeoutError,
    WorkerCrashError,
    resolve_jobs,
    run_specs,
    run_tasks,
)
from repro.exec.progress import Progress
from repro.exec.tasks import RunSpec


def _identity(value):
    return value


def _square(value):
    return value * value


def _raise(value):
    raise ValueError("task failed: {}".format(value))


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _crash_until_marker(path):
    """Kill the worker hard on the first call, succeed once the marker
    exists — a deterministic 'crash once, then recover' workload."""
    if not os.path.exists(path):
        with open(path, "w", encoding="utf-8"):
            pass
        os._exit(13)
    return "survived"


def _always_crash(_):
    os._exit(13)


def _sleep_until_marker(path):
    """Hang well past any test timeout on the first call, return fast once
    the marker exists — a deterministic 'time out once, then recover'."""
    if not os.path.exists(path):
        with open(path, "w", encoding="utf-8"):
            pass
        time.sleep(60)
    return "recovered"


class _KeyedCrasher:
    """Picklable stand-in for a RunSpec: carries a spec-style key."""

    key = "deadbeefcafe0123456789"

    def __call__(self):
        pass


def _crash_keyed(_item):
    os._exit(13)


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_default_is_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(range(5), _square, jobs=1) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        assert run_tasks(range(6), _square, jobs=2) == [0, 1, 4, 9, 16, 25]

    def test_serial_accepts_closures(self):
        calls = []

        def fn(item):
            calls.append(item)
            return item

        assert run_tasks([1, 2], fn, jobs=1) == [1, 2]
        assert calls == [1, 2]

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="task failed"):
            run_tasks([1], _raise, jobs=1)

    def test_parallel_exception_propagates(self):
        with pytest.raises(ValueError, match="task failed"):
            run_tasks([1], _raise, jobs=2)

    def test_progress_counts_tasks(self):
        progress = Progress(total=3)
        run_tasks(range(3), _identity, jobs=1, progress=progress)
        assert progress.done == 3
        assert progress.executed == 3
        assert progress.cached == 0

    def test_worker_crash_is_retried(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        result = run_tasks([marker], _crash_until_marker, jobs=2, retries=1)
        assert result == ["survived"]
        assert os.path.exists(marker)

    def test_innocent_bystanders_survive_a_crash(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        # The crasher takes the whole pool down; the other tasks must be
        # re-run transparently and keep their slots.
        crash_and_friends = [marker, str(tmp_path / "absent-a"), marker]
        results = run_tasks(
            crash_and_friends,
            _crash_until_marker,
            jobs=2,
            retries=2,
        )
        assert results == ["survived", "survived", "survived"]

    def test_crash_budget_exhausted_raises(self):
        with pytest.raises(WorkerCrashError, match="crashed its worker"):
            run_tasks([None], _always_crash, jobs=2, retries=1)

    def test_timeout_raises(self):
        with pytest.raises(TaskTimeoutError, match="per-task timeout"):
            run_tasks([1.5], _sleep, jobs=2, timeout=0.2)


class TestRetryAccounting:
    def test_crash_error_names_the_offending_task(self):
        # Only tasks that can have been in flight are charged; the
        # always-crasher at index 0 exhausts its budget and is named.
        with pytest.raises(WorkerCrashError, match=r"task 0 "):
            run_tasks([None], _always_crash, jobs=2, retries=1)

    def test_spec_key_in_crash_message(self):
        with pytest.raises(WorkerCrashError, match=r"spec deadbeefcafe"):
            run_tasks([_KeyedCrasher()], _crash_keyed, jobs=2, retries=0)

    def test_queued_tail_survives_a_pool_break(self, tmp_path):
        # With 2 workers, most of these tasks are still queued when the
        # crasher (index 0) breaks the pool; the tail keeps its budget
        # and the whole batch completes on the rebuilt pool.
        marker = str(tmp_path / "crashed-once")
        innocents = []
        for i in range(6):
            path = str(tmp_path / "pre-{}".format(i))
            with open(path, "w", encoding="utf-8"):
                pass  # marker exists => _crash_until_marker never crashes
            innocents.append(path)
        results = run_tasks(
            [marker, *innocents], _crash_until_marker, jobs=2, retries=1
        )
        assert results == ["survived"] * 7

    def test_timeout_error_names_task_and_budget(self):
        with pytest.raises(
            TaskTimeoutError, match=r"task 0 exceeded .* 2 time\(s\)"
        ):
            run_tasks([5.0], _sleep, jobs=2, timeout=0.2, retries=1)

    def test_timeout_is_retried_on_a_fresh_pool(self, tmp_path):
        marker = str(tmp_path / "timed-out-once")
        results = run_tasks(
            [marker], _sleep_until_marker, jobs=2, timeout=2.0, retries=1
        )
        assert results == ["recovered"]

    def test_neighbors_survive_a_timeout(self, tmp_path):
        marker = str(tmp_path / "timed-out-once")
        items = [marker, str(tmp_path / "absent-a")]
        results = run_tasks(
            items, _sleep_until_marker, jobs=2, timeout=2.0, retries=1
        )
        assert results == ["recovered", "recovered"]


class TestRunSpecsParity:
    @pytest.fixture(scope="class")
    def specs(self):
        return [
            RunSpec.make(
                "steady",
                seed=seed,
                n=8,
                rounds=200,
                deadline=64,
                params=CongosParams.lean(),
            )
            for seed in (0, 1)
        ]

    def test_pool_results_identical_to_serial(self, specs):
        serial = run_specs(specs, jobs=1)
        pooled = run_specs(specs, jobs=2)
        # Profiling fields (wall_time, worker_pid) legitimately differ
        # between processes; the simulation payload must not.
        assert [r.without_profile().to_dict() for r in serial] == [
            r.without_profile().to_dict() for r in pooled
        ]
        # same seeds -> same peak/total/QoD, bit for bit
        assert [r.peak for r in serial] == [r.peak for r in pooled]
        assert [r.total for r in serial] == [r.total for r in pooled]
        assert all(r.qod_satisfied for r in pooled)
        assert all(r.wall_time > 0 for r in serial)
        assert all(r.wall_time > 0 for r in pooled)

    def test_different_seeds_differ(self, specs):
        records = run_specs(specs, jobs=1)
        assert records[0].total != records[1].total
