"""Tests for repro.audit.confidentiality: the knowledge auditor."""

import random

import pytest

from repro.adversary.collusion import GreedyCoalition
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.core.splitting import split_rumor
from repro.gossip.rumor import GossipItem
from repro.sim.messages import ServiceTags

from conftest import mk_message, mk_rumor


def make_auditor(num_partitions=3, num_groups=2):
    return ConfidentialityAuditor(num_partitions, num_groups)


def fragments_for(rumor, partition=0, groups=2, seed=0):
    return split_rumor(rumor, partition, groups, random.Random(seed), 64, 100)


class TestPlaintextTracking:
    def test_source_knows_plaintext_without_violation(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        assert auditor.is_clean()
        assert 0 in auditor.plaintext_holders[rumor.rid]

    def test_delivery_to_destination_clean(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        auditor.on_deliver(1, mk_message(src=0, dst=1, payload=rumor))
        assert auditor.is_clean()

    def test_delivery_to_outsider_flagged(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=rumor))
        assert not auditor.is_clean()
        assert auditor.violation_counts()["plaintext"] == 1

    def test_duplicate_delivery_single_violation(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=rumor))
        auditor.on_deliver(2, mk_message(src=0, dst=5, payload=rumor))
        assert auditor.violation_counts()["plaintext"] == 1


class TestFragmentTracking:
    def test_single_fragment_clean(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=frag))
        assert auditor.is_clean()

    def test_outsider_completing_partition_flagged(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        for frag in fragments_for(rumor):
            auditor.on_deliver(1, mk_message(src=0, dst=5, payload=frag))
        counts = auditor.violation_counts()
        assert counts["reconstruction"] == 1
        assert counts["multiplicity"] >= 1
        assert not auditor.is_clean()

    def test_destination_completing_partition_clean(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        for frag in fragments_for(rumor):
            auditor.on_deliver(1, mk_message(src=0, dst=1, payload=frag))
        assert auditor.is_clean()

    def test_fragments_across_partitions_clean(self):
        """One fragment from each of two partitions reveals nothing."""
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag_a = fragments_for(rumor, partition=0)[0]
        frag_b = fragments_for(rumor, partition=1, seed=1)[1]
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=frag_a))
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=frag_b))
        assert auditor.is_clean()

    def test_gossip_batch_payloads_walked(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        item = GossipItem(
            uid=frag.uid, origin=0, payload=frag, expiry=10, dest=frozenset({5})
        )
        auditor.on_deliver(
            1, mk_message(src=0, dst=5, payload=(item,), service=ServiceTags.GROUP_GOSSIP)
        )
        assert 5 in auditor.fragment_holders[(rumor.rid, 0, 0)]

    def test_repeated_batch_deliveries_cached(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        item = GossipItem(
            uid=frag.uid, origin=0, payload=frag, expiry=10, dest=frozenset({5})
        )
        message = mk_message(src=0, dst=5, payload=(item,))
        auditor.on_deliver(1, message)
        auditor.on_deliver(2, message)
        assert len(auditor.knowledge[5]) == 1


class TestBorderMessages:
    def test_border_counted(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        auditor.on_deliver(1, mk_message(src=0, dst=5, payload=frag))
        assert auditor.border_messages[rumor.rid] == 1

    def test_inside_delivery_not_border(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        auditor.on_deliver(1, mk_message(src=0, dst=1, payload=frag))
        assert auditor.total_border_messages == 0

    def test_outsider_to_outsider_not_border(self):
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        auditor.on_deliver(1, mk_message(src=6, dst=5, payload=frag))
        assert auditor.total_border_messages == 0

    def test_repeat_border_copies_counted(self):
        """Theorem 12 counts message copies, so repeats accumulate."""
        auditor = make_auditor()
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        frag = fragments_for(rumor)[0]
        item = GossipItem(
            uid=frag.uid, origin=0, payload=frag, expiry=10, dest=frozenset({5})
        )
        message = mk_message(src=0, dst=5, payload=(item,))
        auditor.on_deliver(1, message)
        auditor.on_deliver(2, message)
        assert auditor.border_messages[rumor.rid] == 2


class TestCoalitions:
    def _leak_fragments(self, auditor, rumor, holders_by_group):
        for group, holder in holders_by_group.items():
            frag = fragments_for(rumor)[group]
            auditor.on_deliver(1, mk_message(src=0, dst=holder, payload=frag))

    def test_min_coalition_size(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        self._leak_fragments(auditor, rumor, {0: 5, 1: 6})
        assert auditor.min_coalition_size(rumor.rid, 8) == 2

    def test_min_coalition_none_when_fragment_never_leaked(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        self._leak_fragments(auditor, rumor, {0: 5})
        assert auditor.min_coalition_size(rumor.rid, 8) is None

    def test_coalition_reconstructs(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        self._leak_fragments(auditor, rumor, {0: 5, 1: 6})
        yes, partition = auditor.coalition_reconstructs(rumor.rid, {5, 6}, 8)
        assert yes and partition == 0
        no, _ = auditor.coalition_reconstructs(rumor.rid, {5}, 8)
        assert not no

    def test_check_coalitions_with_greedy(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        self._leak_fragments(auditor, rumor, {0: 5, 1: 6})
        findings = auditor.check_coalitions(GreedyCoalition(), tau=2, n=8)
        assert len(findings) == 1
        assert findings[0].reconstructs

    def test_greedy_blocked_at_tau_one(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        self._leak_fragments(auditor, rumor, {0: 5, 1: 6})
        findings = auditor.check_coalitions(GreedyCoalition(), tau=1, n=8)
        assert not findings[0].reconstructs

    def test_allowed_members_excluded_from_coalitions(self):
        auditor = make_auditor(num_partitions=1)
        rumor = mk_rumor(src=0, dest=(1,))
        auditor.on_inject(0, 0, rumor)
        # Destination 1 legitimately holds fragments; outsider 5 has one.
        self._leak_fragments(auditor, rumor, {0: 5, 1: 1})
        # Coalition {5, 1} is invalid (1 is a destination): pooling only
        # counts outsiders.
        yes, _ = auditor.coalition_reconstructs(rumor.rid, {5, 1}, 8)
        assert not yes


class TestSummary:
    def test_summary_shape(self):
        auditor = make_auditor()
        summary = auditor.summary()
        assert set(summary) == {"rumors", "violations", "border_messages"}
