"""Running with the paper's literal constants.

The analysis constants (fanout exponent 48, collusion threshold factor 1)
make the fanout formula saturate every pool at simulation scale — the
protocol degrades to "everyone tells everyone relevant" but must stay
*correct*: confidentiality and QoD are parameter-independent claims.
"""

import pytest

from repro.core.config import CongosParams
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario


class TestPaperDefaults:
    def test_correctness_survives_saturated_fanouts(self):
        params = CongosParams.paper_defaults()
        result = run_congos_scenario(
            steady_scenario(
                n=8, rounds=260, seed=0, deadline=64, rate=1, period=16, params=params
            )
        )
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()

    def test_fanout_formula_saturates(self):
        params = CongosParams.paper_defaults()
        # At n=8, dline=64: n^(1+48/8) = 8^7 — astronomically above any
        # pool size, so every sampled pool is taken whole.
        assert params.service_fanout(8, 64, collaborators=4) > 10 ** 5

    def test_collusion_mode_forces_direct_at_small_n(self):
        params = CongosParams.paper_defaults(tau=2)
        assert params.collusion_forces_direct(16)
        result = run_congos_scenario(
            steady_scenario(
                n=8, rounds=200, seed=0, deadline=64, rate=1, period=16, params=params
            )
        )
        assert result.qod.satisfied
        assert set(result.qod.path_counts()) <= {"direct", "local"}

    def test_deadline_cap_is_log_sixth_power(self):
        params = CongosParams.paper_defaults()
        assert params.effective_deadline_cap(64) == int(6.0 ** 6)

    def test_messages_explode_relative_to_lean(self):
        """The cost of the analysis constants, made visible."""
        paper = run_congos_scenario(
            steady_scenario(
                n=8,
                rounds=200,
                seed=0,
                deadline=64,
                rate=1,
                period=32,
                params=CongosParams.paper_defaults(),
            )
        )
        lean = run_congos_scenario(
            steady_scenario(
                n=8,
                rounds=200,
                seed=0,
                deadline=64,
                rate=1,
                period=32,
                params=CongosParams.lean(),
            )
        )
        assert paper.stats.total > lean.stats.total
