"""Tests for repro.obs.registry: counters, gauges, histograms, spans."""

import pytest

from repro.obs.registry import Counter, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.as_dict() == {"value": 5}

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("active.blocks")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 2.0
        assert histogram.max == 6.0
        assert histogram.mean == pytest.approx(4.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_same_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("gossip.injected", service="gg")
        b = registry.counter("gossip.injected", service="gg")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", p=1, g=2)
        b = registry.counter("x", g=2, p=1)
        assert a is b

    def test_distinct_labels_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x", service="gg")
        b = registry.counter("x", service="px")
        assert a is not b
        assert len(registry) == 2

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_span_lands_in_histogram(self):
        registry = MetricsRegistry()
        with registry.span("exec.task", scenario="steady") as span:
            pass
        assert span.seconds is not None and span.seconds >= 0
        histogram = registry.histogram("exec.task", scenario="steady")
        assert histogram.count == 1

    def test_dump_is_deterministic_and_labelled(self):
        registry = MetricsRegistry()
        registry.counter("b.metric").inc()
        registry.counter("a.metric", svc="gg").inc(2)
        dump = registry.dump()
        assert [entry["name"] for entry in dump] == ["a.metric", "b.metric"]
        assert dump[0]["labels"] == {"svc": "gg"}
        assert dump[0]["value"] == 2
        assert dump[0]["type"] == "counter"

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.counter("rumor.delivered", path="pipeline").inc()
        text = registry.render()
        assert "rumor.delivered{path=pipeline}" in text
        assert "value=1" in text
