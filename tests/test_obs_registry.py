"""Tests for repro.obs.registry: counters, gauges, histograms, spans."""

import pytest

from repro.obs.registry import Counter, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.as_dict() == {"value": 5}

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("active.blocks")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 2.0
        assert histogram.max == 6.0
        assert histogram.mean == pytest.approx(4.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_none(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        summary = histogram.as_dict()
        assert summary["p50"] is None
        assert summary["p99"] is None
        assert summary["p999"] is None

    def test_out_of_range_q_rejected(self):
        histogram = Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_single_sample_is_every_quantile(self):
        histogram = Histogram()
        histogram.observe(7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 7.0

    def test_small_n_linear_interpolation(self):
        histogram = Histogram()
        for value in (10.0, 20.0, 30.0, 40.0):
            histogram.observe(value)
        # position = q*(n-1); q=0.5 over 4 samples sits halfway between
        # the 2nd and 3rd order statistics.
        assert histogram.quantile(0.5) == pytest.approx(25.0)
        assert histogram.quantile(0.25) == pytest.approx(17.5)
        assert histogram.quantile(0.0) == 10.0
        assert histogram.quantile(1.0) == 40.0

    def test_insertion_order_does_not_matter(self):
        a, b = Histogram(), Histogram()
        for value in (3.0, 1.0, 2.0):
            a.observe(value)
        for value in (1.0, 2.0, 3.0):
            b.observe(value)
        assert a.quantile(0.5) == b.quantile(0.5) == 2.0

    def test_as_dict_reports_slo_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.as_dict()
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["p999"] == pytest.approx(99.901)
        assert summary["count"] == 100


class TestRegistry:
    def test_same_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("gossip.injected", service="gg")
        b = registry.counter("gossip.injected", service="gg")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", p=1, g=2)
        b = registry.counter("x", g=2, p=1)
        assert a is b

    def test_distinct_labels_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x", service="gg")
        b = registry.counter("x", service="px")
        assert a is not b
        assert len(registry) == 2

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_span_lands_in_histogram(self):
        registry = MetricsRegistry()
        with registry.span("exec.task", scenario="steady") as span:
            pass
        assert span.seconds is not None and span.seconds >= 0
        histogram = registry.histogram("exec.task", scenario="steady")
        assert histogram.count == 1

    def test_dump_is_deterministic_and_labelled(self):
        registry = MetricsRegistry()
        registry.counter("b.metric").inc()
        registry.counter("a.metric", svc="gg").inc(2)
        dump = registry.dump()
        assert [entry["name"] for entry in dump] == ["a.metric", "b.metric"]
        assert dump[0]["labels"] == {"svc": "gg"}
        assert dump[0]["value"] == 2
        assert dump[0]["type"] == "counter"

    def test_snapshot_merge_round_trip(self):
        source = MetricsRegistry()
        source.counter("gossip.injected", service="gg").inc(3)
        source.gauge("queue.depth").set(2.5)
        histogram = source.histogram("wait.seconds")
        for value in (0.1, 0.2, 0.7):
            histogram.observe(value)

        target = MetricsRegistry()
        target.counter("gossip.injected", service="gg").inc(4)
        target.merge_snapshot(source.snapshot())
        assert target.counter("gossip.injected", service="gg").value == 7
        assert target.gauge("queue.depth").value == pytest.approx(2.5)
        merged = target.histogram("wait.seconds")
        assert merged.count == 3
        assert merged.samples == [0.1, 0.2, 0.7]

    def test_merge_snapshot_extra_labels_keep_workers_apart(self):
        source = MetricsRegistry()
        source.counter("x").inc(5)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), worker=0)
        target.merge_snapshot(source.snapshot(), worker=1)
        # Labelled merges stay per-worker; an unlabelled one would sum.
        assert target.counter("x", worker=0).value == 5
        assert target.counter("x", worker=1).value == 5
        assert len(target) == 2

    def test_merge_snapshot_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        bogus = [{"name": "x", "kind": "summary", "labels": {}, "state": {}}]
        with pytest.raises(ValueError, match="unknown kind"):
            registry.merge_snapshot(bogus)

    def test_snapshot_rides_the_net_codec(self):
        from repro.net.codec import decode_frame, encode_frame

        registry = MetricsRegistry()
        registry.counter("a", svc="gg").inc(2)
        registry.histogram("b").observe(0.25)
        snapshot = registry.snapshot()
        kind, body = decode_frame(encode_frame("metrics", snapshot))
        assert kind == "metrics"
        assert body == snapshot

    def test_render_empty_and_populated(self):
        registry = MetricsRegistry()
        assert registry.render() == "(no metrics recorded)"
        registry.counter("rumor.delivered", path="pipeline").inc()
        text = registry.render()
        assert "rumor.delivered{path=pipeline}" in text
        assert "value=1" in text
