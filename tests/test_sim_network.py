"""Tests for repro.sim.network: reliable delivery and adversarial drops."""

import pytest

from repro.sim.network import Network

from conftest import mk_message


def route(network, messages, alive=None, boundary=(), drops=()):
    alive_set = alive if alive is not None else set(range(network.n))
    return network.route(
        round_no=0,
        outgoing=messages,
        alive_after_round=alive_set,
        boundary_pids=set(boundary),
        adversary_drops=drops,
    )


class TestValidation:
    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_rejects_out_of_range_dst(self):
        network = Network(2)
        with pytest.raises(ValueError):
            route(network, [mk_message(src=0, dst=5)])

    def test_rejects_out_of_range_src(self):
        network = Network(2)
        with pytest.raises(ValueError):
            route(network, [mk_message(src=9, dst=0)])


class TestDelivery:
    def test_delivers_to_alive(self):
        network = Network(3)
        outcome = route(network, [mk_message(src=0, dst=1)])
        assert outcome.delivered_count == 1
        assert len(outcome.inboxes[1]) == 1

    def test_inboxes_grouped_by_destination(self):
        network = Network(3)
        messages = [mk_message(src=0, dst=1), mk_message(src=0, dst=2), mk_message(src=1, dst=2)]
        outcome = route(network, messages)
        assert len(outcome.inboxes[1]) == 1
        assert len(outcome.inboxes[2]) == 2

    def test_crashed_destination_loses_message(self):
        network = Network(3)
        outcome = route(network, [mk_message(src=0, dst=1)], alive={0, 2})
        assert outcome.delivered_count == 0
        assert len(outcome.lost_to_crash) == 1

    def test_all_sends_counted_even_if_lost(self):
        """Message complexity counts sends (Definition 3)."""
        network = Network(3)
        route(network, [mk_message(src=0, dst=1)], alive={0})
        assert network.stats.total == 1

    def test_delivery_preserves_order(self):
        network = Network(2)
        messages = [mk_message(src=0, dst=1, payload=i) for i in range(5)]
        outcome = route(network, messages)
        assert [m.payload for m in outcome.inboxes[1]] == list(range(5))


class TestAdversarialDrops:
    def test_drop_allowed_on_boundary_sender(self):
        network = Network(3)
        outcome = route(
            network,
            [mk_message(src=0, dst=1)],
            boundary={0},
            drops={0},
        )
        assert outcome.delivered_count == 0
        assert len(outcome.lost_to_adversary) == 1

    def test_drop_allowed_on_boundary_receiver(self):
        network = Network(3)
        outcome = route(
            network,
            [mk_message(src=0, dst=1)],
            boundary={1},
            drops={0},
        )
        assert outcome.delivered_count == 0

    def test_drop_without_boundary_rejected(self):
        """The network is reliable: only crash/restart rounds lose messages."""
        network = Network(3)
        with pytest.raises(ValueError):
            route(network, [mk_message(src=0, dst=1)], drops={0})

    def test_partial_drop_of_boundary_sender(self):
        """Some of a crashing sender's messages may still be delivered."""
        network = Network(4)
        messages = [
            mk_message(src=0, dst=1),
            mk_message(src=0, dst=2),
            mk_message(src=0, dst=3),
        ]
        outcome = route(network, messages, boundary={0}, drops={1})
        assert outcome.delivered_count == 2
        assert len(outcome.lost_to_adversary) == 1
