"""Tests for repro.gossip.service: sub-service hosting and routing."""

import pytest

from repro.gossip.service import ServiceHost, SubService
from repro.sim.messages import Message, ServiceTags

from conftest import mk_message


class Probe(SubService):
    def __init__(self, pid, channel):
        super().__init__(pid, 8, ServiceTags.BASELINE, channel)
        self.sent_rounds = []
        self.received = []
        self.ended = []

    def send_phase(self, round_no):
        self.sent_rounds.append(round_no)
        return [self.make_message((self.pid + 1) % 8, "hi")]

    def on_message(self, round_no, message):
        self.received.append(message)

    def end_round(self, round_no):
        self.ended.append(round_no)


class TestSubService:
    def test_make_message_stamps_fields(self):
        probe = Probe(2, "chan")
        message = probe.make_message(5, {"x": 1}, size=3)
        assert message.src == 2
        assert message.dst == 5
        assert message.channel == "chan"
        assert message.size == 3
        assert message.service == ServiceTags.BASELINE


class TestServiceHost:
    def test_duplicate_channel_rejected(self):
        host = ServiceHost()
        host.register(Probe(0, "a"))
        with pytest.raises(ValueError):
            host.register(Probe(0, "a"))

    def test_collect_sends_in_registration_order(self):
        host = ServiceHost()
        first, second = Probe(0, "a"), Probe(0, "b")
        host.register(first)
        host.register(second)
        messages = host.collect_sends(0)
        assert len(messages) == 2
        assert first.sent_rounds == [0]
        assert second.sent_rounds == [0]

    def test_dispatch_routes_by_channel(self):
        host = ServiceHost()
        a, b = Probe(0, "a"), Probe(0, "b")
        host.register(a)
        host.register(b)
        unrouted = host.dispatch(
            0, [mk_message(channel="a"), mk_message(channel="b"), mk_message(channel="b")]
        )
        assert unrouted == []
        assert len(a.received) == 1
        assert len(b.received) == 2

    def test_dispatch_returns_unroutable(self):
        host = ServiceHost()
        host.register(Probe(0, "a"))
        stranger = mk_message(channel="zz")
        unrouted = host.dispatch(0, [stranger])
        assert unrouted == [stranger]

    def test_finish_round_reaches_all(self):
        host = ServiceHost()
        a, b = Probe(0, "a"), Probe(0, "b")
        host.register(a)
        host.register(b)
        host.finish_round(3)
        assert a.ended == [3] and b.ended == [3]

    def test_service_for(self):
        host = ServiceHost()
        probe = host.register(Probe(0, "a"))
        assert host.service_for("a") is probe
        assert host.service_for("nope") is None

    def test_services_list_copy(self):
        host = ServiceHost()
        host.register(Probe(0, "a"))
        listing = host.services
        listing.clear()
        assert host.services  # internal list untouched
