"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.gossip.rumor import Rumor, RumorId
from repro.sim.messages import Message, ServiceTags


@pytest.fixture
def rng():
    return random.Random(12345)


def mk_rumor(
    src: int = 0,
    seq: int = 0,
    data: bytes = b"secret-data!",
    deadline: int = 64,
    dest=(1, 2),
    injected_at: int = 0,
) -> Rumor:
    return Rumor(
        rid=RumorId(src, seq),
        data=data,
        deadline=deadline,
        dest=frozenset(dest),
        injected_at=injected_at,
    )


def mk_message(
    src: int = 0,
    dst: int = 1,
    service: str = ServiceTags.BASELINE,
    payload=None,
    size: int = 1,
    channel: str = "test",
) -> Message:
    return Message(
        src=src, dst=dst, service=service, payload=payload, size=size, channel=channel
    )
