"""Tests for the direct-send soak harness (E16): matrix shape,
jobs-invariant determinism, the hardened-vs-default delivery story, and
stage attribution of the injected faults."""

import json
import os

import pytest

from repro.chaos.direct import (
    BENCH_NAME,
    direct_cells,
    direct_payload,
    run_direct_soak,
)
from repro.exec.bench_io import write_bench_json
from repro.exec.tasks import RunSpec, execute_spec

FIXED = {"n": 10, "rounds": 100, "deadline": 32}


class TestCells:
    def test_matrix_is_drop_times_mode(self):
        cells = direct_cells([0.0, 0.3])
        assert len(cells) == 4
        assert {"drop": 0.3, "hardened": True} in cells
        assert {"drop": 0.0, "hardened": False} in cells

    def test_custom_mode_axis(self):
        cells = direct_cells([0.1], hardened=(True,))
        assert cells == [{"drop": 0.1, "hardened": True}]


class TestSoak:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_direct_soak(
            direct_cells([0.0, 0.3]), seeds=(0, 1), jobs=1, **FIXED
        )

    def test_payload_identical_at_any_jobs(self, sweep):
        pooled = run_direct_soak(
            direct_cells([0.0, 0.3]), seeds=(0, 1), jobs=2, **FIXED
        )
        assert direct_payload(sweep, FIXED) == direct_payload(pooled, FIXED)

    def test_hardened_beats_default_under_loss(self, sweep):
        payload = direct_payload(sweep, FIXED)
        modes = payload["delivery_by_mode"]
        assert modes["hardened"] > modes["default"]
        lossy = {
            entry["cell"]["hardened"]: entry
            for entry in payload["cells"]
            if entry["cell"]["drop"] == 0.3
        }
        assert lossy[False]["delivery_rate"] < 1.0
        assert lossy[True]["delivery_rate"] > lossy[False]["delivery_rate"]

    def test_confidentiality_clean_everywhere(self, sweep):
        payload = direct_payload(sweep, FIXED)
        assert payload["all_clean"] is True
        assert all(entry["clean"] for entry in payload["cells"])

    def test_faults_land_in_the_direct_stage(self, sweep):
        payload = direct_payload(sweep, FIXED)
        by_stage = payload["total_faults_by_stage"]
        assert by_stage  # the drop=0.3 cells injected something
        assert set(by_stage) == {"direct"}

    def test_bench_sidecar_deterministic(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            sweep = run_direct_soak(
                direct_cells([0.3]), seeds=(0,), jobs=1, **FIXED
            )
            paths.append(
                write_bench_json(
                    BENCH_NAME,
                    direct_payload(sweep, FIXED),
                    results_dir=str(tmp_path / tag),
                    created="2026-01-01T00:00:00+00:00",
                )
            )
        contents = [open(path, encoding="utf-8").read() for path in paths]
        assert contents[0] == contents[1]
        assert os.path.basename(paths[0]) == "BENCH_e16_direct_matrix.json"
        document = json.loads(contents[0])
        assert document["cells"][0]["cell"] == {
            "drop": 0.3,
            "hardened": False,
        }


class TestRunRecordStages:
    def test_direct_record_attributes_faults_by_stage(self):
        spec = RunSpec.make("direct", seed=0, drop=0.3, **FIXED)
        record = execute_spec(spec)
        assert record.faults["drop"] > 0
        assert set(record.faults_by_stage) == {"direct"}
        round_tripped = type(record).from_dict(record.to_dict())
        assert round_tripped.faults_by_stage == record.faults_by_stage

    def test_old_record_dicts_still_load(self):
        spec = RunSpec.make("direct", seed=0, drop=0.3, **FIXED)
        record = execute_spec(spec)
        legacy = record.to_dict()
        legacy.pop("faults_by_stage")
        loaded = type(record).from_dict(legacy)
        assert loaded.faults_by_stage == {}
        assert loaded.faults == record.faults
