"""End-to-end collusion-tolerance tests (Section 6, Theorem 16).

The collusion-tolerant CONGOS must keep every coalition of at most tau
curious outsiders unable to reconstruct any rumor — even the adaptive
greedy coalition that, with full hindsight, picks the most knowledgeable
outsiders.  A (tau+1)-sized coalition is *allowed* to succeed (the bound
is tight); we check both directions.
"""

import pytest

from repro.adversary.collusion import GreedyCoalition, StaticRandomCoalition
from repro.core.config import CongosParams
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import churn_scenario, collusion_scenario
from repro.sim.rng import derive_rng

N = 12
ROUNDS = 320
DEADLINE = 64


def run_tau(tau, seed=0, n=N, rounds=ROUNDS, scenario_builder=collusion_scenario):
    scenario = scenario_builder(
        n=n, rounds=rounds, seed=seed, tau=tau, deadline=DEADLINE
    )
    return run_congos_scenario(scenario)


class TestTauTwo:
    def test_invariants(self):
        result = run_tau(2)
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()

    def test_greedy_tau_coalitions_blocked(self):
        result = run_tau(2)
        findings = result.confidentiality.check_coalitions(
            GreedyCoalition(), tau=2, n=N
        )
        assert findings
        assert not any(f.reconstructs for f in findings)

    def test_random_tau_coalitions_blocked(self):
        result = run_tau(2, seed=1)
        strategy = StaticRandomCoalition(derive_rng(1, "coalition"))
        findings = result.confidentiality.check_coalitions(strategy, tau=2, n=N)
        assert not any(f.reconstructs for f in findings)

    def test_min_coalition_needs_tau_plus_one(self):
        """Tightness: the smallest reconstructing coalition (if any) has
        exactly tau+1 = 3 members — one per group."""
        result = run_tau(2)
        sizes = [
            result.confidentiality.min_coalition_size(rid, N)
            for rid in result.confidentiality.rumors
        ]
        assert all(size is None or size >= 3 for size in sizes)
        # In a healthy run the fragments do spread to all groups, so some
        # rumor is reconstructible by a 3-coalition.
        assert any(size == 3 for size in sizes)

    def test_outsiders_hold_at_most_one_fragment_per_partition(self):
        result = run_tau(2)
        assert result.confidentiality.violation_counts()["multiplicity"] == 0


class TestTauThree:
    def test_invariants_and_coalitions(self):
        result = run_tau(3, n=16, rounds=320)
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
        findings = result.confidentiality.check_coalitions(
            GreedyCoalition(), tau=3, n=16
        )
        assert not any(f.reconstructs for f in findings)

    def test_four_way_split(self):
        result = run_tau(3, n=16, rounds=320)
        assert result.partition_set.num_groups == 4


class TestCollusionUnderChurn:
    def test_tau2_with_crashes(self):
        def builder(n, rounds, seed, tau, deadline):
            params = CongosParams(tau=tau)
            return churn_scenario(
                n=n,
                rounds=rounds,
                seed=seed,
                deadline=deadline,
                p_crash=0.01,
                p_restart=0.3,
                params=params,
                name="collusion-churn",
            )

        result = run_tau(2, seed=3, scenario_builder=builder)
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
        findings = result.confidentiality.check_coalitions(
            GreedyCoalition(), tau=2, n=N
        )
        assert not any(f.reconstructs for f in findings)


class TestCostGrowsWithTau:
    def test_partitions_scale_with_tau(self):
        tau2 = run_tau(2, rounds=240)
        tau3 = run_tau(3, n=16, rounds=240)
        assert tau3.partition_set.count > tau2.partition_set.count

    def test_messages_grow_with_tau(self):
        """Theorem 16's tau^2 factor: more partitions x more groups."""
        base = run_congos_scenario(
            collusion_scenario(n=16, rounds=280, seed=0, tau=1, deadline=DEADLINE)
        )
        tau2 = run_congos_scenario(
            collusion_scenario(n=16, rounds=280, seed=0, tau=2, deadline=DEADLINE)
        )
        assert tau2.stats.max_per_round() > base.stats.max_per_round()
