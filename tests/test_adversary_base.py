"""Tests for repro.adversary.base: composition semantics."""

import pytest

from repro.adversary.base import Adversary, ComposedAdversary, NullAdversary
from repro.sim.engine import Engine
from repro.sim.events import MidRoundDecision, RoundDecision
from repro.sim.process import NodeBehavior

from conftest import mk_rumor


class Scripted(Adversary):
    def __init__(self, decision=None, mid=None):
        self.decision = decision or RoundDecision()
        self.mid = mid or MidRoundDecision()

    def round_start(self, view):
        return self.decision

    def mid_round(self, view, outgoing):
        return self.mid


def make_view():
    engine = Engine(4, lambda pid: NodeBehavior(pid, 4))
    return engine.view


class TestNullAdversary:
    def test_does_nothing(self):
        view = make_view()
        adversary = NullAdversary()
        assert adversary.round_start(view).is_empty()
        assert adversary.mid_round(view, []).is_empty()


class TestComposition:
    def test_merges_crashes_and_restarts(self):
        composed = ComposedAdversary(
            [
                Scripted(RoundDecision(crashes={0})),
                Scripted(RoundDecision(restarts={1})),
            ]
        )
        decision = composed.round_start(make_view())
        assert decision.crashes == {0}
        assert decision.restarts == {1}

    def test_conflicting_pid_rejected(self):
        composed = ComposedAdversary(
            [
                Scripted(RoundDecision(crashes={0})),
                Scripted(RoundDecision(restarts={0})),
            ]
        )
        with pytest.raises(ValueError):
            composed.round_start(make_view())

    def test_merges_injections(self):
        composed = ComposedAdversary(
            [
                Scripted(RoundDecision(injections=[(0, mk_rumor(src=0))])),
                Scripted(RoundDecision(injections=[(1, mk_rumor(src=1))])),
            ]
        )
        decision = composed.round_start(make_view())
        assert len(decision.injections) == 2

    def test_duplicate_injection_pid_rejected(self):
        composed = ComposedAdversary(
            [
                Scripted(RoundDecision(injections=[(0, mk_rumor(seq=0))])),
                Scripted(RoundDecision(injections=[(0, mk_rumor(seq=1))])),
            ]
        )
        with pytest.raises(ValueError):
            composed.round_start(make_view())

    def test_injection_at_crashed_pid_dropped(self):
        """A workload cannot see a sibling's same-round crash; the
        composition silently drops the conflicting injection."""
        composed = ComposedAdversary(
            [
                Scripted(RoundDecision(crashes={2})),
                Scripted(RoundDecision(injections=[(2, mk_rumor(src=2))])),
            ]
        )
        decision = composed.round_start(make_view())
        assert decision.injections == []
        assert decision.crashes == {2}

    def test_mid_round_merge(self):
        composed = ComposedAdversary(
            [
                Scripted(mid=MidRoundDecision(crashes={0}, dropped_messages={1})),
                Scripted(mid=MidRoundDecision(crashes={2}, dropped_messages={3})),
            ]
        )
        decision = composed.mid_round(make_view(), [])
        assert decision.crashes == {0, 2}
        assert decision.dropped_messages == {1, 3}

    def test_mid_round_conflict_rejected(self):
        composed = ComposedAdversary(
            [
                Scripted(mid=MidRoundDecision(crashes={0})),
                Scripted(mid=MidRoundDecision(crashes={0})),
            ]
        )
        with pytest.raises(ValueError):
            composed.mid_round(make_view(), [])

    def test_empty_composition(self):
        composed = ComposedAdversary([])
        assert composed.round_start(make_view()).is_empty()
