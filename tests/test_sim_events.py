"""Tests for repro.sim.events: CRRI events and alive-interval bookkeeping."""

import pytest

from repro.sim.events import (
    CrashEvent,
    EventLog,
    InjectEvent,
    MidRoundDecision,
    RestartEvent,
    RoundDecision,
)

from conftest import mk_rumor


class TestDecisions:
    def test_round_decision_empty_by_default(self):
        assert RoundDecision().is_empty()

    def test_round_decision_not_empty_with_crash(self):
        assert not RoundDecision(crashes={1}).is_empty()

    def test_mid_round_decision_empty_by_default(self):
        assert MidRoundDecision().is_empty()

    def test_mid_round_decision_not_empty_with_drop(self):
        assert not MidRoundDecision(dropped_messages={0}).is_empty()


class TestEventLogRecording:
    def test_crash_rounds_in_order(self):
        log = EventLog()
        log.record_crash(CrashEvent(3, 5))
        log.record_crash(CrashEvent(3, 9))
        assert log.crash_rounds(3) == [5, 9]

    def test_restart_rounds(self):
        log = EventLog()
        log.record_restart(RestartEvent(3, 7))
        assert log.restart_rounds(3) == [7]

    def test_unknown_pid_has_no_events(self):
        log = EventLog()
        assert log.crash_rounds(99) == []
        assert log.restart_rounds(99) == []

    def test_summary_counts(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 1))
        log.record_restart(RestartEvent(0, 2))
        log.record_injection(InjectEvent(1, 3, mk_rumor()))
        assert log.summary() == {"crashes": 1, "restarts": 1, "injections": 1}


class TestContinuouslyAlive:
    def test_never_crashed_is_alive(self):
        log = EventLog()
        assert log.continuously_alive(0, 0, 100)

    def test_crash_inside_interval(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 50))
        assert not log.continuously_alive(0, 0, 100)
        assert not log.continuously_alive(0, 50, 50)

    def test_crash_before_interval_without_restart(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 10))
        assert not log.continuously_alive(0, 20, 30)

    def test_crash_then_restart_before_interval(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 10))
        log.record_restart(RestartEvent(0, 15))
        assert log.continuously_alive(0, 20, 30)

    def test_restart_in_start_round_is_not_alive_at_beginning(self):
        # Admissibility demands aliveness at the *beginning* of the round;
        # a restart during that round does not qualify.
        log = EventLog()
        log.record_crash(CrashEvent(0, 10))
        log.record_restart(RestartEvent(0, 20))
        assert not log.continuously_alive(0, 20, 30)
        assert log.continuously_alive(0, 21, 30)

    def test_crash_at_interval_boundary(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 30))
        assert not log.continuously_alive(0, 0, 30)
        assert log.continuously_alive(0, 0, 29)

    def test_multiple_crash_restart_cycles(self):
        log = EventLog()
        log.record_crash(CrashEvent(0, 10))
        log.record_restart(RestartEvent(0, 12))
        log.record_crash(CrashEvent(0, 40))
        log.record_restart(RestartEvent(0, 44))
        assert log.continuously_alive(0, 13, 39)
        assert not log.continuously_alive(0, 13, 40)
        assert log.continuously_alive(0, 45, 60)

    def test_empty_interval_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.continuously_alive(0, 5, 4)
