"""Tests for repro.sim.trace: structured traces."""

from repro.sim.engine import Engine
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior
from repro.sim.trace import TraceEvent, Tracer
from repro.adversary.base import Adversary
from repro.sim.events import RoundDecision

from conftest import mk_rumor


class ChattyNode(NodeBehavior):
    def send_phase(self, round_no):
        return [
            Message(
                src=self.pid,
                dst=(self.pid + 1) % self.n,
                service=ServiceTags.BASELINE,
            )
        ]


class OneCrash(Adversary):
    def round_start(self, view):
        if view.round == 1:
            return RoundDecision(crashes={0}, injections=[])
        if view.round == 0:
            return RoundDecision(injections=[(1, mk_rumor(src=1))])
        return RoundDecision()


def run_traced(tracer, rounds=3, n=3):
    engine = Engine(
        n, lambda pid: ChattyNode(pid, n), OneCrash(), observers=[tracer]
    )
    engine.run(rounds)
    return engine


class TestTracer:
    def test_records_all_kinds(self):
        tracer = Tracer()
        run_traced(tracer)
        kinds = {event.kind for event in tracer.events}
        assert kinds >= {"crash", "inject", "deliver", "round_end"}

    def test_kind_filter(self):
        tracer = Tracer(kinds=["crash"])
        run_traced(tracer)
        assert {event.kind for event in tracer.events} == {"crash"}

    def test_message_filter(self):
        tracer = Tracer(
            kinds=["deliver"], message_filter=lambda m: m.dst == 0
        )
        run_traced(tracer)
        assert tracer.events
        assert all(event.detail["dst"] == 0 for event in tracer.events)

    def test_max_events_truncates(self):
        tracer = Tracer(max_events=2)
        run_traced(tracer, rounds=5)
        assert len(tracer.events) == 2
        assert tracer.truncated

    def test_untruncated_trace_keeps_flag_clear(self):
        tracer = Tracer()
        run_traced(tracer)
        assert not tracer.truncated
        assert "(trace truncated)" not in tracer.render()

    def test_truncated_render_notes_it(self):
        tracer = Tracer(max_events=2)
        run_traced(tracer, rounds=5)
        lines = tracer.render().splitlines()
        assert lines[-1] == "... (trace truncated)"
        assert len(lines) == 3  # the 2 kept events + the note

    def test_inject_detail_is_metadata_not_the_rumor(self):
        # Holding the rumor object would leak the confidential payload z
        # into the trace; only identifying metadata may be recorded.
        import json

        tracer = Tracer(kinds=["inject"])
        run_traced(tracer)
        assert tracer.events
        detail = tracer.events[0].detail
        assert "rumor" not in detail
        assert detail["rid"] == str(mk_rumor(src=1).rid)
        assert detail["dest_size"] == 2
        assert detail["deadline"] == 64
        json.dumps(detail)  # serializable: nothing opaque captured

    def test_of_kind_and_in_round(self):
        tracer = Tracer()
        run_traced(tracer)
        assert all(e.kind == "deliver" for e in tracer.of_kind("deliver"))
        assert all(e.round_no == 1 for e in tracer.in_round(1))

    def test_render(self):
        tracer = Tracer()
        run_traced(tracer)
        text = tracer.render(limit=3)
        assert len(text.splitlines()) == 4  # 3 events + truncation note

    def test_event_str(self):
        event = TraceEvent(5, "crash", {"pid": 2})
        assert "crash" in str(event) and "pid=2" in str(event)

    def test_len(self):
        tracer = Tracer()
        run_traced(tracer)
        assert len(tracer) == len(tracer.events)

    def test_round_end_detail(self):
        tracer = Tracer(kinds=["round_end"])
        engine = run_traced(tracer)
        last = tracer.events[-1]
        assert last.detail["alive"] == len(engine.alive_pids())
