"""Tests for repro.gossip.filter: the group Filter (Figure 11)."""

import pytest

from repro.gossip.filter import GroupFilter, PassFilter

from conftest import mk_message


class TestGroupFilter:
    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError):
            GroupFilter([])

    def test_allows_members(self):
        group_filter = GroupFilter({1, 2, 3})
        assert group_filter.allows(2)
        assert not group_filter.allows(5)

    def test_apply_drops_outsiders(self):
        group_filter = GroupFilter({0, 1})
        messages = [mk_message(dst=1), mk_message(dst=5), mk_message(dst=0)]
        allowed = group_filter.apply(messages)
        assert [m.dst for m in allowed] == [1, 0]
        assert group_filter.dropped == 1

    def test_dropped_accumulates(self):
        group_filter = GroupFilter({0})
        group_filter.apply([mk_message(dst=3), mk_message(dst=4)])
        group_filter.apply([mk_message(dst=5)])
        assert group_filter.dropped == 3

    def test_restrict_intersects(self):
        group_filter = GroupFilter({0, 2, 4})
        assert group_filter.restrict([0, 1, 2, 3]) == frozenset({0, 2})

    def test_repr_shows_counts(self):
        group_filter = GroupFilter({0, 1})
        group_filter.apply([mk_message(dst=9)])
        assert "dropped=1" in repr(group_filter)


class TestPassFilter:
    def test_allows_everyone(self):
        pass_filter = PassFilter(8)
        assert all(pass_filter.allows(p) for p in range(8))

    def test_still_blocks_out_of_range(self):
        pass_filter = PassFilter(4)
        assert not pass_filter.allows(4)
