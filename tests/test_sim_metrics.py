"""Tests for repro.sim.metrics: per-round message accounting."""

import pytest

from repro.sim.messages import ServiceTags
from repro.sim.metrics import MessageStats

from conftest import mk_message


class TestRecording:
    def test_totals(self):
        stats = MessageStats()
        stats.record_send(0, mk_message(size=2))
        stats.record_send(0, mk_message(size=3))
        assert stats.total == 2
        assert stats.total_size == 5

    def test_per_round(self):
        stats = MessageStats()
        stats.record_send(3, mk_message())
        stats.record_send(3, mk_message())
        stats.record_send(4, mk_message())
        assert stats.per_round(3) == 2
        assert stats.per_round(4) == 1
        assert stats.per_round(5) == 0

    def test_record_sends_bulk(self):
        stats = MessageStats()
        stats.record_sends(1, [mk_message(), mk_message(), mk_message()])
        assert stats.per_round(1) == 3

    def test_by_service(self):
        stats = MessageStats()
        stats.record_send(0, mk_message(service=ServiceTags.PROXY))
        stats.record_send(0, mk_message(service=ServiceTags.PROXY))
        stats.record_send(1, mk_message(service=ServiceTags.ALL_GOSSIP))
        assert stats.by_service() == {ServiceTags.PROXY: 2, ServiceTags.ALL_GOSSIP: 1}
        assert stats.service_total(ServiceTags.PROXY) == 2
        assert stats.per_round_by_service(0, ServiceTags.PROXY) == 2

    def test_filtered_counter(self):
        stats = MessageStats()
        stats.record_filtered()
        stats.record_filtered(4)
        assert stats.filtered == 5


class TestMaxPerRound:
    def test_empty(self):
        assert MessageStats().max_per_round() == 0

    def test_overall_max(self):
        stats = MessageStats()
        for _ in range(5):
            stats.record_send(0, mk_message())
        stats.record_send(1, mk_message())
        assert stats.max_per_round() == 5
        assert stats.argmax_round() == 0

    def test_service_restricted_max(self):
        """Lemma 7 excludes gossip traffic from the Proxy/GD bound."""
        stats = MessageStats()
        for _ in range(10):
            stats.record_send(0, mk_message(service=ServiceTags.GROUP_GOSSIP))
        stats.record_send(0, mk_message(service=ServiceTags.PROXY))
        for _ in range(3):
            stats.record_send(1, mk_message(service=ServiceTags.PROXY))
        restricted = stats.max_per_round(
            services=[ServiceTags.PROXY, ServiceTags.GROUP_DISTRIBUTION]
        )
        assert restricted == 3
        assert stats.max_per_round() == 11


class TestAggregates:
    def test_mean_per_round_over_observed(self):
        stats = MessageStats()
        stats.record_send(0, mk_message())
        stats.record_send(0, mk_message())
        stats.record_send(5, mk_message())
        assert stats.mean_per_round() == pytest.approx(1.5)

    def test_mean_over_horizon(self):
        stats = MessageStats()
        stats.record_send(0, mk_message())
        assert stats.mean_over_horizon(10) == pytest.approx(0.1)

    def test_mean_over_horizon_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MessageStats().mean_over_horizon(0)

    def test_series(self):
        stats = MessageStats()
        stats.record_send(2, mk_message())
        assert stats.series(0, 3) == [0, 0, 1, 0]

    def test_top_rounds(self):
        stats = MessageStats()
        for round_no, count in [(0, 1), (1, 3), (2, 2)]:
            for _ in range(count):
                stats.record_send(round_no, mk_message())
        assert stats.top_rounds(2) == [(1, 3), (2, 2)]

    def test_round_record(self):
        stats = MessageStats()
        stats.record_send(7, mk_message(service=ServiceTags.PROXY, size=4))
        record = stats.round_record(7)
        assert record.total == 1
        assert record.total_size == 4
        assert record.by_service == {ServiceTags.PROXY: 1}

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.record_send(0, mk_message())
        b.record_send(0, mk_message(size=2))
        b.record_send(1, mk_message())
        b.record_filtered()
        a.merge(b)
        assert a.total == 3
        assert a.per_round(0) == 2
        assert a.total_size == 4
        assert a.filtered == 1

    def test_merge_folds_per_round_service_counts(self):
        a, b = MessageStats(), MessageStats()
        a.record_send(0, mk_message(service=ServiceTags.PROXY))
        b.record_send(0, mk_message(service=ServiceTags.PROXY))
        b.record_send(0, mk_message(service=ServiceTags.GROUP_GOSSIP))
        b.record_send(2, mk_message(service=ServiceTags.PROXY))
        a.merge(b)
        assert a.per_round_by_service(0, ServiceTags.PROXY) == 2
        assert a.per_round_by_service(0, ServiceTags.GROUP_GOSSIP) == 1
        assert a.service_total(ServiceTags.PROXY) == 3
        assert a.by_service() == {
            ServiceTags.PROXY: 3,
            ServiceTags.GROUP_GOSSIP: 1,
        }

    def test_merge_folds_round_sizes_and_max(self):
        a, b = MessageStats(), MessageStats()
        a.record_send(1, mk_message(size=3))
        b.record_send(1, mk_message(size=5))
        b.record_send(4, mk_message(size=1))
        a.merge(b)
        assert a.round_record(1).total_size == 8
        assert a.max_per_round() == 2
        assert a.argmax_round() == 1

    def test_merge_into_empty_equals_source(self):
        src = MessageStats()
        src.record_send(0, mk_message(service=ServiceTags.PROXY, size=2))
        src.record_send(3, mk_message())
        src.record_filtered(2)
        empty = MessageStats()
        empty.merge(src)
        assert empty.summary() == src.summary()
        assert empty.series(0, 3) == src.series(0, 3)

    def test_merge_leaves_other_untouched(self):
        a, b = MessageStats(), MessageStats()
        a.record_send(0, mk_message())
        b.record_send(0, mk_message())
        a.merge(b)
        assert b.total == 1
        assert b.per_round(0) == 1

    def test_summary_keys(self):
        summary = MessageStats().summary()
        assert set(summary) >= {"total", "max_per_round", "by_service"}
