"""Property-based tests of the continuous-gossip black box.

The interface contract CONGOS relies on (DESIGN.md §2): in reliable mode,
every admissible item reaches every in-scope destination by its deadline —
for *any* scope, deadline, fanout and crash set hypothesis dreams up.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gossip.continuous import ContinuousGossip


class MiniHarness:
    def __init__(self, scope, seed, crashed=frozenset(), **kwargs):
        self.scope = sorted(scope)
        self.crashed = set(crashed)
        self.delivered = {pid: set() for pid in self.scope}
        self.services = {}
        self.round = 0
        for pid in self.scope:
            self.services[pid] = ContinuousGossip(
                pid=pid,
                n=max(self.scope) + 1,
                channel="prop",
                scope=self.scope,
                rng=random.Random(seed * 7919 + pid),
                deliver=self._cb(pid),
                **kwargs,
            )

    def _cb(self, pid):
        def callback(round_no, item):
            self.delivered[pid].add(item.uid)

        return callback

    def run(self, rounds):
        for _ in range(rounds):
            outgoing = []
            for pid in self.scope:
                if pid not in self.crashed:
                    outgoing.extend(self.services[pid].send_phase(self.round))
            for message in outgoing:
                if message.dst not in self.crashed:
                    self.services[message.dst].on_message(self.round, message)
            for pid in self.scope:
                if pid not in self.crashed:
                    self.services[pid].end_round(self.round)
            self.round += 1


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scope_size=st.integers(min_value=2, max_value=40),
    deadline=st.integers(min_value=2, max_value=20),
    fanout_scale=st.floats(min_value=0.01, max_value=3.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_reliable_mode_always_delivers(scope_size, deadline, fanout_scale, seed):
    """Admissible items (origin alive throughout) reach every in-scope
    destination by the deadline — probability 1 in reliable mode."""
    harness = MiniHarness(
        range(scope_size), seed, fanout_scale=fanout_scale, reliable=True
    )
    item = harness.services[0].inject(
        0, "payload", deadline=deadline, dest=range(scope_size)
    )
    harness.run(deadline + 1)
    for pid in range(scope_size):
        assert item.uid in harness.delivered[pid]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scope_size=st.integers(min_value=3, max_value=32),
    seed=st.integers(min_value=0, max_value=100),
    data=st.data(),
)
def test_crashed_members_never_receive(scope_size, seed, data):
    """No delivery at crashed members; survivors still served (reliable)."""
    crashed = data.draw(
        st.sets(
            st.integers(min_value=1, max_value=scope_size - 1),
            max_size=scope_size - 2,
        )
    )
    harness = MiniHarness(
        range(scope_size), seed, crashed=crashed, reliable=True
    )
    item = harness.services[0].inject(
        0, "payload", deadline=12, dest=range(scope_size)
    )
    harness.run(13)
    for pid in range(scope_size):
        if pid in crashed:
            assert item.uid not in harness.delivered[pid]
        else:
            assert item.uid in harness.delivered[pid]


@settings(max_examples=20, deadline=None)
@given(
    scope_size=st.integers(min_value=2, max_value=32),
    dest_size=st.integers(min_value=0, max_value=32),
    seed=st.integers(min_value=0, max_value=50),
)
def test_deliveries_respect_destination_sets(scope_size, dest_size, seed):
    """Delivery callbacks fire only at destination-set members."""
    dest = set(range(min(dest_size, scope_size)))
    harness = MiniHarness(range(scope_size), seed, reliable=True)
    item = harness.services[0].inject(0, "payload", deadline=10, dest=dest)
    harness.run(11)
    for pid in range(scope_size):
        if pid in item.dest:
            assert item.uid in harness.delivered[pid]
        else:
            assert item.uid not in harness.delivered[pid]


@settings(max_examples=15, deadline=None)
@given(
    scope_size=st.integers(min_value=2, max_value=24),
    item_count=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=50),
)
def test_concurrent_items_all_delivered(scope_size, item_count, seed):
    harness = MiniHarness(range(scope_size), seed, reliable=True)
    uids = []
    for index in range(item_count):
        origin = index % scope_size
        item = harness.services[origin].inject(
            0, "p{}".format(index), deadline=14, dest=range(scope_size)
        )
        uids.append(item.uid)
    harness.run(15)
    for pid in range(scope_size):
        assert harness.delivered[pid] >= set(uids)
