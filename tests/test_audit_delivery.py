"""Tests for repro.audit.delivery: admissibility and QoD verdicts."""

import pytest

from repro.adversary.base import Adversary
from repro.audit.delivery import DeliveryAuditor
from repro.sim.engine import Engine
from repro.sim.events import RoundDecision
from repro.sim.process import NodeBehavior

from conftest import mk_rumor


class InertNode(NodeBehavior):
    pass


class ScriptedCRRI(Adversary):
    def __init__(self, script):
        self.script = script  # round -> RoundDecision

    def round_start(self, view):
        return self.script.get(view.round, RoundDecision())


def run(script, n=4, rounds=40):
    auditor = DeliveryAuditor()
    engine = Engine(
        n,
        lambda pid: InertNode(pid, n),
        ScriptedCRRI(script),
        observers=[auditor],
    )
    engine.run(rounds)
    return engine, auditor


class TestAdmissibility:
    def test_all_alive_all_admissible(self):
        rumor = mk_rumor(src=0, dest=(1, 2), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        assert auditor.admissible_destinations(rumor.rid, engine.event_log) == {1, 2}

    def test_crashed_source_kills_admissibility(self):
        rumor = mk_rumor(src=0, dest=(1, 2), deadline=10, injected_at=2)
        engine, auditor = run(
            {
                2: RoundDecision(injections=[(0, rumor)]),
                5: RoundDecision(crashes={0}),
            }
        )
        assert auditor.admissible_destinations(rumor.rid, engine.event_log) == set()

    def test_crashed_destination_excluded(self):
        rumor = mk_rumor(src=0, dest=(1, 2), deadline=10, injected_at=2)
        engine, auditor = run(
            {
                2: RoundDecision(injections=[(0, rumor)]),
                7: RoundDecision(crashes={1}),
            }
        )
        assert auditor.admissible_destinations(rumor.rid, engine.event_log) == {2}

    def test_crash_after_deadline_ignored(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run(
            {
                2: RoundDecision(injections=[(0, rumor)]),
                20: RoundDecision(crashes={1}),
            }
        )
        assert auditor.admissible_destinations(rumor.rid, engine.event_log) == {1}


class TestReport:
    def test_missing_admissible_delivery_reported(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        report = auditor.report(engine)
        assert not report.satisfied
        assert len(report.missed) == 1

    def test_on_time_delivery_satisfies(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        auditor.record_delivery(1, 8, rumor.rid, rumor.data, "test")
        report = auditor.report(engine)
        assert report.satisfied
        assert report.latencies() == [6]

    def test_late_delivery_misses(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        auditor.record_delivery(1, 13, rumor.rid, rumor.data, "test")
        report = auditor.report(engine)
        assert not report.satisfied

    def test_corrupted_data_misses(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        auditor.record_delivery(1, 8, rumor.rid, b"garbage", "test")
        report = auditor.report(engine)
        assert not report.satisfied

    def test_inadmissible_miss_is_fine(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run(
            {
                2: RoundDecision(injections=[(0, rumor)]),
                5: RoundDecision(crashes={1}),
            }
        )
        report = auditor.report(engine)
        assert report.satisfied
        assert report.admissible_pairs == 0

    def test_bonus_delivery_counted(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=10, injected_at=2)
        engine, auditor = run(
            {
                2: RoundDecision(injections=[(0, rumor)]),
                5: RoundDecision(crashes={1}),
            }
        )
        auditor.record_delivery(1, 4, rumor.rid, rumor.data, "test")
        report = auditor.report(engine)
        assert report.bonus_deliveries() == 1

    def test_in_flight_rumors_not_judged(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=1000, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        report = auditor.report(engine)
        assert report.outcomes == []

    def test_duplicate_record_keeps_first(self):
        auditor = DeliveryAuditor()
        rumor = mk_rumor()
        auditor.record_delivery(1, 5, rumor.rid, b"first", "a")
        auditor.record_delivery(1, 9, rumor.rid, b"second", "b")
        assert auditor.deliveries[(rumor.rid, 1)] == (5, b"first", "a")

    def test_path_counts(self):
        rumor = mk_rumor(src=0, dest=(1, 2), deadline=10, injected_at=2)
        engine, auditor = run({2: RoundDecision(injections=[(0, rumor)])})
        auditor.record_delivery(1, 4, rumor.rid, rumor.data, "reassembled")
        auditor.record_delivery(2, 12, rumor.rid, rumor.data, "shoot")
        report = auditor.report(engine)
        assert report.path_counts() == {"reassembled": 1, "shoot": 1}

    def test_summary_shape(self):
        rumor = mk_rumor(src=0, dest=(1,), deadline=5, injected_at=1)
        engine, auditor = run({1: RoundDecision(injections=[(0, rumor)])})
        summary = auditor.report(engine).summary()
        assert {"pairs", "admissible", "missed", "satisfied"} <= set(summary)

    def test_injected_rid_order(self):
        first = mk_rumor(src=0, seq=0, injected_at=1)
        second = mk_rumor(src=1, seq=0, injected_at=2)
        engine, auditor = run(
            {
                1: RoundDecision(injections=[(0, first)]),
                2: RoundDecision(injections=[(1, second)]),
            }
        )
        assert auditor.injected_rid(0) == first.rid
        assert auditor.injected_rid(1) == second.rid
