"""Tests for crash adversaries: churn, bursts, scripted and adaptive."""

import random

import pytest

from repro.adversary.adaptive import (
    GroupKillerAdversary,
    IsolatorAdversary,
    ProxyKillerAdversary,
    SourceKillerAdversary,
)
from repro.adversary.patterns import AlternatingPartitionFaults, ScriptedFaults
from repro.adversary.random_crash import (
    BurstCrashAdversary,
    ChurnAdversary,
    CrashOnceAdversary,
)
from repro.core.proxy import ProxyRequest
from repro.sim.engine import Engine
from repro.sim.events import CrashEvent, InjectEvent
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior

from conftest import mk_rumor


def make_view(n=8, round_no=0, crashed=frozenset()):
    engine = Engine(n, lambda pid: NodeBehavior(pid, n))
    for pid in crashed:
        # Bypass Engine._crash (no events/observers wanted); keep the
        # engine's incremental alive-set bookkeeping consistent by hand.
        engine.shells[pid].crash()
        engine._alive.discard(pid)
    for _ in range(round_no):
        engine.clock.advance()
    return engine.view


def proxy_request_message(src=0, dst=3):
    request = ProxyRequest(src, ())
    return Message(
        src=src,
        dst=dst,
        service=ServiceTags.PROXY,
        payload=request,
        channel="px/64/0",
    )


class TestChurn:
    def test_probability_bounds_respected(self):
        with pytest.raises(ValueError):
            ChurnAdversary(random.Random(0), p_crash=2.0, p_restart=0.0)

    def test_immune_never_crashed(self):
        adversary = ChurnAdversary(
            random.Random(0), p_crash=1.0, p_restart=0.0, immune={0, 1}, min_alive=0
        )
        decision = adversary.round_start(make_view())
        assert not decision.crashes & {0, 1}

    def test_min_alive_floor(self):
        adversary = ChurnAdversary(
            random.Random(0), p_crash=1.0, p_restart=0.0, min_alive=3
        )
        decision = adversary.round_start(make_view())
        assert 8 - len(decision.crashes) >= 3

    def test_restarts_crashed(self):
        adversary = ChurnAdversary(random.Random(0), p_crash=0.0, p_restart=1.0)
        decision = adversary.round_start(make_view(crashed={2, 4}))
        assert decision.restarts == {2, 4}

    def test_window(self):
        adversary = ChurnAdversary(
            random.Random(0), p_crash=1.0, p_restart=0.0, start_round=5, min_alive=0
        )
        assert adversary.round_start(make_view(round_no=0)).is_empty()
        assert adversary.round_start(make_view(round_no=5)).crashes


class TestBurstCrash:
    def test_fraction_crashed(self):
        adversary = BurstCrashAdversary(random.Random(0), bursts={2: 0.5})
        decision = adversary.round_start(make_view(round_no=2))
        assert len(decision.crashes) == 4

    def test_restart_after(self):
        adversary = BurstCrashAdversary(
            random.Random(0), bursts={2: 0.5}, restart_after=3
        )
        crashed = adversary.round_start(make_view(round_no=2)).crashes
        decision = adversary.round_start(make_view(round_no=5, crashed=crashed))
        assert decision.restarts == crashed


class TestCrashOnce:
    def test_crash_and_restart_rounds(self):
        adversary = CrashOnceAdversary([1, 2], crash_round=3, restart_round=6)
        assert adversary.round_start(make_view(round_no=3)).crashes == {1, 2}
        decision = adversary.round_start(make_view(round_no=6, crashed={1, 2}))
        assert decision.restarts == {1, 2}

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashOnceAdversary([1], crash_round=5, restart_round=5)


class TestScriptedFaults:
    def test_replays_script(self):
        adversary = ScriptedFaults([(1, "crash", 3), (4, "restart", 3)])
        assert adversary.round_start(make_view(round_no=1)).crashes == {3}
        decision = adversary.round_start(make_view(round_no=4, crashed={3}))
        assert decision.restarts == {3}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScriptedFaults([(0, "explode", 1)])

    def test_noop_on_wrong_state(self):
        adversary = ScriptedFaults([(0, "restart", 3)])
        assert adversary.round_start(make_view()).is_empty()


class TestAlternatingPartition:
    def test_one_block_down_at_a_time(self):
        adversary = AlternatingPartitionFaults(8, blocks=4, period=8)
        decision = adversary.round_start(make_view())
        assert decision.crashes == {0, 1}

    def test_rotation(self):
        adversary = AlternatingPartitionFaults(8, blocks=4, period=8)
        crashed = adversary.round_start(make_view(round_no=0)).crashes
        decision = adversary.round_start(make_view(round_no=2, crashed=crashed))
        assert decision.restarts == crashed
        assert decision.crashes == {2, 3}

    def test_immune_skipped(self):
        adversary = AlternatingPartitionFaults(8, blocks=4, period=8, immune={0})
        assert 0 not in adversary.round_start(make_view()).crashes

    def test_validation(self):
        with pytest.raises(ValueError):
            AlternatingPartitionFaults(8, blocks=1, period=8)


class TestProxyKiller:
    def test_kills_request_recipients(self):
        adversary = ProxyKillerAdversary(budget_per_round=4)
        view = make_view()
        outgoing = [proxy_request_message(dst=3), proxy_request_message(dst=5)]
        decision = adversary.mid_round(view, outgoing)
        assert decision.crashes == {3, 5}
        assert decision.dropped_messages == {0, 1}

    def test_ignores_non_proxy_traffic(self):
        adversary = ProxyKillerAdversary()
        message = Message(src=0, dst=3, service=ServiceTags.GROUP_GOSSIP, payload=())
        decision = adversary.mid_round(make_view(), [message])
        assert decision.is_empty()

    def test_budget_per_round(self):
        adversary = ProxyKillerAdversary(budget_per_round=1)
        outgoing = [proxy_request_message(dst=3), proxy_request_message(dst=5)]
        decision = adversary.mid_round(make_view(), outgoing)
        assert len(decision.crashes) == 1

    def test_total_budget_exhausts(self):
        adversary = ProxyKillerAdversary(budget_per_round=4, total_budget=2)
        view = make_view()
        adversary.mid_round(view, [proxy_request_message(dst=1), proxy_request_message(dst=2)])
        decision = adversary.mid_round(view, [proxy_request_message(dst=3)])
        assert decision.is_empty()

    def test_spares_protected(self):
        adversary = ProxyKillerAdversary(spare={3})
        decision = adversary.mid_round(make_view(), [proxy_request_message(dst=3)])
        assert decision.is_empty()

    def test_restart_after_schedules_revivals(self):
        adversary = ProxyKillerAdversary(restart_after=2)
        view = make_view()
        adversary.mid_round(view, [proxy_request_message(dst=3)])
        later = make_view(round_no=2, crashed={3})
        decision = adversary.round_start(later)
        assert decision.restarts == {3}


class TestGroupKiller:
    def test_kills_group(self):
        adversary = GroupKillerAdversary({1, 3, 5}, crash_round=4)
        assert adversary.round_start(make_view(round_no=4)).crashes == {1, 3, 5}

    def test_restart_round(self):
        adversary = GroupKillerAdversary({1}, crash_round=1, restart_round=5)
        decision = adversary.round_start(make_view(round_no=5, crashed={1}))
        assert decision.restarts == {1}


class TestIsolator:
    def test_crashes_victims_receivers(self):
        adversary = IsolatorAdversary(victim=0, total_budget=10)
        outgoing = [
            Message(src=0, dst=2, service=ServiceTags.GROUP_GOSSIP, payload=()),
            Message(src=1, dst=3, service=ServiceTags.GROUP_GOSSIP, payload=()),
        ]
        decision = adversary.mid_round(make_view(), outgoing)
        assert decision.crashes == {2}
        assert decision.dropped_messages == {0}

    def test_budget(self):
        adversary = IsolatorAdversary(victim=0, total_budget=1)
        outgoing = [
            Message(src=0, dst=2, service=ServiceTags.GROUP_GOSSIP, payload=()),
            Message(src=0, dst=3, service=ServiceTags.GROUP_GOSSIP, payload=()),
        ]
        decision = adversary.mid_round(make_view(), outgoing)
        assert len(decision.crashes) == 1


class TestSourceKiller:
    def test_kills_after_injection(self):
        adversary = SourceKillerAdversary(random.Random(0), kill_probability=1.0)
        view = make_view(round_no=5)
        view.event_log.record_injection(InjectEvent(2, 4, mk_rumor(src=2)))
        decision = adversary.round_start(view)
        assert decision.crashes == {2}

    def test_ignores_old_injections(self):
        adversary = SourceKillerAdversary(random.Random(0), kill_probability=1.0)
        view = make_view(round_no=9)
        view.event_log.record_injection(InjectEvent(2, 4, mk_rumor(src=2)))
        assert adversary.round_start(view).is_empty()
