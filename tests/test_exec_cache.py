"""Tests for repro.exec.cache and resume semantics of run_specs."""

import json

import pytest

from repro.core.config import CongosParams
from repro.exec.cache import ResultCache
from repro.exec.pool import run_specs
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, execute_spec


def make_spec(seed=0, n=8):
    return RunSpec.make(
        "steady",
        seed=seed,
        n=n,
        rounds=200,
        deadline=64,
        params=CongosParams.lean(),
    )


def fake_record(key="k" * 64, seed=0):
    return RunRecord(
        scenario="steady",
        n=8,
        rounds=200,
        seed=seed,
        peak=10,
        total=100,
        total_size=100,
        mean_per_round=1.0,
        filtered=0,
        spec_key=key,
    )


class TestResultCache:
    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get("a" * 64) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = fake_record()
        path = cache.put(record)
        assert path.endswith("{}.json".format("k" * 64))
        assert record.spec_key in cache
        assert cache.get(record.spec_key) == record
        assert cache.hits == 1

    def test_put_requires_a_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = fake_record(key=None)
        with pytest.raises(ValueError):
            cache.put(record)
        cache.put(record, key="b" * 64)
        assert "b" * 64 in cache

    def test_rejects_path_traversal_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.path_for("../escape")
        with pytest.raises(ValueError):
            cache.path_for(".hidden")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = fake_record()
        cache.put(record)
        with open(cache.path_for(record.spec_key), "w") as handle:
            handle.write("{not json")
        assert cache.get(record.spec_key) is None

    def test_keys_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(fake_record(key="a" * 64))
        cache.put(fake_record(key="b" * 64))
        assert list(cache.keys()) == sorted(["a" * 64, "b" * 64])
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_entries_are_plain_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        record = fake_record()
        with open(cache.put(record), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["peak"] == 10
        assert RunRecord.from_dict(data) == record


class TestResume:
    def test_resume_after_partial_sweep_runs_only_missing(self, tmp_path):
        """Interrupt a sweep halfway; the resumed run must execute only
        the cells the first run never finished (counted, not assumed)."""
        cache = ResultCache(str(tmp_path / "cache"))
        specs = [make_spec(seed=seed) for seed in (0, 1, 2)]

        executed = []

        def counting_execute(spec):
            executed.append(spec.key)
            return execute_spec(spec)

        # "interrupted" first run: only the first two cells completed
        first = run_specs(specs[:2], jobs=1, cache=cache, fn=counting_execute)
        assert len(executed) == 2

        # resume: the two cached cells are served from disk, one runs
        resumed = run_specs(specs, jobs=1, cache=cache, fn=counting_execute)
        assert len(executed) == 3
        assert executed.count(specs[2].key) == 1
        assert [r.without_profile().to_dict() for r in resumed[:2]] == [
            r.without_profile().to_dict() for r in first
        ]
        assert all(r.cache_hit for r in resumed[:2])
        assert not resumed[2].cache_hit
        assert cache.hits == 2

    def test_interrupt_mid_batch_keeps_completed_work(self, tmp_path):
        """Records are checkpointed as tasks land, not after the batch —
        a sweep killed mid-flight must not lose what already finished."""
        cache = ResultCache(str(tmp_path / "cache"))
        specs = [make_spec(seed=seed) for seed in (0, 1, 2)]

        executed = []

        def dies_on_third(spec):
            if spec.key == specs[2].key:
                raise KeyboardInterrupt
            executed.append(spec.key)
            return execute_spec(spec)

        with pytest.raises(KeyboardInterrupt):
            run_specs(specs, jobs=1, cache=cache, fn=dies_on_third)
        assert len(cache) == 2  # the two finished tasks hit the disk

        resumed = run_specs(specs, jobs=1, cache=cache, fn=execute_spec)
        assert len(resumed) == 3
        assert cache.hits == 2  # only the third task ran after the signal

    def test_resume_false_ignores_cache_but_still_writes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = make_spec()
        executed = []

        def counting_execute(spec_):
            executed.append(spec_.key)
            return execute_spec(spec_)

        run_specs([spec], jobs=1, cache=cache, fn=counting_execute)
        run_specs(
            [spec], jobs=1, cache=cache, resume=False, fn=counting_execute
        )
        assert len(executed) == 2  # resume=False re-ran it
        run_specs([spec], jobs=1, cache=cache, fn=counting_execute)
        assert len(executed) == 2  # ...but the rewrite made resume possible

    def test_cached_record_identical_to_fresh(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = make_spec()
        fresh = run_specs([spec], jobs=1)[0]
        run_specs([spec], jobs=1, cache=cache)
        cached = run_specs([spec], jobs=1, cache=cache)[0]
        assert cached.cache_hit and not fresh.cache_hit
        assert cached.without_profile().to_dict() == fresh.without_profile().to_dict()
