"""Tests for repro.chaos.spec and repro.chaos.schedule: validation and
seed-keyed determinism (same seed => identical fault schedule)."""

import pytest

from repro.chaos.schedule import DELAY, DELIVER, DROP, DUPLICATE, FaultSchedule
from repro.chaos.spec import FaultSpec


class TestFaultSpecValidation:
    def test_defaults_are_the_reliable_network(self):
        spec = FaultSpec()
        assert spec.is_null()
        assert spec.intensity() == 0.0

    def test_any_knob_leaves_null(self):
        assert not FaultSpec(drop=0.1).is_null()
        assert not FaultSpec(delay=0.1).is_null()
        assert not FaultSpec(duplicate=0.1).is_null()
        assert not FaultSpec(reorder=0.1).is_null()
        assert not FaultSpec(partition_period=8, partition_width=2).is_null()

    @pytest.mark.parametrize("name", ["drop", "delay", "duplicate", "reorder"])
    def test_probabilities_bounded(self, name):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(**{name: 1.5})
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(**{name: -0.1})

    def test_max_delay_positive(self):
        with pytest.raises(ValueError, match="max_delay"):
            FaultSpec(max_delay=0)

    def test_partition_width_needs_period(self):
        with pytest.raises(ValueError, match="partition_width"):
            FaultSpec(partition_width=2)

    def test_partition_width_below_period(self):
        with pytest.raises(ValueError, match="permanently partitioned"):
            FaultSpec(partition_period=4, partition_width=4)

    def test_stop_after_start(self):
        with pytest.raises(ValueError, match="stop_round"):
            FaultSpec(start_round=10, stop_round=10)

    def test_active_window(self):
        spec = FaultSpec(drop=0.1, start_round=5, stop_round=10)
        assert not spec.active_in(4)
        assert spec.active_in(5)
        assert spec.active_in(9)
        assert not spec.active_in(10)

    def test_open_ended_window(self):
        spec = FaultSpec(drop=0.1, start_round=3)
        assert spec.active_in(10_000)

    def test_intensity_sums_knobs(self):
        spec = FaultSpec(
            drop=0.1, delay=0.2, duplicate=0.05,
            partition_period=8, partition_width=2,
        )
        assert spec.intensity() == pytest.approx(0.1 + 0.2 + 0.05 + 0.25)

    def test_dict_round_trip(self):
        spec = FaultSpec(drop=0.1, delay=0.2, max_delay=3, stop_round=50)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"drop": 0.1, "jitter": 0.5})


class TestScheduleDeterminism:
    SPEC = FaultSpec(drop=0.2, delay=0.2, max_delay=3, duplicate=0.1)

    def test_same_seed_identical_decisions(self):
        a = FaultSchedule(42, self.SPEC, 16)
        b = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(20):
            assert a.decisions(round_no, 50) == b.decisions(round_no, 50)

    def test_decisions_are_pure(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        first = schedule.decisions(7, 50)
        assert schedule.decisions(7, 50) == first

    def test_different_seeds_differ(self):
        a = FaultSchedule(42, self.SPEC, 16)
        b = FaultSchedule(43, self.SPEC, 16)
        rounds = [a.decisions(r, 50) for r in range(10)]
        assert rounds != [b.decisions(r, 50) for r in range(10)]

    def test_rounds_are_independent_streams(self):
        # Round r's decisions do not depend on whether earlier rounds
        # were ever drawn.
        fresh = FaultSchedule(42, self.SPEC, 16)
        warmed = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(9):
            warmed.decisions(round_no, 50)
        assert fresh.decisions(9, 50) == warmed.decisions(9, 50)

    def test_inactive_round_delivers_everything(self):
        spec = FaultSpec(drop=0.9, start_round=100)
        schedule = FaultSchedule(42, spec, 16)
        assert schedule.decisions(5, 10) == [(DELIVER, 0)] * 10

    def test_delay_holds_bounded(self):
        spec = FaultSpec(delay=1.0, max_delay=3)
        schedule = FaultSchedule(42, spec, 16)
        for fate, hold in schedule.decisions(0, 200):
            assert fate == DELAY
            assert 1 <= hold <= 3

    def test_fates_roughly_match_probabilities(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        fates = [
            fate
            for round_no in range(40)
            for fate, _ in schedule.decisions(round_no, 100)
        ]
        total = len(fates)
        assert 0.15 < fates.count(DROP) / total < 0.25
        assert 0.15 < fates.count(DELAY) / total < 0.25
        assert 0.05 < fates.count(DUPLICATE) / total < 0.15
        assert 0.4 < fates.count(DELIVER) / total < 0.6


class TestPartitionStorms:
    SPEC = FaultSpec(partition_period=8, partition_width=3)

    def test_storm_phase_geometry(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(32):
            severed = schedule.severed(round_no)
            if round_no % 8 < 3:
                assert severed is not None
            else:
                assert severed is None

    def test_cut_is_a_bisection(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        cut = schedule.severed(0)
        assert len(cut) == 8
        assert cut < set(range(16))

    def test_cut_stable_within_a_window(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        assert schedule.severed(0) == schedule.severed(1) == schedule.severed(2)

    def test_same_seed_same_cuts(self):
        a = FaultSchedule(42, self.SPEC, 16)
        b = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(32):
            assert a.severed(round_no) == b.severed(round_no)

    def test_windows_independent_of_query_order(self):
        fresh = FaultSchedule(42, self.SPEC, 16)
        warmed = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(16):
            warmed.severed(round_no)
        assert fresh.severed(17) == warmed.severed(17)

    def test_no_partitions_when_disabled(self):
        schedule = FaultSchedule(42, FaultSpec(drop=0.5), 16)
        assert all(schedule.severed(r) is None for r in range(16))


class TestSeveredBoundaries:
    """severed() at the exact edges of storm windows and active ranges."""

    def test_storm_window_boundary_rounds(self):
        # period=8, width=3: storm covers phases 0,1,2 of every window.
        schedule = FaultSchedule(42, FaultSpec(partition_period=8, partition_width=3), 16)
        for window_start in (0, 8, 16, 24):
            assert schedule.severed(window_start) is not None  # first round
            assert schedule.severed(window_start + 2) is not None  # last storm round
            assert schedule.severed(window_start + 3) is None  # first calm round
            assert schedule.severed(window_start + 7) is None  # last calm round

    def test_width_one_severs_exactly_one_round_per_window(self):
        schedule = FaultSchedule(7, FaultSpec(partition_period=4, partition_width=1), 16)
        severed_rounds = [r for r in range(40) if schedule.severed(r) is not None]
        assert severed_rounds == [0, 4, 8, 12, 16, 20, 24, 28, 32, 36]

    def test_start_round_edge(self):
        spec = FaultSpec(partition_period=4, partition_width=2, start_round=8)
        schedule = FaultSchedule(42, spec, 16)
        # Round 7 is outside the active window even though phase 3 of
        # window 1 would not sever anyway; round 8 (window 2, phase 0) does.
        assert schedule.severed(7) is None
        assert schedule.severed(8) is not None
        assert schedule.severed(9) is not None
        assert schedule.severed(10) is None

    def test_stop_round_edge(self):
        spec = FaultSpec(partition_period=4, partition_width=2, stop_round=8)
        schedule = FaultSchedule(42, spec, 16)
        assert schedule.severed(4) is not None
        assert schedule.severed(5) is not None
        assert schedule.severed(7) is None  # phase 3: calm
        assert schedule.severed(8) is None  # stop_round is exclusive
        assert schedule.severed(9) is None

    def test_consecutive_windows_draw_distinct_cuts(self):
        # Not a fairness claim — just that window k's cut comes from its
        # own stream: over many windows at least two cuts differ.
        schedule = FaultSchedule(42, FaultSpec(partition_period=2, partition_width=1), 16)
        cuts = {schedule.severed(window * 2) for window in range(16)}
        assert len(cuts) > 1


class TestMessageFatePurity:
    """message_fate is a pure function of (seed, round, src, dst, copy) —
    the property that makes chaos_keyed runs --jobs- and shard-invariant."""

    SPEC = FaultSpec(drop=0.3, delay=0.3, max_delay=4, duplicate=0.1)

    def test_same_coordinates_same_fate(self):
        schedule = FaultSchedule(42, self.SPEC, 16)
        for round_no in range(8):
            for copy in range(3):
                first = schedule.message_fate(round_no, 1, 2, copy)
                assert schedule.message_fate(round_no, 1, 2, copy) == first

    def test_independent_instances_agree(self):
        # Two schedules (e.g. two exec-pool workers, or two shard
        # workers) reach identical fates without sharing any state.
        a = FaultSchedule(42, self.SPEC, 16)
        b = FaultSchedule(42, self.SPEC, 16)
        fates_a = [
            a.message_fate(r, s, d, c)
            for r in range(6)
            for s in range(4)
            for d in range(4)
            for c in range(2)
        ]
        fates_b = [
            b.message_fate(r, s, d, c)
            for r in range(6)
            for s in range(4)
            for d in range(4)
            for c in range(2)
        ]
        assert fates_a == fates_b

    def test_query_order_is_irrelevant(self):
        # Shards enumerate only their own destinations, in their own
        # order; fates must not depend on the enumeration order.
        forward = FaultSchedule(42, self.SPEC, 16)
        backward = FaultSchedule(42, self.SPEC, 16)
        coords = [
            (r, s, d, c)
            for r in range(4)
            for s in range(3)
            for d in range(3)
            for c in range(2)
        ]
        want = {xyz: forward.message_fate(*xyz) for xyz in coords}
        got = {xyz: backward.message_fate(*xyz) for xyz in reversed(coords)}
        assert got == want

    def test_copy_index_distinguishes_duplicates(self):
        schedule = FaultSchedule(42, FaultSpec(drop=0.5), 64)
        fates = {
            copy: schedule.message_fate(3, 1, 2, copy) for copy in range(64)
        }
        assert len(set(fates.values())) > 1  # copies draw distinct streams

    def test_inactive_rounds_deliver_without_drawing(self):
        spec = FaultSpec(drop=1.0, start_round=10)
        schedule = FaultSchedule(42, spec, 16)
        assert schedule.message_fate(9, 0, 1, 0) == (DELIVER, 0)
        assert schedule.message_fate(10, 0, 1, 0) == (DROP, 0)
