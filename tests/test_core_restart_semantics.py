"""Restart semantics of the CONGOS stack (the no-durable-storage rule).

The paper's model wipes a process on restart: it knows only the algorithm,
``[n]`` and the global clock, and must "wait until a new block begins"
before participating again.  These tests drive real crashes/restarts
through the engine and inspect the rebuilt services.
"""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.adversary.patterns import ScriptedFaults
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core import proxy as proxy_mod
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 8
DLINE = 64


def run_with_faults(script, faults, rounds=320, seed=0, params=None):
    resolved = params if params is not None else CongosParams()
    partitions = build_partition_set(N, resolved, seed)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        partitions.count, partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=resolved,
        seed=seed,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    workload = ScriptedWorkload(script, derive_rng(seed, "wl"))
    engine = Engine(
        N,
        factory,
        ComposedAdversary([workload, ScriptedFaults(faults)]),
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(rounds)
    return engine, delivery, confidentiality


class TestVolatileState:
    def test_restart_rebuilds_services(self):
        faults = [(100, "crash", 3), (110, "restart", 3)]
        engine, *_ = run_with_faults([(64, 0, DLINE, {5})], faults)
        node = engine.behavior(3)
        assert node.wakeup == 110
        # The rebuilt node lazily re-creates instances on traffic; at
        # minimum, its coordinator and AllGossip exist and are empty of
        # pre-crash state.
        assert node.coordinator.rumor_cache == {}

    def test_restarted_process_waits_for_new_block(self):
        # Crash and restart pid 3 mid-block; until the next block start
        # its Proxy services must be WAITING.
        faults = [(70, "crash", 3), (72, "restart", 3)]
        engine, *_ = run_with_faults(
            [(64, 0, DLINE, {5}), (73, 2, DLINE, {3, 5})], faults, rounds=120
        )
        node = engine.behavior(3)
        # dline=64 -> blocks of 16; round 72 is inside block 4 (64..79).
        for bundle in node.instances.values():
            for proxy_service in bundle.proxies:
                # uptime(16) not reached within the same block: after 120
                # rounds (wakeup=72), blocks 6+ qualify (round 96: 24 >= 16).
                assert proxy_service.wakeup == 72

    def test_proxy_uptime_gate(self):
        """A service created right after restart refuses to activate until
        it has a full block of uptime."""
        faults = [(70, "crash", 0), (79, "restart", 0)]
        engine, delivery, _ = run_with_faults(
            [(82, 0, DLINE, {5})], faults, rounds=320
        )
        # Source restarted at 79, injects at 82.  Proxy block at 96 has
        # uptime 17 >= 16 -> active.  The rumor must still be delivered.
        report = delivery.report(engine)
        assert report.satisfied

    def test_source_crash_drops_cache_but_leaks_nothing(self):
        faults = [(80, "crash", 0)]
        engine, delivery, confidentiality = run_with_faults(
            [(64, 0, DLINE, {5})], faults
        )
        report = delivery.report(engine)
        # Source not continuously alive: pair inadmissible, QoD vacuous.
        assert report.admissible_pairs == 0
        assert report.satisfied
        assert confidentiality.is_clean()

    def test_destination_crash_and_restart_can_still_learn(self):
        """An inadmissible destination may still receive the rumor (bonus
        delivery) if it comes back before distribution finishes."""
        faults = [(70, "crash", 5), (74, "restart", 5)]
        engine, delivery, confidentiality = run_with_faults(
            [(64, 0, DLINE, {5, 3})], faults
        )
        report = delivery.report(engine)
        assert report.satisfied  # 3 is admissible and served; 5 excused
        assert confidentiality.is_clean()

    def test_repeated_crash_restart_cycles(self):
        faults = []
        for i, base in enumerate(range(70, 220, 30)):
            faults.append((base, "crash", 2 + (i % 3)))
            faults.append((base + 10, "restart", 2 + (i % 3)))
        script = [(64 + 16 * k, 0, DLINE, {6, 7}) for k in range(5)]
        engine, delivery, confidentiality = run_with_faults(
            script, faults, rounds=400
        )
        assert delivery.report(engine).satisfied
        assert confidentiality.is_clean()


class TestRestartDeterminism:
    def test_restarted_nodes_draw_fresh_randomness(self):
        """A node restarted at round r must not replay its pre-crash
        random choices (rng streams are derived per (pid, start round))."""
        from repro.core.congos import CongosNode
        from repro.sim.rng import SeedSequence

        params = CongosParams()
        partitions = build_partition_set(N, params, 0)
        seeds = SeedSequence(0).child("congos")
        node_a = CongosNode(0, N, params, partitions, seeds)
        node_a.on_start(0)
        node_b = CongosNode(0, N, params, partitions, seeds)
        node_b.on_start(50)
        assert node_a._split_rng.random() != node_b._split_rng.random()

    def test_same_start_round_same_stream(self):
        from repro.core.congos import CongosNode
        from repro.sim.rng import SeedSequence

        params = CongosParams()
        partitions = build_partition_set(N, params, 0)
        seeds = SeedSequence(0).child("congos")
        node_a = CongosNode(0, N, params, partitions, seeds)
        node_a.on_start(5)
        node_b = CongosNode(0, N, params, partitions, seeds)
        node_b.on_start(5)
        assert node_a._split_rng.random() == node_b._split_rng.random()
