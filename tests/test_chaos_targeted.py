"""Tests for repro.chaos.targeted: budgeted rumor-aware fault policies.

Covers the spec/ledger/policy units, the composed fault plane's
semantics (leak-safe observation, exact budget accounting, seed-keyed
delay streams), scenario-level integration with RunRecord, --jobs
invariance on the exec pool, targeted telemetry attribution, and the
E19 harness helpers.
"""

import pytest

from repro.chaos.plane import ChaosFaultPlane, FaultEvent
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import (
    BudgetLedger,
    CollectorStarver,
    DeadlineChaser,
    FallbackHerder,
    POLICIES,
    ProxySuppressor,
    TargetedFaultPlane,
    TargetedSpec,
    _ledger_ok,
    get_policy,
    policy_names,
    run_targeted_soak,
    targeted_cells,
    targeted_payload,
)
from repro.exec.results import RunRecord
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import targeted_scenario
from repro.obs import Telemetry
from repro.sim.messages import ServiceTags
from repro.sim.network import Network

from conftest import mk_message, mk_rumor


def route(network, round_no, outgoing, alive=None):
    alive = alive if alive is not None else set(range(network.n))
    return network.route(
        round_no, outgoing, alive_after_round=alive, boundary_pids=set()
    )


def targeted_plane(tspec, spec=None, n=8, seed=7, **kwargs):
    plane = TargetedFaultPlane(
        seed, spec if spec is not None else FaultSpec(), tspec, n, **kwargs
    )
    return Network(n, fault_plane=plane), plane


def rumor_message(src=0, dst=1, rid_src=0, rid_seq=0, service=ServiceTags.PROXY):
    return mk_message(
        src=src, dst=dst, service=service, payload=mk_rumor(src=rid_src, seq=rid_seq)
    )


class TestTargetedSpec:
    def test_defaults_valid_and_round_trip(self):
        spec = TargetedSpec()
        assert TargetedSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown targeted policy"):
            TargetedSpec(policy="omniscient")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="drop"):
            TargetedSpec(kind="corrupt")

    @pytest.mark.parametrize("field", ["per_round", "total"])
    def test_budgets_positive(self, field):
        with pytest.raises(ValueError, match="budgets"):
            TargetedSpec(**{field: 0})

    def test_hold_and_window_positive(self):
        with pytest.raises(ValueError, match="hold"):
            TargetedSpec(hold=0)
        with pytest.raises(ValueError, match="window"):
            TargetedSpec(window=0)

    def test_stop_after_start(self):
        with pytest.raises(ValueError, match="stop_round"):
            TargetedSpec(start_round=10, stop_round=10)

    def test_active_window(self):
        spec = TargetedSpec(start_round=5, stop_round=10)
        assert not spec.active_in(4)
        assert spec.active_in(5)
        assert spec.active_in(9)
        assert not spec.active_in(10)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown TargetedSpec fields"):
            TargetedSpec.from_dict({"policy": "proxy-suppressor", "omni": 1})

    def test_registry(self):
        assert set(policy_names()) == set(POLICIES)
        assert get_policy("proxy-suppressor") is ProxySuppressor
        with pytest.raises(KeyError, match="registered"):
            get_policy("omniscient")


class TestBudgetLedger:
    def test_per_round_cap_is_per_destination(self):
        ledger = BudgetLedger(per_round=2, total=100)
        ledger.begin_round(0)
        assert ledger.try_spend(1, "drop")
        assert ledger.try_spend(1, "drop")
        assert not ledger.try_spend(1, "drop")  # dst 1 capped this round
        assert ledger.try_spend(2, "drop")  # dst 2 unaffected
        assert (ledger.spent, ledger.denied) == (3, 1)

    def test_round_reset_restores_per_round_budget(self):
        ledger = BudgetLedger(per_round=1, total=100)
        ledger.begin_round(0)
        assert ledger.try_spend(1, "drop")
        assert not ledger.try_spend(1, "drop")
        ledger.begin_round(1)
        assert ledger.try_spend(1, "drop")

    def test_total_cap_survives_round_resets(self):
        ledger = BudgetLedger(per_round=10, total=3)
        for round_no in range(4):
            ledger.begin_round(round_no)
            ledger.try_spend(5, "drop")
        assert ledger.spent == 3
        assert ledger.denied == 1
        assert ledger.max_dst_spend == 3

    def test_as_dict_accounting_identity(self):
        ledger = BudgetLedger(per_round=2, total=8)
        ledger.begin_round(0)
        ledger.try_spend(1, "drop")
        ledger.try_spend(2, "delay")
        data = ledger.as_dict()
        assert data["spent"] == 2
        assert data["by_kind"] == {"delay": 1, "drop": 1}
        assert sum(data["by_kind"].values()) == data["spent"]
        assert data["destinations"] == 2
        assert data["max_round_spend"] == 1

    def test_merge_sums_and_maxes(self):
        # Shard workers own disjoint destinations, so the fold is exact.
        a = BudgetLedger(per_round=2, total=8)
        a.begin_round(0)
        a.try_spend(1, "drop")
        a.try_spend(1, "drop")
        b = BudgetLedger(per_round=2, total=8)
        b.begin_round(0)
        b.try_spend(5, "delay")
        b.try_spend(6, "drop")
        b.try_spend(6, "drop")
        b.try_spend(6, "drop")  # denied
        a.merge(b.as_dict())
        merged = a.as_dict()
        assert merged["spent"] == 5
        assert merged["denied"] == 1
        assert merged["by_kind"] == {"delay": 1, "drop": 4}
        assert merged["max_round_spend"] == 2
        assert merged["destinations"] == 3


class TestPolicyTracking:
    SPEC = TargetedSpec()

    def test_tracks_first_injection_only_while_live(self):
        policy = ProxySuppressor(self.SPEC, seed=1, n=8)
        policy.observe_injection(0, 3, 0, deadline=10)
        policy.observe_injection(2, 4, 0, deadline=10)  # still chasing r3:0
        assert policy.tracked == "r3:0"
        assert policy.tracked_rids == ["r3:0"]

    def test_retargets_after_expiry(self):
        policy = ProxySuppressor(self.SPEC, seed=1, n=8)
        policy.observe_injection(0, 3, 0, deadline=10)
        policy.observe_injection(11, 4, 1, deadline=10)  # r3:0 expired
        assert policy.tracked == "r4:1"
        assert policy.tracked_rids == ["r3:0", "r4:1"]

    def test_no_retarget_when_disabled(self):
        spec = TargetedSpec(retarget=False)
        policy = ProxySuppressor(spec, seed=1, n=8)
        policy.observe_injection(0, 3, 0, deadline=10)
        policy.observe_injection(11, 4, 1, deadline=10)
        assert policy.tracked == "r3:0"

    def test_track_src_filter(self):
        spec = TargetedSpec(track_src=5)
        policy = ProxySuppressor(spec, seed=1, n=8)
        policy.observe_injection(0, 3, 0, deadline=10)
        assert policy.tracked is None
        policy.observe_injection(1, 5, 0, deadline=10)
        assert policy.tracked == "r5:0"

    def test_blind_tracks_all_live_and_prunes_expired(self):
        spec = TargetedSpec(blind=True)
        policy = ProxySuppressor(spec, seed=1, n=8)
        policy.observe_injection(0, 1, 0, deadline=5)
        policy.observe_injection(2, 2, 0, deadline=20)
        assert set(policy.targets) == {"r1:0", "r2:0"}
        policy.begin_round(6)  # r1:0 expired at round 5
        assert set(policy.targets) == {"r2:0"}
        assert policy.targets_seen == 2


class TestPolicyWants:
    def wants(self, policy, round_no, service, rids):
        from repro.chaos.plane import pipeline_stage

        return policy.wants(
            round_no, 0, 1, service, pipeline_stage(service), rids
        )

    def test_proxy_suppressor_proxy_stage_only(self):
        policy = ProxySuppressor(TargetedSpec(), seed=1, n=8)
        policy.observe_injection(0, 3, 0, deadline=10)
        assert self.wants(policy, 1, ServiceTags.PROXY, ["r3:0"])
        assert not self.wants(policy, 1, ServiceTags.GROUP_GOSSIP, ["r3:0"])
        assert not self.wants(policy, 1, ServiceTags.PROXY, ["r9:9"])
        assert not self.wants(policy, 11, ServiceTags.PROXY, ["r3:0"])  # expired

    def test_collector_starver_gd_and_gossip(self):
        policy = CollectorStarver(
            TargetedSpec(policy="collector-starver"), seed=1, n=8
        )
        policy.observe_injection(0, 3, 0, deadline=10)
        assert self.wants(policy, 1, ServiceTags.GROUP_DISTRIBUTION, ["r3:0"])
        assert self.wants(policy, 1, ServiceTags.GROUP_GOSSIP, ["r3:0"])
        assert self.wants(policy, 1, ServiceTags.ALL_GOSSIP, ["r3:0"])
        assert not self.wants(policy, 1, ServiceTags.PROXY, ["r3:0"])

    def test_deadline_chaser_waits_out_grace_then_chases(self):
        spec = TargetedSpec(policy="deadline-chaser", window=4)
        policy = DeadlineChaser(spec, seed=1, n=8)
        policy.observe_injection(10, 3, 0, deadline=20)  # expiry 30
        assert not self.wants(policy, 13, ServiceTags.GROUP_GOSSIP, ["r3:0"])
        assert self.wants(policy, 14, ServiceTags.GROUP_GOSSIP, ["r3:0"])  # grace over
        assert self.wants(policy, 30, ServiceTags.CONFIDENTIAL, ["r3:0"])
        assert not self.wants(policy, 31, ServiceTags.GROUP_GOSSIP, ["r3:0"])

    def test_fallback_herder_acks_only(self):
        policy = FallbackHerder(
            TargetedSpec(policy="fallback-herder"), seed=1, n=8
        )
        policy.observe_injection(0, 3, 0, deadline=10)
        assert self.wants(policy, 1, ServiceTags.DIRECT_ACK, ["r3:0"])
        assert not self.wants(policy, 1, ServiceTags.CONFIDENTIAL, ["r3:0"])


class TestTargetedPlaneSemantics:
    def test_drops_tracked_rumor_messages_within_budget(self):
        tspec = TargetedSpec(per_round=1, total=10)
        network, plane = targeted_plane(tspec)
        plane.observe_injection(0, 0, 0, deadline=32)
        messages = [
            rumor_message(dst=1),
            rumor_message(dst=1),  # second to dst 1: over per-round cap
            rumor_message(dst=2),
        ]
        outcome = route(network, 0, messages)
        assert len(outcome.lost_to_fault) == 2
        assert len(outcome.delivered) == 1
        assert plane.ledger.spent == 2
        assert plane.ledger.denied == 1
        assert plane.targeted_counts == {"drop": 2}

    def test_untracked_rumors_pass_untouched(self):
        network, plane = targeted_plane(TargetedSpec())
        plane.observe_injection(0, 0, 0, deadline=32)
        outcome = route(network, 0, [rumor_message(rid_src=5, rid_seq=5)])
        assert len(outcome.delivered) == 1
        assert plane.ledger.spent == 0

    def test_no_injection_means_fully_inert(self):
        network, plane = targeted_plane(TargetedSpec())
        outcome = route(network, 0, [rumor_message()])
        assert len(outcome.delivered) == 1
        assert plane.ledger.spent == 0
        assert sum(plane.counts.values()) == 0

    def test_delay_kind_holds_bounded_and_seed_keyed(self):
        tspec = TargetedSpec(kind="delay", hold=3, per_round=10, total=100)
        network_a, plane_a = targeted_plane(tspec, seed=7)
        network_b, plane_b = targeted_plane(tspec, seed=7)
        for plane in (plane_a, plane_b):
            plane.observe_injection(0, 0, 0, deadline=32)
        route(network_a, 0, [rumor_message(dst=d) for d in range(1, 5)])
        route(network_b, 0, [rumor_message(dst=d) for d in range(1, 5)])
        events_a = [e for e in plane_a.events if e.kind == "delay"]
        events_b = [e for e in plane_b.events if e.kind == "delay"]
        assert events_a == events_b
        assert events_a
        assert all(1 <= e.detail <= 3 for e in events_a)
        assert plane_a.pending_count() == 4

    def test_oblivious_fallthrough_composes(self):
        # Untracked traffic still faces the oblivious schedule.
        tspec = TargetedSpec()
        network, plane = targeted_plane(tspec, spec=FaultSpec(drop=1.0))
        plane.observe_injection(0, 0, 0, deadline=32)
        outcome = route(
            network,
            0,
            [rumor_message(dst=1), rumor_message(dst=2, rid_src=9, rid_seq=9)],
        )
        assert outcome.delivered == []
        # One targeted drop (budget spent), one oblivious drop (free).
        assert plane.ledger.spent == 1
        assert plane.counts["drop"] == 2
        assert plane.targeted_counts == {"drop": 1}

    def test_targeted_window_gates_policy(self):
        tspec = TargetedSpec(start_round=5, stop_round=10)
        network, plane = targeted_plane(tspec)
        plane.observe_injection(0, 0, 0, deadline=32)
        assert len(route(network, 0, [rumor_message()]).delivered) == 1
        assert len(route(network, 5, [rumor_message()]).delivered) == 0
        assert len(route(network, 10, [rumor_message()]).delivered) == 1
        assert plane.ledger.spent == 1

    def test_merge_targeted_folds_counts_and_ledger(self):
        tspec = TargetedSpec()
        _, mirror = targeted_plane(tspec, keep_events=False)
        network, worker = targeted_plane(tspec)
        worker.observe_injection(0, 0, 0, deadline=32)
        route(network, 0, [rumor_message(dst=1), rumor_message(dst=2)])
        mirror.observe_injection(0, 0, 0, deadline=32)
        mirror.merge_targeted(worker.targeted_summary())
        merged = mirror.targeted_summary()
        assert merged["counts"] == {"drop": 2}
        assert merged["budget"]["spent"] == 2
        assert merged["tracked"] == ["r0:0"]


class TestFaultEventPolicy:
    def test_policy_key_only_when_set(self):
        plain = FaultEvent(1, "drop", 0, 1, ServiceTags.PROXY, 0)
        assert "policy" not in plain.to_dict()
        attributed = FaultEvent(
            1, "drop", 0, 1, ServiceTags.PROXY, 0, "proxy-suppressor"
        )
        assert attributed.to_dict()["policy"] == "proxy-suppressor"

    def test_targeted_events_carry_policy(self):
        network, plane = targeted_plane(TargetedSpec())
        plane.observe_injection(0, 0, 0, deadline=32)
        route(network, 0, [rumor_message()])
        (event,) = plane.events
        assert event.policy == "proxy-suppressor"
        assert event.to_dict()["policy"] == "proxy-suppressor"


class TestTargetedTelemetry:
    def test_faults_counter_carries_policy_label(self):
        telemetry = Telemetry()
        network, plane = targeted_plane(TargetedSpec(), telemetry=telemetry)
        plane.observe_injection(0, 0, 0, deadline=32)
        route(network, 0, [rumor_message()])
        counter = telemetry.metrics.counter(
            "chaos.faults", kind="drop", stage="proxy", policy="proxy-suppressor"
        )
        assert counter.value == 1

    def test_fault_events_carry_budget_spent(self):
        from repro.obs.sink import CollectSink

        sink = CollectSink()
        telemetry = Telemetry(sinks=[sink])
        network, plane = targeted_plane(TargetedSpec(), telemetry=telemetry)
        plane.observe_injection(0, 0, 0, deadline=32)
        route(network, 0, [rumor_message(dst=1), rumor_message(dst=2)])
        drops = [e for e in sink.events if e.kind == "fault_drop"]
        assert [e.fields["budget_spent"] for e in drops] == [1, 2]
        assert all(e.fields["policy"] == "proxy-suppressor" for e in drops)

    def test_pending_gauge_tracks_delay_queue(self):
        telemetry = Telemetry()
        spec = FaultSpec(delay=1.0, max_delay=4)
        plane = ChaosFaultPlane(7, spec, 8, telemetry=telemetry)
        network = Network(8, fault_plane=plane)
        route(network, 0, [mk_message(src=0, dst=1)])
        route(network, 1, [])  # begin_round(1) publishes the queue depth
        gauge = telemetry.metrics.gauge("chaos.pending")
        # Set before round 1 releases matured copies: exactly the one
        # message delayed in round 0.
        assert gauge.value == 1
        histogram = telemetry.metrics.histogram("chaos.pending_depth")
        assert histogram.count == 2

    def test_no_telemetry_no_metrics(self):
        network, plane = targeted_plane(TargetedSpec())
        plane.observe_injection(0, 0, 0, deadline=32)
        route(network, 0, [rumor_message()])  # must not raise


class TestTargetedScenario:
    def run_record(self, **kwargs):
        scenario = targeted_scenario(**kwargs)
        return RunRecord.from_result(run_congos_scenario(scenario))

    def test_aware_run_spends_budget_and_stays_clean(self):
        record = self.run_record(
            n=16, rounds=160, seed=0, policy="collector-starver"
        )
        targeted = record.targeted
        assert targeted["policy"] == "collector-starver"
        assert targeted["budget"]["spent"] > 0
        assert targeted["tracked"]
        assert targeted["tracked_admissible"] > 0
        assert record.clean
        assert _ledger_ok(record)

    def test_blind_run_tracks_no_single_rumor(self):
        record = self.run_record(
            n=16, rounds=160, seed=0, policy="collector-starver", blind=True
        )
        assert record.targeted["blind"] is True
        assert record.targeted["tracked"] == []
        assert record.targeted["budget"]["spent"] > 0
        assert _ledger_ok(record)

    def test_round_trip_preserves_targeted(self):
        record = self.run_record(n=16, rounds=96, seed=1)
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.targeted == record.targeted

    def test_plain_runs_have_empty_targeted(self):
        from repro.harness.scenarios import chaos_scenario

        scenario = chaos_scenario(16, 60, seed=0, drop=0.1)
        record = RunRecord.from_result(run_congos_scenario(scenario))
        assert record.targeted == {}
        # The key is absent from plain payloads — pre-targeted cached
        # records and golden digests are byte-identical — and from_dict
        # restores the empty default.
        payload = record.to_dict()
        assert "targeted" not in payload
        assert RunRecord.from_dict(payload) == record

    def test_deadline_chaser_spends_after_grace(self):
        record = self.run_record(
            n=16, rounds=160, seed=0, policy="deadline-chaser"
        )
        assert record.targeted["budget"]["spent"] > 0
        assert _ledger_ok(record)

    def test_fallback_herder_needs_hardened_acks(self):
        vacuous = self.run_record(
            n=16, rounds=160, seed=0, policy="fallback-herder"
        )
        assert vacuous.targeted["budget"]["spent"] == 0
        armed = self.run_record(
            n=16, rounds=160, seed=0, policy="fallback-herder", hardened=True
        )
        assert armed.targeted["budget"]["spent"] > 0
        assert armed.targeted["counts"]["drop"] > 0

    def test_same_seed_same_record(self):
        first = self.run_record(n=16, rounds=96, seed=3)
        second = self.run_record(n=16, rounds=96, seed=3)
        assert first == second


class TestJobsInvariance:
    def test_serial_vs_pooled_records_identical(self):
        cells = targeted_cells(
            ["collector-starver"], [(2, 32)], [12], hardened=(False,),
            blind=(False, True),
        )
        serial = run_targeted_soak(cells, seeds=(0,), jobs=1, rounds=96)
        pooled = run_targeted_soak(cells, seeds=(0,), jobs=2, rounds=96)
        flat_serial = [
            run.without_profile() for cell in serial.cells for run in cell.runs
        ]
        flat_pooled = [
            run.without_profile() for cell in pooled.cells for run in cell.runs
        ]
        assert flat_serial == flat_pooled
        assert any(run.targeted["budget"]["spent"] > 0 for run in flat_serial)


class TestE19Harness:
    def test_cells_cover_the_matrix(self):
        cells = targeted_cells(
            ["proxy-suppressor", "collector-starver"],
            [(4, 64), (8, 128)],
            [16, 64],
        )
        # 2 policies x 2 budgets x 2 ns x 2 presets x 2 blind = 32
        assert len(cells) == 32
        assert all(
            set(cell) == {"policy", "per_round", "total", "n", "hardened", "blind"}
            for cell in cells
        )

    def test_payload_pairs_aware_with_blind(self):
        cells = targeted_cells(
            ["collector-starver"], [(2, 32)], [12], hardened=(False,)
        )
        sweep = run_targeted_soak(cells, seeds=(0,), jobs=1, rounds=160)
        payload = targeted_payload(sweep)
        assert payload["all_clean"]
        assert payload["all_ledgers_ok"]
        assert len(payload["cells"]) == 2
        (comparison,) = payload["comparisons"]
        assert comparison["policy"] == "collector-starver"
        assert comparison["targeted_spent"] > 0
        assert comparison["oblivious_spent"] > 0
        assert comparison["targeted_tracked_delivery"] is not None
