"""Tests for repro.core.config: protocol parameters."""

import math

import pytest

from repro.core.config import CongosParams, default_deadline_cap


class TestValidation:
    def test_defaults_valid(self):
        CongosParams()

    def test_tau_bounds(self):
        with pytest.raises(ValueError):
            CongosParams(tau=0)

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            CongosParams(gossip_schedule="psychic")

    def test_bad_pool(self):
        with pytest.raises(ValueError):
            CongosParams(gd_target_pool="everyone")

    def test_bad_fanout_scale(self):
        with pytest.raises(ValueError):
            CongosParams(fanout_scale=0)

    def test_bad_cap(self):
        with pytest.raises(ValueError):
            CongosParams(deadline_cap=2)


class TestDerived:
    def test_num_groups(self):
        assert CongosParams(tau=1).num_groups == 2
        assert CongosParams(tau=3).num_groups == 4

    def test_deadline_cap_default_formula(self):
        assert default_deadline_cap(64) == int(math.log2(64) ** 6)
        params = CongosParams()
        assert params.effective_deadline_cap(64) == default_deadline_cap(64)

    def test_deadline_cap_override(self):
        assert CongosParams(deadline_cap=256).effective_deadline_cap(64) == 256

    def test_partition_count_base(self):
        assert CongosParams().partition_count(64) == 6
        assert CongosParams().partition_count(100) == 7

    def test_partition_count_collusion(self):
        params = CongosParams(tau=3)
        assert params.partition_count(64) == 3 * 6

    def test_uptimes(self):
        params = CongosParams()
        assert params.proxy_uptime(64) == 16
        assert params.gd_uptime(64) == 42


class TestServiceFanout:
    def test_divided_by_collaborators(self):
        params = CongosParams(min_fanout=1)
        few = params.service_fanout(64, 256, collaborators=2)
        many = params.service_fanout(64, 256, collaborators=32)
        assert few > many

    def test_monotone_in_deadline(self):
        """Shorter deadlines demand more messages (the n^{C/sqrt(d)} term)."""
        params = CongosParams(min_fanout=1)
        short = params.service_fanout(64, 64, collaborators=8)
        long = params.service_fanout(64, 1024, collaborators=8)
        assert short >= long

    def test_minimum_enforced(self):
        params = CongosParams(min_fanout=3)
        assert params.service_fanout(8, 4096, collaborators=1000) >= 3

    def test_zero_collaborators_treated_as_one(self):
        params = CongosParams()
        assert params.service_fanout(16, 64, 0) == params.service_fanout(16, 64, 1)

    def test_invalid_dline(self):
        with pytest.raises(ValueError):
            CongosParams().service_fanout(16, 0, 1)


class TestCollusionDirect:
    def test_base_algorithm_never_direct(self):
        assert not CongosParams(tau=1).collusion_forces_direct(4)

    def test_huge_tau_forces_direct(self):
        assert CongosParams(tau=16).collusion_forces_direct(16)

    def test_factor_relaxes_threshold(self):
        strict = CongosParams(tau=2, collusion_direct_factor=1.0)
        relaxed = CongosParams(tau=2, collusion_direct_factor=8.0)
        assert strict.collusion_forces_direct(24)
        assert not relaxed.collusion_forces_direct(24)

    def test_paper_defaults_use_literal_constants(self):
        params = CongosParams.paper_defaults()
        assert params.fanout_exponent_constant == 48.0
        assert params.collusion_direct_factor == 1.0


class TestPresets:
    def test_paper_defaults_overridable(self):
        params = CongosParams.paper_defaults(tau=2)
        assert params.tau == 2
        assert params.fanout_exponent_constant == 48.0

    def test_lean_is_cheaper(self):
        lean = CongosParams.lean()
        default = CongosParams()
        assert lean.service_fanout(64, 64, 8) <= default.service_fanout(64, 64, 8)

    def test_with_tau(self):
        assert CongosParams().with_tau(4).tau == 4

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CongosParams().tau = 3  # type: ignore[misc]


class TestPresetRegistry:
    def test_registered_names(self):
        assert set(CongosParams.preset_names()) == {
            "default",
            "paper",
            "lean",
            "hardened",
        }

    def test_default_preset_is_the_constructor(self):
        assert CongosParams.preset("default") == CongosParams()

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(KeyError, match="hardened"):
            CongosParams.preset("turbo")

    def test_aliases_match_registry(self):
        assert CongosParams.paper_defaults() == CongosParams.preset("paper")
        assert CongosParams.lean() == CongosParams.preset("lean")
        assert CongosParams().hardened() == CongosParams.preset("hardened")

    def test_overrides_win(self):
        params = CongosParams.preset("hardened", direct_send_retries=5, tau=2)
        assert params.direct_send_retries == 5
        assert params.tau == 2
        assert params.direct_send_ack  # untouched preset field

    def test_hardened_includes_direct_send_knobs(self):
        params = CongosParams.preset("hardened")
        assert params.direct_send_retries == 3
        assert params.direct_send_ack
        assert params.direct_send_copies == 2
        assert params.proxy_retransmit == 2  # the pre-existing knobs too
        assert params.direct_send_reliable

    def test_default_is_not_reliable(self):
        assert not CongosParams().direct_send_reliable

    def test_each_knob_alone_turns_reliable_on(self):
        assert CongosParams(direct_send_retries=1).direct_send_reliable
        assert CongosParams(direct_send_ack=True).direct_send_reliable
        assert CongosParams(direct_send_copies=2).direct_send_reliable

    def test_new_knob_validation(self):
        with pytest.raises(ValueError):
            CongosParams(direct_send_retries=-1)
        with pytest.raises(ValueError):
            CongosParams(direct_send_copies=0)
