"""Tests for repro.core.partitions: bit and random partitions (Lemma 5/13)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partitions import (
    BitPartitions,
    RandomPartitions,
    property1_holds,
    property2_exact,
    property2_holds_for_set,
    property2_monte_carlo,
    property2_set_size,
)


class TestBitPartitions:
    def test_count_is_ceil_log2(self):
        assert BitPartitions(8).count == 3
        assert BitPartitions(9).count == 4
        assert BitPartitions(64).count == 6

    def test_two_groups(self):
        assert BitPartitions(8).num_groups == 2

    def test_group_of_matches_bits(self):
        partitions = BitPartitions(16)
        assert partitions.group_of(0, 5) == 1  # 5 = 0b0101
        assert partitions.group_of(1, 5) == 0
        assert partitions.group_of(2, 5) == 1

    def test_members_partition_everything(self):
        partitions = BitPartitions(10)
        for partition in range(partitions.count):
            zero = partitions.members(partition, 0)
            one = partitions.members(partition, 1)
            assert zero | one == frozenset(range(10))
            assert not zero & one

    def test_property1(self):
        for n in (2, 3, 7, 8, 9, 16, 33):
            assert property1_holds(BitPartitions(n))

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            BitPartitions(1)

    def test_lemma5_separation_exhaustive(self):
        """Lemma 5: any two distinct pids are separated by some partition."""
        partitions = BitPartitions(16)
        for p, q in itertools.combinations(range(16), 2):
            partition = partitions.separating_partition(p, q)
            assert partition is not None
            assert partitions.group_of(partition, p) != partitions.group_of(
                partition, q
            )

    def test_separating_partition_is_lowest_differing_bit(self):
        partitions = BitPartitions(16)
        assert partitions.separating_partition(0b0100, 0b0110) == 1

    def test_self_separation_none(self):
        assert BitPartitions(8).separating_partition(3, 3) is None

    def test_covering_partition(self):
        partitions = BitPartitions(8)
        assert partitions.covering_partition({0, 7}) is not None
        # All in group 0 of every partition: only pid 0 alive.
        assert partitions.covering_partition({0}) is None

    def test_assignment_tuple(self):
        partitions = BitPartitions(4)
        assert partitions.assignment(0) == (0, 1, 0, 1)


@given(
    n=st.integers(min_value=2, max_value=256),
    data=st.data(),
)
@settings(max_examples=80)
def test_lemma5_separation_property(n, data):
    p = data.draw(st.integers(min_value=0, max_value=n - 1))
    q = data.draw(st.integers(min_value=0, max_value=n - 1))
    partitions = BitPartitions(n)
    partition = partitions.separating_partition(p, q)
    if p == q:
        assert partition is None
    else:
        assert partition is not None
        assert partitions.group_of(partition, p) != partitions.group_of(partition, q)


class TestRandomPartitions:
    def test_generate_shape(self):
        partitions = RandomPartitions.generate(32, tau=2, rng=random.Random(0))
        assert partitions.num_groups == 3
        assert partitions.count >= 2
        assert property1_holds(partitions)

    def test_generate_count_override(self):
        partitions = RandomPartitions.generate(
            16, tau=2, rng=random.Random(0), count=7
        )
        assert partitions.count == 7

    def test_all_assignments_cover_all_groups(self):
        partitions = RandomPartitions.generate(24, tau=3, rng=random.Random(1))
        for partition in range(partitions.count):
            groups = set(partitions.assignment(partition))
            assert groups == set(range(4))

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            RandomPartitions.generate(3, tau=5, rng=random.Random(0))

    def test_explicit_assignments_validated(self):
        with pytest.raises(ValueError):
            RandomPartitions(4, [[0, 0, 0, 0]], num_groups=2)  # group 1 empty

    def test_assignment_length_checked(self):
        with pytest.raises(ValueError):
            RandomPartitions(4, [[0, 1]], num_groups=2)

    def test_deterministic_given_rng(self):
        a = RandomPartitions.generate(16, tau=2, rng=random.Random(9))
        b = RandomPartitions.generate(16, tau=2, rng=random.Random(9))
        assert all(
            a.assignment(p) == b.assignment(p) for p in range(a.count)
        )

    def test_fallback_for_hard_constraints(self):
        """num_groups == n forces the fallback seeding path."""
        partitions = RandomPartitions.generate(
            4, tau=3, rng=random.Random(0), max_attempts_per_partition=1
        )
        assert property1_holds(partitions)


class TestProperty2:
    def test_set_size_threshold(self):
        assert property2_set_size(64, tau=2) == 24
        assert property2_set_size(64, tau=2, c_prime=0.5) == 12

    def test_holds_for_full_set(self):
        partitions = RandomPartitions.generate(16, tau=2, rng=random.Random(0))
        assert property2_holds_for_set(partitions, range(16))

    def test_fails_for_tiny_set(self):
        partitions = RandomPartitions.generate(16, tau=2, rng=random.Random(0))
        # A single process can never hit 3 groups.
        assert not property2_holds_for_set(partitions, [0])

    def test_exact_small(self):
        partitions = RandomPartitions.generate(
            10, tau=1, rng=random.Random(3), count=8
        )
        verdict = property2_exact(partitions, set_size=6)
        assert verdict is True

    def test_exact_bails_out_when_too_large(self):
        partitions = RandomPartitions.generate(64, tau=2, rng=random.Random(0))
        assert property2_exact(partitions, set_size=24, limit=10) is None

    def test_monte_carlo_high_success(self):
        partitions = RandomPartitions.generate(64, tau=2, rng=random.Random(0))
        size = property2_set_size(64, tau=2)
        satisfied, trials = property2_monte_carlo(
            partitions, size, trials=200, rng=random.Random(1)
        )
        assert trials == 200
        assert satisfied / trials >= 0.99

    def test_monte_carlo_oversized_set_rejected(self):
        partitions = RandomPartitions.generate(8, tau=1, rng=random.Random(0))
        with pytest.raises(ValueError):
            property2_monte_carlo(partitions, 9, 10, random.Random(0))


class TestPartitionSetValidation:
    def test_members_out_of_range(self):
        partitions = BitPartitions(8)
        with pytest.raises(IndexError):
            partitions.members(99, 0)
        with pytest.raises(IndexError):
            partitions.members(0, 2)

    def test_members_cached(self):
        partitions = BitPartitions(8)
        assert partitions.members(0, 0) is partitions.members(0, 0)
