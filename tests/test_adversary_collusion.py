"""Tests for repro.adversary.collusion: coalition selection and covers."""

import random

import pytest

from repro.adversary.collusion import (
    GreedyCoalition,
    StaticRandomCoalition,
    min_cover_size,
)
from repro.gossip.rumor import RumorId

RID = RumorId(0, 0)


class TestMinCoverSize:
    def test_single_holder_per_group(self):
        holders = {(0, 0): {1}, (0, 1): {2}}
        assert min_cover_size(holders, 0, 2) == 2

    def test_shared_holder_reduces_cover(self):
        holders = {(0, 0): {1}, (0, 1): {1}}
        assert min_cover_size(holders, 0, 2) == 1

    def test_missing_group_means_uncoverable(self):
        holders = {(0, 0): {1}}
        assert min_cover_size(holders, 0, 2) is None

    def test_finds_optimal_over_greedy_trap(self):
        # Greedy would pick 9 (covers groups 0,1) then need 2 more; the
        # optimum is {7, 8} wait -- construct a case where one process
        # covers two groups but the optimum uses two others covering all 3.
        holders = {
            (0, 0): {9, 1},
            (0, 1): {9, 2},
            (0, 2): {3},
        }
        assert min_cover_size(holders, 0, 3) == 2  # {9, 3}

    def test_exact_on_harder_instance(self):
        holders = {
            (0, 0): {1, 2},
            (0, 1): {2, 3},
            (0, 2): {3, 4},
            (0, 3): {4, 1},
        }
        assert min_cover_size(holders, 0, 4) == 2  # {2, 4} or {1, 3}


class TestStaticRandomCoalition:
    def test_size_bounded_by_tau(self):
        strategy = StaticRandomCoalition(random.Random(0))
        coalition = strategy.select(RID, frozenset(range(10)), {}, 3, 2, tau=4)
        assert len(coalition) == 4
        assert coalition <= set(range(10))

    def test_small_outsider_pool(self):
        strategy = StaticRandomCoalition(random.Random(0))
        coalition = strategy.select(RID, frozenset({7}), {}, 3, 2, tau=4)
        assert coalition == {7}


class TestGreedyCoalition:
    def test_takes_full_cover_when_affordable(self):
        strategy = GreedyCoalition()
        holders = {(1, 0): {4}, (1, 1): {5}}
        coalition = strategy.select(
            RID, frozenset({4, 5, 6}), holders, num_partitions=2, num_groups=2, tau=2
        )
        assert coalition == {4, 5}

    def test_prefers_any_complete_partition(self):
        strategy = GreedyCoalition()
        holders = {
            (0, 0): {4},
            # partition 0 group 1 never leaked
            (1, 0): {6},
            (1, 1): {7},
        }
        coalition = strategy.select(
            RID, frozenset({4, 6, 7}), holders, num_partitions=2, num_groups=2, tau=2
        )
        assert coalition == {6, 7}

    def test_partial_coverage_fallback(self):
        strategy = GreedyCoalition()
        holders = {(0, 0): {4}}
        coalition = strategy.select(
            RID, frozenset({4, 5}), holders, num_partitions=1, num_groups=2, tau=1
        )
        assert coalition == {4}

    def test_respects_tau(self):
        strategy = GreedyCoalition()
        holders = {(0, g): {10 + g} for g in range(4)}
        coalition = strategy.select(
            RID, frozenset(range(10, 14)), holders, num_partitions=1, num_groups=4, tau=2
        )
        assert len(coalition) <= 2

    def test_shared_holder_cover_within_budget(self):
        strategy = GreedyCoalition()
        holders = {(0, 0): {9}, (0, 1): {9}, (0, 2): {3}}
        coalition = strategy.select(
            RID, frozenset({9, 3}), holders, num_partitions=1, num_groups=3, tau=2
        )
        assert coalition == {9, 3}
