"""Tests for repro.analysis.sweeps: grid sweeps across seeds."""

import pytest

from repro.analysis.sweeps import CellResult, SweepResult, grid, sweep_congos
from repro.core.config import CongosParams
from repro.harness.scenarios import steady_scenario


class TestGrid:
    def test_cartesian_product(self):
        cells = grid(n=[8, 16], deadline=[64, 128])
        assert len(cells) == 4
        assert {"n": 8, "deadline": 64} in cells

    def test_single_axis(self):
        assert grid(n=[8]) == [{"n": 8}]

    def test_deterministic_order(self):
        assert grid(b=[1, 2], a=[3]) == [{"a": 3, "b": 1}, {"a": 3, "b": 2}]


@pytest.fixture(scope="module")
def small_sweep():
    return sweep_congos(
        steady_scenario,
        grid(n=[8], deadline=[64]),
        seeds=(0, 1),
        rounds=260,
        params=CongosParams.lean(),
    )


class TestSweepCongos:
    def test_cell_count(self, small_sweep):
        assert len(small_sweep.cells) == 1
        assert small_sweep.cells[0].seeds == 2

    def test_invariant_aggregates(self, small_sweep):
        assert small_sweep.all_satisfied()
        assert small_sweep.all_clean()

    def test_peak_summary(self, small_sweep):
        summary = small_sweep.cells[0].peak_summary()
        assert summary.count == 2
        assert summary.maximum >= summary.mean >= summary.minimum > 0

    def test_fallback_rate_small_fault_free(self, small_sweep):
        # lean() params shave the substrate fanout to the bone, so the
        # w.h.p. pipeline may occasionally miss and the probability-1
        # fallback serves the stragglers; it must stay rare.
        assert small_sweep.cells[0].fallback_rate() < 0.05

    def test_latency_summary_positive(self, small_sweep):
        assert small_sweep.cells[0].latency_summary().mean > 0

    def test_table(self, small_sweep):
        headers = small_sweep.table_headers()
        rows = small_sweep.table_rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(headers)
        assert "qod" in headers

    def test_series_projection(self, small_sweep):
        series = small_sweep.series("n", lambda c: c.peak_summary().mean)
        assert series[0][0] == 8
        assert series[0][1] > 0


class TestMultiCell:
    def test_two_cells(self):
        result = sweep_congos(
            steady_scenario,
            grid(n=[8, 12]),
            seeds=(0,),
            rounds=260,
            deadline=64,
            params=CongosParams.lean(),
        )
        assert len(result.cells) == 2
        peaks = [cell.peak_summary().mean for cell in result.cells]
        assert peaks[1] > peaks[0]  # more processes, more traffic
