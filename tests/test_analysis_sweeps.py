"""Tests for repro.analysis.sweeps: grid sweeps across seeds."""

import pytest

from repro.analysis.sweeps import CellResult, SweepResult, grid, sweep_congos
from repro.core.config import CongosParams
from repro.exec.cache import ResultCache
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.harness.scenarios import steady_scenario


class TestGrid:
    def test_cartesian_product(self):
        cells = grid(n=[8, 16], deadline=[64, 128])
        assert len(cells) == 4
        assert {"n": 8, "deadline": 64} in cells

    def test_single_axis(self):
        assert grid(n=[8]) == [{"n": 8}]

    def test_deterministic_order(self):
        assert grid(b=[1, 2], a=[3]) == [{"a": 3, "b": 1}, {"a": 3, "b": 2}]


@pytest.fixture(scope="module")
def small_sweep():
    return sweep_congos(
        steady_scenario,
        grid(n=[8], deadline=[64]),
        seeds=(0, 1),
        rounds=260,
        params=CongosParams.lean(),
    )


class TestSweepCongos:
    def test_cell_count(self, small_sweep):
        assert len(small_sweep.cells) == 1
        assert small_sweep.cells[0].seeds == 2

    def test_invariant_aggregates(self, small_sweep):
        assert small_sweep.all_satisfied()
        assert small_sweep.all_clean()

    def test_peak_summary(self, small_sweep):
        summary = small_sweep.cells[0].peak_summary()
        assert summary.count == 2
        assert summary.maximum >= summary.mean >= summary.minimum > 0

    def test_fallback_rate_small_fault_free(self, small_sweep):
        # lean() params shave the substrate fanout to the bone, so the
        # w.h.p. pipeline may occasionally miss and the probability-1
        # fallback serves the stragglers; it must stay rare.
        assert small_sweep.cells[0].fallback_rate() < 0.05

    def test_latency_summary_positive(self, small_sweep):
        assert small_sweep.cells[0].latency_summary().mean > 0

    def test_table(self, small_sweep):
        headers = small_sweep.table_headers()
        rows = small_sweep.table_rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(headers)
        assert "qod" in headers

    def test_series_projection(self, small_sweep):
        series = small_sweep.series("n", lambda c: c.peak_summary().mean)
        assert series[0][0] == 8
        assert series[0][1] > 0


class TestMultiCell:
    def test_two_cells(self):
        result = sweep_congos(
            steady_scenario,
            grid(n=[8, 12]),
            seeds=(0,),
            rounds=260,
            deadline=64,
            params=CongosParams.lean(),
        )
        assert len(result.cells) == 2
        peaks = [cell.peak_summary().mean for cell in result.cells]
        assert peaks[1] > peaks[0]  # more processes, more traffic


def empty_latency_record(seed=0):
    return RunRecord(
        scenario="steady",
        n=8,
        rounds=100,
        seed=seed,
        peak=5,
        total=20,
        total_size=20,
        mean_per_round=0.2,
        filtered=0,
        qod_satisfied=True,
        paths={},
        latencies=(),
    )


class TestLatencySummary:
    def test_zero_latencies_yield_none_not_a_fake_sample(self):
        cell = CellResult(cell={"n": 8}, runs=[empty_latency_record()])
        assert cell.latency_summary() is None

    def test_table_renders_dash_for_missing_latency(self):
        sweep = SweepResult(
            cells=[CellResult(cell={"n": 8}, runs=[empty_latency_record()])]
        )
        headers = sweep.table_headers()
        row = sweep.table_rows()[0]
        assert "latency" in headers
        assert row[headers.index("latency")] == "-"

    def test_nonempty_latencies_still_summarized(self, small_sweep):
        summary = small_sweep.cells[0].latency_summary()
        assert summary is not None
        assert summary.count == len(
            [
                latency
                for run in small_sweep.cells[0].runs
                for latency in run.latencies
            ]
        )


class TestParallelSweep:
    """The ISSUE-1 acceptance check: pooled == serial, resume re-runs
    only what is missing."""

    GRID = {"n": [8, 12], "deadline": [64]}

    def run_sweep(self, jobs, cache=None, resume=True, progress=None):
        return sweep_congos(
            "steady",
            grid(**self.GRID),
            seeds=(0, 1),
            jobs=jobs,
            cache=cache,
            resume=resume,
            progress=progress,
            rounds=260,
            params=CongosParams.lean(),
        )

    def test_jobs4_bit_identical_to_serial(self):
        serial = self.run_sweep(jobs=1)
        pooled = self.run_sweep(jobs=4)
        assert pooled.table_rows() == serial.table_rows()
        for cell_a, cell_b in zip(serial.cells, pooled.cells):
            # strip nondeterministic profiling (wall_time, worker_pid)
            assert [r.without_profile().to_dict() for r in cell_a.runs] == [
                r.without_profile().to_dict() for r in cell_b.runs
            ]

    def test_interrupted_sweep_resumes_missing_cells_only(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cells = grid(**self.GRID)

        # "interrupted": only the first cell's replicates completed
        first = Progress(total=2)
        sweep_congos(
            "steady",
            cells[:1],
            seeds=(0, 1),
            jobs=1,
            cache=cache,
            progress=first,
            rounds=260,
            params=CongosParams.lean(),
        )
        assert first.executed == 2

        # resume the full grid: only the missing cell runs
        resumed_progress = Progress(total=4)
        resumed = self.run_sweep(
            jobs=1, cache=cache, progress=resumed_progress
        )
        assert resumed_progress.done == 4
        assert resumed_progress.cached == 2
        assert resumed_progress.executed == 2  # the one missing cell x 2 seeds

        # and the merged result matches a from-scratch serial sweep
        fresh = self.run_sweep(jobs=1)
        assert resumed.table_rows() == fresh.table_rows()
