"""Tests for repro.exec.progress: throughput reporting and final-line dedup."""

import io

import pytest

from repro.exec.progress import Progress


class TestAccounting:
    def test_counts_done_cached_executed(self):
        progress = Progress(total=3)
        progress.task_done()
        progress.task_done(cached=True)
        assert progress.done == 2
        assert progress.cached == 1
        assert progress.executed == 1

    def test_task_seconds_accumulate(self):
        progress = Progress(total=2)
        progress.task_done(wall_time=0.5)
        progress.task_done(wall_time=1.25)
        assert progress.task_seconds == pytest.approx(1.75)
        assert "task time 1.8s" in progress.render()

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            Progress(total=-1)


class TestRender:
    def test_render_mentions_counts(self):
        progress = Progress(total=4, label="sweep")
        progress.task_done()
        line = progress.render()
        assert line.startswith("sweep: 1/4 tasks")
        assert "25%" in line

    def test_zero_total_renders_without_percent(self):
        # An empty sweep must not divide by zero.
        line = Progress(total=0).render()
        assert "0/0 tasks" in line
        assert "%" not in line

    def test_cached_shown_only_when_nonzero(self):
        progress = Progress(total=2)
        progress.task_done()
        assert "cached" not in progress.render()
        progress.task_done(cached=True)
        assert "1 cached" in progress.render()


class TestStreamOutput:
    def test_final_line_printed_exactly_once(self):
        # The last task_done reports 2/2; finish() must not repeat it.
        stream = io.StringIO()
        progress = Progress(total=2, stream=stream, min_interval=0.0)
        progress.task_done()
        progress.task_done()
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert sum(1 for line in lines if "2/2 tasks" in line) == 1

    def test_finish_prints_when_rate_limit_suppressed_the_last_task(self):
        stream = io.StringIO()
        progress = Progress(total=3, stream=stream, min_interval=3600.0)
        progress.task_done()  # first report always fires
        progress.task_done()  # suppressed: not final, interval not elapsed
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "1/3 tasks" in lines[0]
        progress.finish()  # must report the suppressed 2/3 state
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "2/3 tasks" in lines[1]

    def test_completing_task_always_reports(self):
        # done == total bypasses the rate limit.
        stream = io.StringIO()
        progress = Progress(total=1, stream=stream, min_interval=3600.0)
        progress.task_done()
        assert "1/1 tasks" in stream.getvalue()
        progress.finish()
        assert len(stream.getvalue().splitlines()) == 1

    def test_silent_without_stream(self):
        progress = Progress(total=1)
        progress.task_done()
        line = progress.finish()  # returns the line even when not printing
        assert "1/1 tasks" in line
