"""The optional-dependency contract of the ``repro[fast]`` extra.

Tier-1 (and every core import surface) must work without numpy; only
actually selecting ``engine="array"`` may require it — and when it does,
the error must name the extra to install.  These tests simulate a
numpy-less environment (``sys.modules["numpy"] = None`` makes the import
fail) even on machines where numpy is installed.
"""

import dataclasses
import subprocess
import sys

import pytest

import repro
from repro.fastcore import numpy_available, require_numpy
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario

_SRC = repro.__file__.rsplit("repro", 1)[0].rstrip("/\\")


class TestWithoutNumpy:
    def test_availability_probe(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert not numpy_available()

    def test_require_numpy_names_the_extra(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ImportError, match=r"pip install repro\[fast\]"):
            require_numpy()

    def test_array_engine_raises_import_error(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        scenario = dataclasses.replace(
            steady_scenario(n=8, rounds=32, seed=0, deadline=64),
            engine="array",
        )
        with pytest.raises(ImportError, match=r"repro\[fast\]"):
            run_congos_scenario(scenario)

    def test_object_engine_unaffected(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        result = run_congos_scenario(
            steady_scenario(n=8, rounds=96, seed=0, deadline=64)
        )
        assert result.qod.satisfied

    def test_core_surfaces_import_cleanly(self):
        # Fresh interpreter with numpy import-blocked: the api, CLI, perf
        # registry and exec layers must all come up, and the fastcore
        # microbench cases must simply be absent (registry intact).
        code = (
            "import sys; sys.modules['numpy'] = None; "
            "sys.path.insert(0, {src!r}); "
            "import repro.api, repro.load.soak; "
            "from repro.harness.cli import build_parser; build_parser(); "
            "from repro.perf import case_keys; keys = case_keys(); "
            "assert len(keys) >= 8, keys; "
            "assert not any(k.startswith('fastcore') for k in keys), keys; "
            "from repro.exec.tasks import RunSpec; "
            "RunSpec.make('steady', seed=0, n=8).key; "
            "print('ok')"
        ).format(src=_SRC)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_numpy_gated_suites_would_skip(self, monkeypatch):
        # The fastcore test modules gate on importorskip("numpy"): with
        # numpy blocked, collection must skip rather than error.
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(pytest.skip.Exception):
            pytest.importorskip("numpy")


class TestWithNumpy:
    def test_require_numpy_returns_module(self):
        np = pytest.importorskip("numpy")
        assert require_numpy() is np
        assert numpy_available()
