"""Tests for repro.core.extensions: Section-7 metadata mitigations."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.extensions import (
    REAL_MARKER,
    CoverTrafficWorkload,
    expand_destination_hiding,
    extract_hidden_payload,
    is_cover_rumor,
    pseudonymize_rid,
)
from repro.gossip.rumor import RumorId

from conftest import mk_rumor


class TestPseudonymizeRid:
    def test_deterministic(self):
        rid = RumorId(3, 17)
        assert pseudonymize_rid(rid, b"k") == pseudonymize_rid(rid, b"k")

    def test_differs_by_secret(self):
        rid = RumorId(3, 17)
        assert pseudonymize_rid(rid, b"k1") != pseudonymize_rid(rid, b"k2")

    def test_differs_by_seq(self):
        assert pseudonymize_rid(RumorId(3, 1), b"k") != pseudonymize_rid(
            RumorId(3, 2), b"k"
        )

    def test_source_preserved(self):
        assert pseudonymize_rid(RumorId(3, 1), b"k").src == 3

    def test_unlinkable_sequences(self):
        """Consecutive pseudonyms are not consecutive integers."""
        tokens = [pseudonymize_rid(RumorId(0, i), b"k").seq for i in range(10)]
        gaps = {b - a for a, b in zip(tokens, tokens[1:])}
        assert gaps != {1}


class TestDestinationHiding:
    def test_creates_n_minus_one_rumors(self):
        rumor = mk_rumor(src=2, dest=(1, 5))
        expanded = expand_destination_hiding(rumor, 8, random.Random(0))
        assert len(expanded) == 7  # everyone but the source

    def test_each_single_destination(self):
        rumor = mk_rumor(dest=(1, 5))
        for sub in expand_destination_hiding(rumor, 8, random.Random(0)):
            assert len(sub.dest) == 1

    def test_real_recipients_can_extract(self):
        rumor = mk_rumor(data=b"the-truth", dest=(1, 5))
        expanded = expand_destination_hiding(rumor, 8, random.Random(0))
        for sub in expanded:
            (dst,) = sub.dest
            payload = extract_hidden_payload(sub.data)
            if dst in rumor.dest:
                assert payload == b"the-truth"
            else:
                assert payload is None

    def test_chaff_same_length_as_real(self):
        """Indistinguishable by size: chaff matches the wrapped length."""
        rumor = mk_rumor(data=b"the-truth", dest=(1,))
        expanded = expand_destination_hiding(rumor, 8, random.Random(0))
        lengths = {len(sub.data) for sub in expanded}
        assert len(lengths) == 1

    def test_deadlines_preserved(self):
        rumor = mk_rumor(deadline=100, dest=(1,))
        for sub in expand_destination_hiding(rumor, 4, random.Random(0)):
            assert sub.deadline == 100

    def test_sub_rids_distinct(self):
        rumor = mk_rumor(dest=(1,))
        expanded = expand_destination_hiding(rumor, 8, random.Random(0))
        assert len({sub.rid for sub in expanded}) == len(expanded)


@given(data=st.binary(min_size=0, max_size=64))
def test_extract_roundtrip_property(data):
    assert extract_hidden_payload(REAL_MARKER + data) == data


class TestCoverTraffic:
    def _view(self, n=8, round_no=0):
        class FakeView:
            def __init__(self):
                self.round = round_no
                self.n = n

            def is_alive(self, pid):
                return True

        return FakeView()

    def test_injects_at_period(self):
        workload = CoverTrafficWorkload(8, random.Random(0), rate=2, period=4)
        decision = workload.round_start(self._view(round_no=0))
        assert len(decision.injections) == 2
        decision = workload.round_start(self._view(round_no=1))
        assert decision.injections == []

    def test_cover_rumors_flagged(self):
        workload = CoverTrafficWorkload(8, random.Random(0))
        decision = workload.round_start(self._view())
        for _, rumor in decision.injections:
            assert is_cover_rumor(rumor)

    def test_real_rumors_not_flagged(self):
        assert not is_cover_rumor(mk_rumor())

    def test_restricted_sources(self):
        workload = CoverTrafficWorkload(
            8, random.Random(0), rate=8, sources=[2, 3]
        )
        decision = workload.round_start(self._view())
        assert {pid for pid, _ in decision.injections} <= {2, 3}

    def test_window_respected(self):
        workload = CoverTrafficWorkload(
            8, random.Random(0), start_round=10, stop_round=20
        )
        assert workload.round_start(self._view(round_no=5)).injections == []
        assert workload.round_start(self._view(round_no=25)).injections == []
