"""Tests for the single-instance confidential broadcast API."""

import pytest

from repro.adversary.random_crash import CrashOnceAdversary
from repro.core.config import CongosParams
from repro.harness.oneshot import confidential_broadcast


class TestHappyPath:
    def test_delivers_to_all_destinations(self):
        result = confidential_broadcast(
            n=8, source=0, data=b"payload", dest={2, 5}, deadline=64, seed=1
        )
        assert result.ok
        assert set(result.delivered) == {2, 5}
        assert result.missed == []
        assert result.leak_free

    def test_delivery_within_deadline(self):
        result = confidential_broadcast(
            n=8, source=0, data=b"payload", dest={3}, deadline=64, seed=2
        )
        inject_at = result.rounds_executed - 64 - 2
        assert result.delivered[3] <= inject_at + 64

    def test_pipeline_used(self):
        result = confidential_broadcast(
            n=8, source=0, data=b"payload", dest={3, 6}, deadline=64, seed=3
        )
        assert set(result.paths.values()) == {"reassembled"}

    def test_short_deadline_direct(self):
        result = confidential_broadcast(
            n=8, source=0, data=b"payload", dest={3}, deadline=8, seed=0
        )
        assert result.ok
        assert result.paths[3] == "direct"

    def test_no_single_outsider_can_reconstruct(self):
        result = confidential_broadcast(
            n=8, source=0, data=b"payload", dest={3}, deadline=64, seed=4
        )
        assert (
            result.min_reconstructing_coalition is None
            or result.min_reconstructing_coalition >= 2
        )

    def test_collusion_params(self):
        result = confidential_broadcast(
            n=12,
            source=0,
            data=b"payload",
            dest={3, 7},
            deadline=64,
            seed=5,
            params=CongosParams(tau=2),
        )
        assert result.ok
        assert (
            result.min_reconstructing_coalition is None
            or result.min_reconstructing_coalition >= 3
        )


class TestFaulty:
    def test_crashed_destination_excused(self):
        # Destination 3 dies right after injection and never returns.
        faults = CrashOnceAdversary([3], crash_round=70)
        result = confidential_broadcast(
            n=8,
            source=0,
            data=b"payload",
            dest={3, 5},
            deadline=64,
            seed=6,
            warmup=64,
            faults=faults,
        )
        assert result.on_time  # QoD judged on admissible pairs only
        assert 5 in result.delivered
        assert 3 not in result.missed

    def test_validation(self):
        with pytest.raises(ValueError):
            confidential_broadcast(n=4, source=9, data=b"x", dest={1})
        with pytest.raises(ValueError):
            confidential_broadcast(n=4, source=0, data=b"x", dest={9})
