"""Tests for the graceful-degradation knobs: defaults reproduce the
paper-exact behavior bit for bit, hardened mode stays correct and clean."""

import pytest

from repro.core.config import CongosParams
from repro.core.confidential_gossip import CachedRumor
from repro.gossip.continuous import _backoff_due
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import chaos_scenario, steady_scenario

from conftest import mk_rumor


class TestParams:
    def test_defaults_are_paper_exact(self):
        params = CongosParams()
        assert params.proxy_retransmit == 0
        assert params.gd_redundancy == 1
        assert params.fallback_early_fraction == 1.0
        assert params.gossip_resend_backoff is False

    def test_hardened_preset(self):
        hardened = CongosParams().hardened()
        assert hardened.proxy_retransmit == 2
        assert hardened.gd_redundancy == 2
        assert hardened.fallback_early_fraction == 0.75
        assert hardened.gossip_resend_backoff is True

    def test_hardened_accepts_overrides(self):
        hardened = CongosParams().hardened(proxy_retransmit=5)
        assert hardened.proxy_retransmit == 5
        assert hardened.gd_redundancy == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CongosParams(proxy_retransmit=-1)
        with pytest.raises(ValueError):
            CongosParams(gd_redundancy=0)
        with pytest.raises(ValueError):
            CongosParams(fallback_early_fraction=0.0)
        with pytest.raises(ValueError):
            CongosParams(fallback_early_fraction=1.5)


class TestEarlyFallback:
    def cached(self, fraction, deadline=64, injected_at=10):
        return CachedRumor(
            rumor=mk_rumor(deadline=deadline),
            dline=64,
            injected_at=injected_at,
            fallback_fraction=fraction,
        )

    def test_default_fraction_is_deadline_exact(self):
        assert self.cached(1.0).fallback_round == 10 + 64

    def test_early_fraction_shoots_sooner(self):
        assert self.cached(0.75).fallback_round == 10 + 48

    def test_fraction_rounds_up_and_stays_positive(self):
        assert self.cached(0.5, deadline=3).fallback_round == 10 + 2
        assert self.cached(0.01, deadline=3).fallback_round == 10 + 1


class TestResendBackoff:
    def test_power_of_two_offsets_past_horizon(self):
        horizon = 8
        due = [age for age in range(9, 40) if _backoff_due(age, horizon)]
        assert due == [9, 10, 12, 16, 24, 40][: len(due)]

    def test_never_due_within_horizon(self):
        assert not any(_backoff_due(age, 8) for age in range(0, 9))


class TestDefaultPathBitIdentity:
    def test_explicit_defaults_match_implicit(self):
        # Guards against drift: spelling the degradation knobs out at
        # their defaults must reproduce the exact same run.
        implicit = run_congos_scenario(steady_scenario(8, 120, 0, deadline=16))
        explicit = run_congos_scenario(
            steady_scenario(
                8, 120, 0, deadline=16,
                params=CongosParams(
                    proxy_retransmit=0,
                    gd_redundancy=1,
                    fallback_early_fraction=1.0,
                    gossip_resend_backoff=False,
                ),
            )
        )
        assert implicit.summary() == explicit.summary()


class TestHardenedRuns:
    def test_hardened_reliable_run_stays_correct(self):
        default = run_congos_scenario(steady_scenario(8, 120, 0, deadline=16))
        hardened = run_congos_scenario(
            steady_scenario(
                8, 120, 0, deadline=16, params=CongosParams().hardened()
            )
        )
        assert hardened.qod.satisfied
        assert hardened.confidentiality.is_clean()
        # Redundancy costs messages; it must never cost correctness.
        assert hardened.stats.total >= default.stats.total

    def test_hardened_chaos_run_stays_clean(self):
        result = run_congos_scenario(
            chaos_scenario(8, 60, seed=1, deadline=16, drop=0.3, hardened=True)
        )
        assert result.confidentiality.is_clean()
        assert result.fault_plane.counts["drop"] > 0
