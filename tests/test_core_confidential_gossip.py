"""Unit tests for the ConfidentialGossip coordinator (Figure 8 logic)."""

import random

import pytest

from repro.core.confidential_gossip import ConfidentialGossipCoordinator
from repro.core.config import CongosParams
from repro.core.group_distribution import DistributionShare
from repro.core.partitions import BitPartitions
from repro.core.splitting import split_rumor
from repro.sim.messages import ServiceTags

from conftest import mk_message, mk_rumor


def make_coordinator(pid=0, n=8, deliveries=None):
    params = CongosParams()
    partitions = BitPartitions(n)
    callback = None
    if deliveries is not None:
        callback = lambda p, r, rid, data, path: deliveries.append(
            (p, r, rid, data, path)
        )
    return ConfidentialGossipCoordinator(pid, n, params, partitions, callback)


def share(dline, partition, group, entries, sender=1):
    return DistributionShare(
        sender=sender,
        dline=dline,
        partition=partition,
        group=group,
        hits=frozenset(entries),
    )


class TestDeliverLocal:
    def test_records_and_notifies(self):
        deliveries = []
        coordinator = make_coordinator(deliveries=deliveries)
        rumor = mk_rumor()
        coordinator.deliver_local(5, rumor.rid, rumor.data, "local")
        assert coordinator.delivered() == {rumor.rid: rumor.data}
        assert deliveries == [(0, 5, rumor.rid, rumor.data, "local")]

    def test_idempotent(self):
        deliveries = []
        coordinator = make_coordinator(deliveries=deliveries)
        rumor = mk_rumor()
        coordinator.deliver_local(5, rumor.rid, rumor.data, "local")
        coordinator.deliver_local(6, rumor.rid, rumor.data, "shoot")
        assert len(deliveries) == 1
        assert coordinator.deliveries[rumor.rid].path == "local"


class TestReassembly:
    def test_complete_partition_reassembles(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(data=b"classified")
        fragments = split_rumor(rumor, 0, 2, random.Random(0), 64, 100)
        coordinator.on_fragment(10, fragments[0])
        assert rumor.rid not in coordinator.delivered()
        coordinator.on_fragment(11, fragments[1])
        assert coordinator.delivered()[rumor.rid] == b"classified"
        assert coordinator.reassemblies == 1

    def test_duplicate_fragment_ignored(self):
        coordinator = make_coordinator()
        rumor = mk_rumor()
        fragments = split_rumor(rumor, 0, 2, random.Random(0), 64, 100)
        coordinator.on_fragment(10, fragments[0])
        coordinator.on_fragment(11, fragments[0])
        assert rumor.rid not in coordinator.delivered()

    def test_fragments_across_partitions_do_not_mix(self):
        coordinator = make_coordinator()
        rumor = mk_rumor()
        rng = random.Random(0)
        p0 = split_rumor(rumor, 0, 2, rng, 64, 100)
        p1 = split_rumor(rumor, 1, 2, rng, 64, 100)
        coordinator.on_fragment(10, p0[0])
        coordinator.on_fragment(11, p1[1])
        assert rumor.rid not in coordinator.delivered()


class TestConfirmation:
    def test_confirms_when_all_groups_cover(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1, 2))
        coordinator.register(0, rumor, dline=64)
        entries = {(1, rumor.rid), (2, rumor.rid)}
        coordinator.on_distribution_share(10, share(64, 2, 0, entries))
        coordinator.on_distribution_share(10, share(64, 2, 1, entries))
        coordinator.end_round(10)
        assert coordinator.is_confirmed(rumor.rid)
        assert coordinator.confirmations == 1

    def test_partial_coverage_does_not_confirm(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1, 2))
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(
            10, share(64, 0, 0, {(1, rumor.rid), (2, rumor.rid)})
        )
        coordinator.on_distribution_share(10, share(64, 0, 1, {(1, rumor.rid)}))
        coordinator.end_round(10)
        assert not coordinator.is_confirmed(rumor.rid)

    def test_coverage_must_be_same_partition(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1,))
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(10, share(64, 0, 0, {(1, rumor.rid)}))
        coordinator.on_distribution_share(10, share(64, 1, 1, {(1, rumor.rid)}))
        coordinator.end_round(10)
        assert not coordinator.is_confirmed(rumor.rid)

    def test_wrong_dline_does_not_confirm(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1,))
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(10, share(128, 0, 0, {(1, rumor.rid)}))
        coordinator.on_distribution_share(10, share(128, 0, 1, {(1, rumor.rid)}))
        coordinator.end_round(10)
        assert not coordinator.is_confirmed(rumor.rid)

    def test_confirmed_rumor_not_shot(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1,), deadline=64)
        coordinator.register(0, rumor, dline=64)
        entries = {(1, rumor.rid)}
        coordinator.on_distribution_share(5, share(64, 0, 0, entries))
        coordinator.on_distribution_share(5, share(64, 0, 1, entries))
        messages = coordinator.send_phase(64)  # the deadline round
        assert messages == []
        assert coordinator.fallbacks == 0


class TestFallback:
    def test_shoot_at_deadline(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1, 3), deadline=64)
        coordinator.register(0, rumor, dline=64)
        assert coordinator.send_phase(63) == []
        messages = coordinator.send_phase(64)
        assert sorted(m.dst for m in messages) == [1, 3]
        assert all(m.service == ServiceTags.CONFIDENTIAL for m in messages)
        assert coordinator.fallbacks == 1
        # Cache entry consumed; no double shooting.
        assert coordinator.send_phase(64) == []

    def test_shoot_skips_self(self):
        coordinator = make_coordinator(pid=0)
        rumor = mk_rumor(dest=(0, 1), deadline=64)
        coordinator.register(0, rumor, dline=64)
        messages = coordinator.send_phase(64)
        assert [m.dst for m in messages] == [1]

    def test_direct_send_immediate(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(2,), deadline=8)
        coordinator.direct_send(0, rumor)
        messages = coordinator.send_phase(0)
        assert [m.dst for m in messages] == [2]
        assert coordinator.direct_sends == 1

    def test_shoot_received_delivers(self):
        deliveries = []
        coordinator = make_coordinator(pid=1, deliveries=deliveries)
        rumor = mk_rumor(dest=(1,))
        coordinator.on_message(9, mk_message(payload=rumor, channel="shoot"))
        assert deliveries[0][2] == rumor.rid
        assert deliveries[0][4] == "shoot"

    def test_unexpected_payload_rejected(self):
        coordinator = make_coordinator()
        with pytest.raises(TypeError):
            coordinator.on_message(0, mk_message(payload={"weird": 1}))


class TestPendingQueries:
    def test_pending_rumors_listed(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=(1,))
        coordinator.register(0, rumor, dline=64)
        assert coordinator.pending_rumors() == [rumor.rid]

    def test_empty_destination_confirms_trivially(self):
        coordinator = make_coordinator()
        rumor = mk_rumor(dest=())
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(1, share(64, 0, 0, set()))
        coordinator.end_round(1)
        assert coordinator.is_confirmed(rumor.rid)
