"""Tests for the fallback-scope optimization (Figure 2's parenthetical)."""

import pytest

from repro.core.confidential_gossip import ConfidentialGossipCoordinator
from repro.core.config import CongosParams
from repro.core.group_distribution import DistributionShare
from repro.core.partitions import BitPartitions
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario

from conftest import mk_rumor


def make_coordinator(scope):
    params = CongosParams(fallback_scope=scope)
    return ConfidentialGossipCoordinator(0, 8, params, BitPartitions(8))


def share(rumor, partition, group, dests):
    return DistributionShare(
        sender=1,
        dline=64,
        partition=partition,
        group=group,
        hits=frozenset((q, rumor.rid) for q in dests),
    )


class TestCoordinatorScope:
    def test_all_mode_shoots_everyone(self):
        coordinator = make_coordinator("all")
        rumor = mk_rumor(dest=(1, 2, 3), deadline=64)
        coordinator.register(0, rumor, dline=64)
        # Destination 1 is fully covered in partition 0, but "all" shoots
        # the whole set anyway.
        coordinator.on_distribution_share(5, share(rumor, 0, 0, {1}))
        coordinator.on_distribution_share(5, share(rumor, 0, 1, {1}))
        messages = coordinator.send_phase(64)
        assert sorted(m.dst for m in messages) == [1, 2, 3]

    def test_unconfirmed_mode_skips_covered(self):
        coordinator = make_coordinator("unconfirmed")
        rumor = mk_rumor(dest=(1, 2, 3), deadline=64)
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(5, share(rumor, 0, 0, {1}))
        coordinator.on_distribution_share(5, share(rumor, 0, 1, {1}))
        messages = coordinator.send_phase(64)
        assert sorted(m.dst for m in messages) == [2, 3]

    def test_coverage_requires_all_groups(self):
        coordinator = make_coordinator("unconfirmed")
        rumor = mk_rumor(dest=(1,), deadline=64)
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(5, share(rumor, 0, 0, {1}))
        # Group 1 never covered destination 1: still shot.
        messages = coordinator.send_phase(64)
        assert [m.dst for m in messages] == [1]

    def test_coverage_must_be_same_partition(self):
        coordinator = make_coordinator("unconfirmed")
        rumor = mk_rumor(dest=(1,), deadline=64)
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(5, share(rumor, 0, 0, {1}))
        coordinator.on_distribution_share(5, share(rumor, 1, 1, {1}))
        messages = coordinator.send_phase(64)
        assert [m.dst for m in messages] == [1]

    def test_fully_covered_rumor_shoots_nothing(self):
        coordinator = make_coordinator("unconfirmed")
        rumor = mk_rumor(dest=(1,), deadline=64)
        coordinator.register(0, rumor, dline=64)
        coordinator.on_distribution_share(5, share(rumor, 2, 0, {1}))
        coordinator.on_distribution_share(5, share(rumor, 2, 1, {1}))
        # Fully covered -> confirmation fires first and nothing is shot.
        messages = coordinator.send_phase(64)
        assert messages == []

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            CongosParams(fallback_scope="nobody")


class TestEndToEnd:
    @pytest.mark.parametrize("scope", ["all", "unconfirmed"])
    def test_qod_holds_with_either_scope(self, scope):
        params = CongosParams(
            fallback_scope=scope,
            # Cripple the substrate so fallbacks actually fire.
            fanout_scale=0.01,
            min_fanout=1,
            gossip_fanout_scale=0.2,
        )
        result = run_congos_scenario(
            steady_scenario(n=8, rounds=320, seed=4, deadline=64, params=params)
        )
        assert result.qod.satisfied
        assert result.confidentiality.is_clean()
