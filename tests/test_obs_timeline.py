"""Tests for repro.obs.timeline: rumor-lifecycle reconstruction.

Unit tests drive the timeline with synthetic events; the integration
test runs a real (small) CONGOS scenario and reconstructs a complete
lifecycle from the instrumentation stream.
"""

import json

from repro.core.config import CongosParams
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario
from repro.obs.instrument import Telemetry
from repro.obs.sink import CollectSink
from repro.obs.timeline import RumorTimeline

from conftest import mk_rumor


def feed(timeline, *events):
    """events: (kind, round_no, fields) triples via a live Telemetry."""
    telemetry = Telemetry()
    telemetry.subscribe(timeline)
    for kind, round_no, fields in events:
        telemetry.emit(kind, round_no, **fields)


class TestTimelineUnit:
    def test_inject_then_deliver_builds_one_record(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("rumor_inject", 5, {"rid": "r0:0", "src": 0, "dest": [1, 2], "deadline": 64, "dline": 64}),
            ("rumor_split", 5, {"rid": "r0:0", "partitions": 2, "fragments": 6}),
            ("gossip_inject", 5, {"rid": "r0:0", "pid": 0}),
            ("rumor_deliver", 12, {"rid": "r0:0", "pid": 1, "path": "pipeline"}),
            ("rumor_deliver", 14, {"rid": "r0:0", "pid": 2, "path": "pipeline"}),
            ("rumor_confirm", 15, {"rid": "r0:0", "pid": 0}),
        )
        assert len(timeline) == 1
        record = timeline.lifecycle("r0:0")
        assert record.inject_round == 5
        assert record.src == 0
        assert record.dest == [1, 2]
        assert record.fragments == 6
        assert record.first_gossip_round == 5
        assert record.deliveries[1] == {"round": 12, "path": "pipeline", "latency": 7}
        assert record.latencies() == [7, 9]
        assert record.confirmed_round == 15
        assert record.complete

    def test_incomplete_until_all_destinations_served(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("rumor_inject", 0, {"rid": "r", "src": 0, "dest": [1, 2]}),
            ("rumor_deliver", 3, {"rid": "r", "pid": 1, "path": "pipeline"}),
        )
        record = timeline.lifecycle("r")
        assert record.delivered_count == 1
        assert not record.complete

    def test_duplicate_delivery_keeps_first(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("rumor_inject", 0, {"rid": "r", "src": 0, "dest": [1]}),
            ("rumor_deliver", 3, {"rid": "r", "pid": 1, "path": "pipeline"}),
            ("rumor_deliver", 9, {"rid": "r", "pid": 1, "path": "shoot"}),
        )
        assert timeline.lifecycle("r").deliveries[1]["round"] == 3

    def test_proxy_and_gd_round_spans(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("proxy_request", 8, {"rids": ["r"], "pid": 1}),
            ("proxy_crossing", 6, {"rids": ["r"], "pid": 2}),
            ("gd_send", 10, {"rids": ["r"], "pid": 3}),
            ("gd_send", 13, {"rids": ["r"], "pid": 3}),
        )
        record = timeline.lifecycle("r")
        assert record.first_proxy_round == 6
        assert record.last_proxy_round == 8
        assert record.proxy_requests == 1
        assert record.gd_sends == 2
        assert (record.first_gd_round, record.last_gd_round) == (10, 13)

    def test_engine_hook_backfills_only(self):
        timeline = RumorTimeline()
        rumor = mk_rumor(src=3, seq=1, dest=(0, 1))
        timeline.on_inject(4, 3, rumor)
        record = timeline.lifecycle(rumor.rid)
        assert record is not None
        assert record.inject_round == 4 and record.src == 3
        assert record.dest == [0, 1]
        # A later (authoritative) protocol event must not double-count.
        feed(timeline, ("rumor_inject", 4, {"rid": str(rumor.rid), "src": 3, "dline": 64}))
        assert len(timeline) == 1
        assert timeline.lifecycle(rumor.rid).dline == 64

    def test_unknown_kinds_ignored(self):
        timeline = RumorTimeline()
        feed(timeline, ("round_heartbeat", 1, {"pid": 0}))
        assert len(timeline) == 0
        assert timeline.events_seen == 0

    def test_lifecycles_ordered_by_inject_round(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("rumor_inject", 9, {"rid": "late", "src": 0}),
            ("rumor_inject", 2, {"rid": "early", "src": 1}),
        )
        assert [r.rid for r in timeline.lifecycles()] == ["early", "late"]

    def test_replay_unknown_rumor(self):
        assert RumorTimeline().replay("ghost") == [
            "rumor 'ghost': no events observed"
        ]

    def test_summary_counts(self):
        timeline = RumorTimeline()
        feed(
            timeline,
            ("rumor_inject", 0, {"rid": "r", "src": 0, "dest": [1]}),
            ("rumor_deliver", 4, {"rid": "r", "pid": 1, "path": "pipeline"}),
            ("rumor_confirm", 5, {"rid": "r", "pid": 0}),
        )
        summary = timeline.summary()
        assert summary["rumors"] == 1
        assert summary["complete"] == 1
        assert summary["confirmed"] == 1
        assert summary["deliveries"] == 1
        assert summary["max_latency"] == 4


class TestTimelineIntegration:
    def test_reconstructs_full_lifecycle_from_a_real_run(self):
        scenario = steady_scenario(
            n=8, rounds=200, seed=0, deadline=64, params=CongosParams.lean()
        )
        timeline = RumorTimeline()
        telemetry = Telemetry()
        telemetry.subscribe(timeline)
        result = run_congos_scenario(
            scenario, observers=[timeline], telemetry=telemetry
        )
        assert result.qod.satisfied
        assert len(timeline) > 0
        complete = [r for r in timeline.lifecycles() if r.complete]
        assert complete, "no rumor completed its lifecycle"
        record = complete[0]
        # The pipeline stages must all be visible in the reconstruction.
        assert record.inject_round is not None
        assert record.fragments > 0
        assert record.first_gossip_round is not None
        assert record.delivered_count == len(record.dest)
        assert all(lat >= 0 for lat in record.latencies())
        # Replay narrates the same record, round-ordered.
        lines = timeline.replay(record.rid)
        assert any("injected" in line for line in lines)
        assert any("delivered" in line for line in lines)
        rounds = [int(line[1:6]) for line in lines]  # "r{:>5}  ..." prefix
        assert rounds == sorted(rounds)

    def test_export_emits_json_safe_lifecycle_events(self):
        scenario = steady_scenario(
            n=8, rounds=120, seed=1, deadline=64, params=CongosParams.lean()
        )
        timeline = RumorTimeline()
        telemetry = Telemetry()
        telemetry.subscribe(timeline)
        run_congos_scenario(scenario, observers=[timeline], telemetry=telemetry)
        sink = CollectSink()
        exported = timeline.export(sink)
        assert exported == len(timeline)
        for event in sink.events:
            assert event.kind == "rumor_lifecycle"
            parsed = json.loads(event.to_json())
            assert parsed["rid"]
            assert "complete" in parsed
