"""Tests for repro.gossip.expander: deterministic rotating schedules."""

import pytest
from hypothesis import given, strategies as st

from repro.gossip.expander import ShiftExpander, circulant_offsets


class TestCirculantOffsets:
    def test_tiny_group(self):
        assert circulant_offsets(1, 4) == ()

    def test_doubling_prefix(self):
        offsets = circulant_offsets(64, 4)
        assert offsets[:4] == (1, 2, 4, 8)

    def test_no_zero_offsets(self):
        for size in (2, 5, 16, 33):
            for degree in (1, 3, 6):
                assert 0 not in circulant_offsets(size, degree)

    def test_distinct_offsets(self):
        offsets = circulant_offsets(32, 8)
        assert len(set(offsets)) == len(offsets)


class TestShiftExpander:
    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            ShiftExpander([], 2)

    def test_degree_capped(self):
        expander = ShiftExpander([0, 1, 2], 10)
        assert expander.degree == 2

    def test_targets_in_group(self):
        expander = ShiftExpander([3, 5, 9, 12, 20], 3)
        for round_no in range(10):
            for pid in (3, 5, 9, 12, 20):
                for target in expander.targets(pid, round_no):
                    assert expander.contains(target)
                    assert target != pid

    def test_unknown_pid_rejected(self):
        expander = ShiftExpander([0, 1, 2], 2)
        with pytest.raises(KeyError):
            expander.targets(7, 0)

    def test_rotation_varies_targets(self):
        expander = ShiftExpander(list(range(16)), 3)
        seen = set()
        for round_no in range(16):
            seen.update(expander.targets(0, round_no))
        # Over a full rotation, process 0 contacts many distinct peers.
        assert len(seen) >= 8

    def test_deterministic(self):
        a = ShiftExpander(list(range(8)), 3)
        b = ShiftExpander(list(range(8)), 3)
        assert a.targets(2, 5) == b.targets(2, 5)

    def test_singleton_group_has_no_targets(self):
        assert ShiftExpander([4], 3).targets(4, 0) == []

    def test_connectivity_round_zero(self):
        """The round-0 graph must be connected (reachability check)."""
        members = list(range(20))
        expander = ShiftExpander(members, 4)
        reached = {members[0]}
        frontier = [members[0]]
        while frontier:
            pid = frontier.pop()
            for neighbor in expander.neighbors(pid):
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        assert reached == set(members)

    def test_diameter_bound_positive(self):
        assert ShiftExpander(list(range(16)), 3).diameter_bound() >= 1


@given(
    size=st.integers(min_value=2, max_value=48),
    degree=st.integers(min_value=1, max_value=8),
    round_no=st.integers(min_value=0, max_value=200),
)
def test_targets_always_valid_members(size, degree, round_no):
    members = list(range(0, 3 * size, 3))  # non-contiguous pids
    expander = ShiftExpander(members, degree)
    targets = expander.targets(members[0], round_no)
    assert len(set(targets)) == len(targets)
    assert all(t in members and t != members[0] for t in targets)
