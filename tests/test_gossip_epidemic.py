"""Tests for repro.gossip.epidemic: fanout policy and target selection."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.gossip.epidemic import (
    choose_push_targets,
    default_fanout,
    rounds_to_saturate,
)


class TestDefaultFanout:
    def test_singleton_scope_needs_no_fanout(self):
        assert default_fanout(1) == 0

    def test_grows_logarithmically(self):
        assert default_fanout(4, scale=1.0) == 2
        assert default_fanout(16, scale=1.0) == 4
        assert default_fanout(256, scale=1.0) == 8

    def test_scale_multiplies(self):
        assert default_fanout(16, scale=2.0) == 8

    def test_capped_at_scope_minus_one(self):
        assert default_fanout(4, scale=100.0) == 3

    def test_minimum_respected(self):
        assert default_fanout(2, scale=0.1, minimum=1) == 1


class TestChoosePushTargets:
    def test_never_self(self):
        rng = random.Random(0)
        for _ in range(50):
            targets = choose_push_targets(rng, range(10), 3, 4)
            assert 3 not in targets

    def test_respects_exclusion(self):
        rng = random.Random(0)
        targets = choose_push_targets(
            rng, range(10), 0, 9, exclude=frozenset({1, 2, 3})
        )
        assert not set(targets) & {1, 2, 3}

    def test_small_pool_returned_whole(self):
        rng = random.Random(0)
        targets = choose_push_targets(rng, [0, 1, 2], 0, 10)
        assert sorted(targets) == [1, 2]

    def test_zero_fanout(self):
        rng = random.Random(0)
        assert choose_push_targets(rng, range(10), 0, 0) == []

    def test_distinct_targets(self):
        rng = random.Random(0)
        for _ in range(20):
            targets = choose_push_targets(rng, range(20), 0, 8)
            assert len(set(targets)) == len(targets) == 8

    def test_empty_pool(self):
        rng = random.Random(0)
        assert choose_push_targets(rng, [5], 5, 3) == []


@given(
    scope_size=st.integers(min_value=2, max_value=64),
    fanout=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_targets_always_valid(scope_size, fanout, seed):
    """Property: targets are distinct scope members, never self."""
    rng = random.Random(seed)
    scope = list(range(scope_size))
    targets = choose_push_targets(rng, scope, 0, fanout)
    assert len(set(targets)) == len(targets)
    assert all(t in scope and t != 0 for t in targets)
    assert len(targets) == min(fanout, scope_size - 1)


class TestRoundsToSaturate:
    def test_trivial_scope(self):
        assert rounds_to_saturate(1, 3) == 0

    def test_positive_for_real_groups(self):
        assert rounds_to_saturate(16, 4) >= 1

    def test_monotone_in_scope(self):
        assert rounds_to_saturate(256, 4) >= rounds_to_saturate(16, 4)

    def test_needs_positive_fanout(self):
        with pytest.raises(ValueError):
            rounds_to_saturate(16, 0)
