"""Tests for repro.obs.events: JSON-safe telemetry events."""

import json

import pytest

from repro.gossip.rumor import RumorId
from repro.obs.events import REQUIRED_KEYS, ObsEvent, json_safe


class TestJsonSafe:
    def test_primitives_pass_through(self):
        for value in (None, True, False, 0, 3, 2.5, "x"):
            assert json_safe(value) == value

    def test_bytes_become_length_marker(self):
        # Confidential payloads must never land in a trace file.
        assert json_safe(b"secret-data!") == "<12 bytes>"
        assert json_safe(b"") == "<0 bytes>"

    def test_sets_become_sorted_lists(self):
        assert json_safe({3, 1, 2}) == [1, 2, 3]
        assert json_safe(frozenset(["b", "a"])) == ["a", "b"]

    def test_mixed_type_set_is_deterministic(self):
        a = json_safe({1, "1", 2})
        b = json_safe({"1", 2, 1})
        assert a == b

    def test_tuples_become_lists(self):
        assert json_safe((1, (2, 3))) == [1, [2, 3]]

    def test_mapping_keys_stringified_recursively(self):
        assert json_safe({1: {2: b"xy"}}) == {"1": {"2": "<2 bytes>"}}

    def test_arbitrary_objects_become_str(self):
        rid = RumorId(4, 7)
        assert json_safe(rid) == str(rid)

    def test_result_always_dumps(self):
        blob = {
            "rid": RumorId(0, 0),
            "dest": frozenset({2, 1}),
            "z": b"\x00\x01",
            "nested": [(1, 2), {3}],
        }
        json.dumps(json_safe(blob))  # must not raise


class TestObsEvent:
    def test_make_sanitizes_fields(self):
        event = ObsEvent.make("x", 5, rid=RumorId(1, 2), dest={3, 1})
        assert event.fields["rid"] == str(RumorId(1, 2))
        assert event.fields["dest"] == [1, 3]

    def test_to_dict_has_required_keys(self):
        data = ObsEvent.make("rumor_inject", 7, pid=1).to_dict()
        for key in REQUIRED_KEYS:
            assert key in data
        assert data["kind"] == "rumor_inject"
        assert data["round"] == 7

    def test_fields_cannot_shadow_envelope(self):
        event = ObsEvent("x", 5, {"kind": "evil", "round": 999, "pid": 1})
        data = event.to_dict()
        assert data["kind"] == "x"
        assert data["round"] == 5
        assert data["pid"] == 1

    def test_to_json_round_trips(self):
        event = ObsEvent.make("gd_send", 12, pid=3, rids=["r0:1"])
        parsed = json.loads(event.to_json())
        assert parsed == {"kind": "gd_send", "round": 12, "pid": 3, "rids": ["r0:1"]}

    def test_to_json_is_compact_and_sorted(self):
        text = ObsEvent.make("x", 1, b=2, a=1).to_json()
        assert text.index('"a"') < text.index('"b"')
        assert ": " not in text

    def test_str_mentions_kind_and_fields(self):
        text = str(ObsEvent.make("crash", 3, pid=2))
        assert "crash" in text and "pid=2" in text
