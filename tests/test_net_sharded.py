"""The sharded backend: bit-identical results, plans, options, gating."""

import dataclasses

import pytest

from repro.api import CongosParams, run_scenario
from repro.core.congos import build_partition_set
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import get_builder
from repro.net.coordinator import NetOptions
from repro.net.shard import ShardPlan


def _record(result) -> RunRecord:
    # No spec_key: the payload alone must match across backends.
    return RunRecord.from_result(result).without_profile()


def _compare_backends(scenario, workers=2):
    """Run one scenario on both backends; assert bit-identical records."""
    inproc = run_congos_scenario(scenario)
    sharded = run_congos_scenario(
        dataclasses.replace(
            scenario, backend="sharded", net={"workers": workers}
        )
    )
    assert _record(sharded) == _record(inproc)
    assert sharded.confidentiality.is_clean()
    net = sharded.engine.net_summary()
    assert net["local_messages"] + net["cross_messages"] == sharded.stats.total
    return inproc, sharded


def test_sharded_matches_inproc_steady_pipeline():
    # deadline 64 > direct_send_threshold: the full Proxy/GD/Gossip
    # pipeline runs, so Proxy and GD traffic crosses the shard boundary.
    scenario = get_builder("steady")(
        n=16, rounds=96, seed=0, deadline=64, params=CongosParams.lean()
    )
    _, sharded = _compare_backends(scenario, workers=2)
    assert sharded.engine.net_summary()["cross_messages"] > 0


def test_sharded_matches_inproc_n64():
    scenario = get_builder("steady")(
        n=64, rounds=32, seed=1, deadline=64, params=CongosParams.lean()
    )
    _compare_backends(scenario, workers=2)


def test_sharded_chaos_keyed_matches_inproc_three_workers():
    # Chaos comparison needs message-keyed fates on BOTH backends (the
    # default index-order stream has no shard-invariant meaning); three
    # workers over n=16 also exercises a non-divisible shard split.
    scenario = get_builder("chaos")(
        n=16,
        rounds=80,
        seed=2,
        deadline=64,
        drop=0.05,
        delay=0.05,
        duplicate=0.02,
        reorder=0.2,
        params=CongosParams.lean(),
    )
    scenario = dataclasses.replace(scenario, chaos_keyed=True)
    inproc, sharded = _compare_backends(scenario, workers=3)
    assert sharded.fault_plane is not None
    assert (
        sharded.fault_plane.counts_summary()
        == inproc.fault_plane.counts_summary()
    )


def test_sharded_matches_inproc_under_churn():
    scenario = get_builder("churn")(
        n=16,
        rounds=64,
        seed=3,
        deadline=64,
        p_crash=0.05,
        p_restart=0.3,
        params=CongosParams.lean(),
    )
    inproc, sharded = _compare_backends(scenario, workers=2)
    # The run must actually have exercised crash/restart relay.
    assert sharded.engine.event_log.summary()["crashes"] > 0


def test_api_backend_selector():
    kwargs = dict(
        n=8, rounds=24, deadline=16, seed=0, params=CongosParams.lean()
    )
    inproc = run_scenario("steady", **kwargs)
    sharded = run_scenario(
        "steady", backend="sharded", net={"workers": 2}, **kwargs
    )
    assert _record(sharded) == _record(inproc)


def test_telemetry_supported_on_sharded_backend():
    # The full cross-backend contract lives in tests/test_net_telemetry.py;
    # this pins the api-level plumbing: a traced sharded run works, emits
    # worker-labelled events, and matches the untraced payload exactly.
    from repro.obs.instrument import Telemetry
    from repro.obs.sink import CollectSink

    kwargs = dict(
        n=8, rounds=24, deadline=16, seed=0, params=CongosParams.lean()
    )
    sink = CollectSink()
    traced = run_scenario(
        "steady",
        backend="sharded",
        net={"workers": 2},
        telemetry=Telemetry(sinks=[sink]),
        **kwargs,
    )
    untraced = run_scenario(
        "steady", backend="sharded", net={"workers": 2}, **kwargs
    )
    assert sink.events, "traced sharded run produced no events"
    assert all("worker" in event.fields for event in sink.events)
    assert _record(traced) == _record(untraced)


def test_mid_round_adversary_rejected():
    scenario = get_builder("proxy-killer")(
        n=16, rounds=16, seed=0, params=CongosParams.lean()
    )
    with pytest.raises(NotImplementedError, match="mid_round"):
        run_congos_scenario(
            dataclasses.replace(
                scenario, backend="sharded", net={"workers": 2}
            )
        )


def test_mid_round_rejection_names_composed_part():
    # The error must identify WHICH part of a ComposedAdversary is the
    # problem and point at the supported alternative (targeted chaos
    # policies), not just say "something overrides mid_round".
    from repro.adversary.base import Adversary, ComposedAdversary
    from repro.net.coordinator import _reject_mid_round_adversaries

    class Benign(Adversary):
        pass

    class Nosy(Adversary):
        def mid_round(self, view, outgoing):
            return super().mid_round(view, outgoing)

    composed = ComposedAdversary([Benign(), Nosy(), Benign()])
    with pytest.raises(NotImplementedError) as excinfo:
        _reject_mid_round_adversaries(composed)
    message = str(excinfo.value)
    assert "Nosy (part 2 of 3 in a ComposedAdversary)" in message
    assert "Scenario.targeted" in message
    assert "chaos_keyed" in message

    # A bare (non-composed) adversary is named without the part suffix.
    with pytest.raises(NotImplementedError) as excinfo:
        _reject_mid_round_adversaries(Nosy())
    assert "ComposedAdversary" not in str(excinfo.value).split("Run this")[0]

    # Benign compositions pass.
    _reject_mid_round_adversaries(ComposedAdversary([Benign(), Benign()]))


def test_sharded_targeted_matches_inproc():
    # Targeted policies decide from shard-invariant metadata and
    # per-destination budgets, so the whole RunRecord — including the
    # merged budget ledger — must be bit-identical across backends.
    scenario = get_builder("targeted")(
        n=16,
        rounds=96,
        seed=4,
        policy="collector-starver",
        per_round=2,
        total=32,
        params=CongosParams.lean(),
    )
    scenario = dataclasses.replace(scenario, chaos_keyed=True)
    inproc, sharded = _compare_backends(scenario, workers=3)
    inproc_summary = inproc.fault_plane.targeted_summary()
    sharded_summary = sharded.fault_plane.targeted_summary()
    assert sharded_summary == inproc_summary
    assert inproc_summary["budget"]["spent"] > 0


def test_sharded_targeted_composed_with_oblivious_drop():
    # The targeted layer's fallthrough to the oblivious schedule must
    # also be shard-invariant when both are active.
    scenario = get_builder("targeted")(
        n=16,
        rounds=96,
        seed=5,
        policy="deadline-chaser",
        per_round=2,
        total=32,
        drop=0.05,
        params=CongosParams.lean(),
    )
    scenario = dataclasses.replace(scenario, chaos_keyed=True)
    inproc, sharded = _compare_backends(scenario, workers=2)
    assert (
        sharded.fault_plane.targeted_summary()
        == inproc.fault_plane.targeted_summary()
    )


def test_net_options_validation():
    options = NetOptions(None)
    assert (options.workers, options.transport) == (2, "tcp")
    with pytest.raises(ValueError, match="unknown net options"):
        NetOptions({"worker": 2})
    with pytest.raises(ValueError, match="workers"):
        NetOptions({"workers": 0})
    with pytest.raises(ValueError, match="exceeds n"):
        run_scenario(
            "steady",
            n=8,
            rounds=8,
            backend="sharded",
            net={"workers": 9},
        )


def test_shard_plan_layout_and_locality():
    params = CongosParams.lean()
    partitions = build_partition_set(16, params, seed=0)
    plan = ShardPlan.build(16, 2, partition_set=partitions)
    assert sorted(
        pid for worker in range(2) for pid in plan.pids_of(worker)
    ) == list(range(16))
    assert plan.assignments()[0] == plan.pids_of(0)
    # Group-major layout: every partition-0 group fits one worker here.
    assert plan.locality(partitions) == 1.0

    with pytest.raises(ValueError, match="at least one worker"):
        ShardPlan.build(8, 0)
    with pytest.raises(ValueError, match="empty"):
        ShardPlan.build(4, 5)
    with pytest.raises(ValueError, match="cover every pid"):
        ShardPlan(n=4, workers=2, owner=(0, 1, 0))


def test_runspec_backend_excluded_from_default_key():
    base = RunSpec.make("steady", seed=0, n=16, rounds=32, deadline=64)
    explicit = RunSpec.make(
        "steady", seed=0, n=16, rounds=32, deadline=64, backend="inproc"
    )
    sharded = RunSpec.make(
        "steady",
        seed=0,
        n=16,
        rounds=32,
        deadline=64,
        backend="sharded",
        net={"workers": 2},
    )
    # Pre-sharding cache keys survive: the default backend never enters
    # the content hash (or the serialized form), a non-default one does.
    assert explicit.key == base.key
    assert sharded.key != base.key
    assert "backend" not in base.to_dict()
    assert RunSpec.from_dict(base.to_dict()) == base
    assert RunSpec.from_dict(sharded.to_dict()) == sharded
    assert sharded.to_scenario().backend == "sharded"
    assert base.to_scenario().backend == "inproc"
