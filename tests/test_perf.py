"""Tests for the perf subsystem: case registry, bench runner, scaling."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main
from repro.perf import (
    PRE_PR_BASELINE,
    PerfCase,
    all_cases,
    case_keys,
    engine_scaling_payload,
    get_case,
    profile_case,
    register_case,
    run_case,
    run_engine_scaling,
    run_suite,
    scaling_spec,
    suite_payload,
)
from repro.perf.cases import _REGISTRY
from repro.perf.scaling import _cliff_drop


def counting_case(key="t_counting", ops=3):
    calls = {"setups": 0, "runs": 0}

    def setup():
        calls["setups"] += 1

        def op():
            calls["runs"] += 1
            return calls["runs"]

        return op

    return PerfCase(key=key, title="counting", setup=setup, ops=ops), calls


class TestRegistry:
    def test_builtin_cases_registered_and_sorted(self):
        keys = case_keys()
        assert keys == sorted(keys)
        assert "e6_steady_small" in keys
        assert "network_route" in keys

    def test_get_case_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown perf case"):
            get_case("no_such_case")

    def test_duplicate_key_rejected(self):
        case, _ = counting_case(key="t_duplicate")
        register_case(case)
        try:
            with pytest.raises(ValueError, match="duplicate"):
                register_case(case)
        finally:
            del _REGISTRY["t_duplicate"]

    def test_tag_filter(self):
        micro = all_cases(tags=("micro",))
        assert micro
        assert all("micro" in case.tags for case in micro)
        assert not any("end_to_end" in case.tags for case in micro)


class TestBench:
    def test_fresh_setup_per_repeat_and_warmup(self):
        case, calls = counting_case()
        result = run_case(case, repeats=3, warmup=2)
        assert calls["setups"] == 5
        assert calls["runs"] == 5
        assert len(result.samples) == 3
        assert result.best <= result.mean
        assert result.best_per_op == result.best / 3

    def test_repeats_must_be_positive(self):
        case, _ = counting_case()
        with pytest.raises(ValueError):
            run_case(case, repeats=0)

    def test_profile_attaches_hotspots(self):
        result = run_case(
            get_case("clock_arithmetic"), repeats=1, warmup=0, profile=True
        )
        assert result.hotspots
        spot = result.hotspots[0]
        assert set(spot) == {"function", "calls", "tottime_s", "cumtime_s"}
        assert profile_case(get_case("clock_arithmetic"), top=3)

    def test_suite_payload_shape(self):
        case, _ = counting_case()
        payload = suite_payload(run_suite([case], repeats=2, warmup=0))
        assert len(payload["cases"]) == 1
        row = payload["cases"][0]
        assert row["key"] == "t_counting"
        assert row["repeats"] == 2
        assert payload["total_best_s"] == row["best_s"]


class TestScaling:
    def test_scaling_spec_is_stable(self):
        assert scaling_spec(16).key == scaling_spec(16).key
        assert scaling_spec(16).key != scaling_spec(32).key

    def test_run_engine_scaling_digests_and_speedups(self):
        rows = run_engine_scaling(ns=(16,), rounds=24, repeats=1)
        (row,) = rows
        assert row["n"] == 16
        assert len(row["digest"]) == 64
        assert row["wall_s"] > 0
        assert row["baseline_s"] == PRE_PR_BASELINE[16]
        assert row["speedup"] == round(PRE_PR_BASELINE[16] / row["wall_s"], 2)
        # Same spec twice => identical deterministic payload digest.
        again = run_engine_scaling(ns=(16,), rounds=24, repeats=1)
        assert again[0]["digest"] == row["digest"]

    def test_engine_scaling_payload_splits_timing(self):
        rows = run_engine_scaling(ns=(16,), rounds=24, repeats=1)
        payload = engine_scaling_payload(rows)
        assert payload["baseline"]["commit"] == "29cc6bd"
        assert "wall_s" not in payload["runs"][0]
        assert payload["timing"][0]["n"] == 16

    def test_cliff_drop_finds_first_failure(self):
        cells = [
            {"cell": {"drop": 0.0}, "qod_satisfied": True, "delivery_rate": 1.0},
            {"cell": {"drop": 0.3}, "qod_satisfied": True, "delivery_rate": 0.99},
            {"cell": {"drop": 0.5}, "qod_satisfied": False, "delivery_rate": 0.7},
        ]
        assert _cliff_drop(cells, threshold=0.999) == 0.3
        assert _cliff_drop(cells, threshold=0.9) == 0.5
        assert _cliff_drop(cells[:1], threshold=0.999) is None

    def test_cliff_drop_handles_missing_delivery_rate(self):
        cells = [
            {"cell": {"drop": 0.2}, "qod_satisfied": True, "delivery_rate": None}
        ]
        assert _cliff_drop(cells, threshold=0.999) is None


class TestPerfCli:
    def test_micro_json(self, capsys):
        assert (
            main(
                [
                    "perf",
                    "micro",
                    "--case",
                    "clock_arithmetic",
                    "--repeats",
                    "1",
                    "--warmup",
                    "0",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases"][0]["key"] == "clock_arithmetic"

    def test_micro_table_with_profile(self, capsys):
        assert (
            main(
                [
                    "perf",
                    "micro",
                    "--case",
                    "clock_arithmetic",
                    "--repeats",
                    "1",
                    "--warmup",
                    "0",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clock_arithmetic" in out
        assert "hotspots" in out

    def test_scaling_writes_bench_artifact(self, tmp_path, capsys):
        assert (
            main(
                [
                    "perf",
                    "scaling",
                    "--ns",
                    "16",
                    "--rounds",
                    "24",
                    "--repeats",
                    "1",
                    "--out",
                    str(tmp_path),
                    "--json",
                ]
            )
            == 0
        )
        artifact = tmp_path / "BENCH_e17_engine_scaling.json"
        assert artifact.exists()
        body = json.loads(artifact.read_text())
        assert body["name"] == "e17_engine_scaling"
        printed = json.loads(capsys.readouterr().out)
        assert printed["runs"][0]["n"] == 16

    def test_chaos_scaling_smoke(self, tmp_path, capsys):
        assert (
            main(
                [
                    "perf",
                    "chaos-scaling",
                    "--ns",
                    "8",
                    "--drop",
                    "0.0",
                    "--delay",
                    "0.1",
                    "--seeds",
                    "1",
                    "--rounds",
                    "40",
                    "--jobs",
                    "1",
                    "--out",
                    str(tmp_path),
                    "--json",
                ]
            )
            == 0
        )
        artifact = tmp_path / "BENCH_e17b_chaos_scaling.json"
        assert artifact.exists()
        printed = json.loads(capsys.readouterr().out)
        assert printed["per_n"][0]["n"] == 8
        assert "first_failing_drop" in printed["cliff"]

    def test_chaos_scaling_resume_needs_out(self, capsys):
        assert main(["perf", "chaos-scaling", "--resume"]) == 2
