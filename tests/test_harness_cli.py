"""Tests for the command-line launcher."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "steady"])
        assert args.n == 16
        assert args.deadline == 128

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])


class TestCommands:
    def test_scenarios_lists(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "steady" in out and "proxy-killer" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "-n", "32", "--dmin", "64"]) == 0
        out = capsys.readouterr().out
        assert "Thm 11" in out and "Thm 1" in out

    def test_partitions_base(self, capsys):
        assert main(["partitions", "-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "3 partitions of 2 groups" in out

    def test_partitions_collusion(self, capsys):
        assert main(["partitions", "-n", "8", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 groups" in out

    def test_run_steady_smoke(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "260",
                "--deadline",
                "64",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Quality of Delivery" in out
        assert "satisfied" in out

    def test_run_json_output(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["qod"]["satisfied"] is True

    def test_run_theorem1(self, capsys):
        code = main(
            [
                "run",
                "theorem1",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
            ]
        )
        assert code == 0
