"""Tests for the command-line launcher."""

import json

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "steady"])
        assert args.n == 16
        assert args.deadline == 128

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])


class TestCommands:
    def test_scenarios_lists(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "steady" in out and "proxy-killer" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "-n", "32", "--dmin", "64"]) == 0
        out = capsys.readouterr().out
        assert "Thm 11" in out and "Thm 1" in out

    def test_partitions_base(self, capsys):
        assert main(["partitions", "-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "3 partitions of 2 groups" in out

    def test_partitions_collusion(self, capsys):
        assert main(["partitions", "-n", "8", "--tau", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 groups" in out

    def test_run_steady_smoke(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "260",
                "--deadline",
                "64",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Quality of Delivery" in out
        assert "satisfied" in out

    def test_run_json_output(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["qod"]["satisfied"] is True

    def test_run_theorem1(self, capsys):
        code = main(
            [
                "run",
                "theorem1",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
            ]
        )
        assert code == 0


class TestScenarioListing:
    def test_lists_builder_kwargs(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "kwargs" in out
        assert "deadline=128" in out  # defaults are rendered
        assert "collusion" in out  # registry exposes the Section-6 variant
        assert "scripted-burst" in out


class TestMultiSeedRun:
    def test_run_seeds_aggregates(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--seeds",
                "0",
                "1",
                "--jobs",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "across 2 seeds" in out
        assert "peak" in out

    def test_run_seeds_json(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--seeds",
                "0",
                "1",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        records = json.loads(out)
        assert len(records) == 2
        assert records[0]["qod_satisfied"] is True
        assert records[0]["seed"] == 0


class TestSweepCommand:
    def test_sweep_smoke_with_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(
            [
                "sweep",
                "steady",
                "-n",
                "8",
                "--deadline",
                "64",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--lean",
                "--out",
                out_dir,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "peak mean" in captured.out
        artifact = tmp_path / "artifacts" / "BENCH_steady_sweep.json"
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["executed_tasks"] == 1
        assert payload["cells"][0]["qod_satisfied"] is True
        assert (tmp_path / "artifacts" / "steady_sweep.txt").exists()
        assert (tmp_path / "artifacts" / "cache").is_dir()

    def test_sweep_resume_skips_cached_cells(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        argv = [
            "sweep",
            "steady",
            "-n",
            "8",
            "--deadline",
            "64",
            "--rounds",
            "200",
            "--seeds",
            "1",
            "--jobs",
            "1",
            "--lean",
            "--out",
            out_dir,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "artifacts" / "BENCH_steady_sweep.json").read_text()
        )
        assert payload["executed_tasks"] == 0
        assert payload["cached_tasks"] == 1

    def test_resume_requires_out(self, capsys):
        code = main(["sweep", "steady", "--resume"])
        assert code == 2

    def test_sweep_payload_carries_exec_profile(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(
            [
                "sweep",
                "steady",
                "-n",
                "8",
                "--deadline",
                "64",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--lean",
                "--metrics",
                "--out",
                out_dir,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Telemetry registry" in captured.out
        assert "exec.task_seconds" in captured.out
        payload = json.loads(
            (tmp_path / "artifacts" / "BENCH_steady_sweep.json").read_text()
        )
        profile = payload["profile"]
        assert profile["tasks"] == 1
        assert profile["executed"] == 1
        assert profile["task_seconds_total"] > 0
        assert profile["workers"] >= 1


class TestMetricsFlag:
    def test_run_metrics_renders_registry(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--metrics",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Telemetry registry" in out
        assert "rumor.delivered" in out
        assert "gossip.injected" in out

    def test_run_metrics_json_embeds_dump(self, capsys):
        code = main(
            [
                "run",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--metrics",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        names = {entry["name"] for entry in payload["metrics"]}
        assert "rumor.delivered" in names


class TestTraceCommand:
    def test_trace_writes_parseable_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "events.jsonl"
        code = main(
            [
                "trace",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--lean",
                "--metrics",
                "--out",
                str(out_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "timeline of rumor" in captured.out
        assert "Telemetry registry" in captured.out
        lines = out_path.read_text().splitlines()
        assert lines
        kinds = set()
        for line in lines:
            event = json.loads(line)
            assert "kind" in event and "round" in event
            kinds.add(event["kind"])
        assert {"rumor_inject", "rumor_deliver", "rumor_lifecycle"} <= kinds
        # At least one exported lifecycle is complete end to end.
        lifecycles = [
            json.loads(line)
            for line in lines
            if json.loads(line)["kind"] == "rumor_lifecycle"
        ]
        assert any(record["complete"] for record in lifecycles)

    def test_trace_sharded_backend(self, tmp_path, capsys):
        out_path = tmp_path / "events.jsonl"
        code = main(
            [
                "trace",
                "steady",
                "-n",
                "8",
                "--rounds",
                "24",
                "--deadline",
                "16",
                "--lean",
                "--backend",
                "sharded",
                "--workers",
                "2",
                "--out",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The report names the backend it traced.
        assert "[sharded backend]" in out
        lines = out_path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        # Every live protocol event carries its shard's worker label;
        # lifecycle records are coordinator-side reconstructions.
        live = [e for e in events if e["kind"] != "rumor_lifecycle"]
        assert live
        assert all("worker" in event for event in live)
        assert {e["kind"] for e in events} >= {"rumor_inject", "rumor_deliver"}

    def test_trace_replays_requested_rumor(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "steady",
                "-n",
                "8",
                "--rounds",
                "200",
                "--deadline",
                "64",
                "--lean",
                "--rumor",
                "r0:0",
                "--out",
                str(tmp_path / "events.jsonl"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "timeline of rumor r0:0" in out


class TestProfileSweepCommand:
    def test_profile_sweep_smoke(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(
            [
                "profile-sweep",
                "steady",
                "-n",
                "8",
                "--deadline",
                "64",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--lean",
                "--out",
                out_dir,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Exec-pool profile" in captured.out
        assert "wall s" in captured.out
        payload = json.loads(
            (tmp_path / "artifacts" / "BENCH_steady_profile.json").read_text()
        )
        assert payload["profile"]["tasks"] == 1
        assert payload["profile"]["task_seconds_total"] > 0
        assert payload["speedup"] >= 0

    def test_profile_sweep_json(self, capsys):
        code = main(
            [
                "profile-sweep",
                "steady",
                "-n",
                "8",
                "--deadline",
                "64",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--lean",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["profile"]["executed"] == 1

    def test_profile_resume_requires_out(self, capsys):
        code = main(["profile-sweep", "steady", "--resume"])
        assert code == 2


class TestLoadSoak:
    def test_smoke_with_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = main(
            [
                "load-soak",
                "-n",
                "16",
                "--rates",
                "1",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--out",
                out_dir,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "load soak" in captured.out
        assert "saturation knees" in captured.out
        payload = json.loads(
            (tmp_path / "artifacts" / "BENCH_e20_open_workload.json").read_text()
        )
        assert payload["scenario"] == "open"
        assert payload["all_clean"] and payload["all_shed_leak_free"]
        assert payload["cells"][0]["offered"] > 0
        assert payload["knees"]
        assert (tmp_path / "artifacts" / "load_soak.txt").exists()

    def test_json_output(self, capsys):
        code = main(
            [
                "load-soak",
                "-n",
                "16",
                "--rates",
                "1",
                "--rounds",
                "200",
                "--seeds",
                "1",
                "--jobs",
                "1",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["total_offered"] > 0
        assert payload["profile"]["tasks"] == 1

    def test_resume_requires_out(self, capsys):
        code = main(["load-soak", "--resume"])
        assert code == 2
