"""Tests for repro.adversary.injection: workload generators."""

import random

import pytest

from repro.adversary.injection import (
    BurstWorkload,
    GroupTrafficWorkload,
    PoissonWorkload,
    ScriptedWorkload,
    SteadyWorkload,
    Theorem1Workload,
    theorem1_density,
)
from repro.sim.engine import Engine
from repro.sim.process import NodeBehavior


def make_view(n=8, round_no=0, crashed=frozenset()):
    engine = Engine(n, lambda pid: NodeBehavior(pid, n))
    for pid in crashed:
        engine.shells[pid].crash()
        engine._alive.discard(pid)  # keep incremental alive set consistent
    for _ in range(round_no):
        engine.clock.advance()
    return engine.view


class TestScriptedWorkload:
    def test_fires_at_round(self):
        workload = ScriptedWorkload(
            [(3, 0, 64, {1, 2})], random.Random(0)
        )
        assert workload.round_start(make_view(round_no=2)).injections == []
        decision = workload.round_start(make_view(round_no=3))
        assert len(decision.injections) == 1
        pid, rumor = decision.injections[0]
        assert pid == 0
        assert rumor.dest == frozenset({1, 2})
        assert rumor.deadline == 64
        assert rumor.injected_at == 3

    def test_explicit_data(self):
        workload = ScriptedWorkload(
            [(0, 0, 64, {1}, b"fixed")], random.Random(0)
        )
        _, rumor = workload.round_start(make_view()).injections[0]
        assert rumor.data == b"fixed"

    def test_skips_crashed_source(self):
        workload = ScriptedWorkload([(0, 3, 64, {1})], random.Random(0))
        decision = workload.round_start(make_view(crashed={3}))
        assert decision.injections == []

    def test_sequences_increment_per_source(self):
        workload = ScriptedWorkload(
            [(0, 0, 64, {1}), (0, 1, 64, {2}), (1, 0, 64, {1})],
            random.Random(0),
        )
        first = workload.round_start(make_view(round_no=0))
        second = workload.round_start(make_view(round_no=1))
        rids = [r.rid for _, r in first.injections + second.injections]
        assert len(set(rids)) == 3


class TestSteadyWorkload:
    def test_respects_period_and_window(self):
        workload = SteadyWorkload(
            8,
            random.Random(0),
            rate=1,
            period=4,
            start_round=8,
            stop_round=16,
        )
        fired = [
            r
            for r in range(24)
            if workload.round_start(make_view(round_no=r)).injections
        ]
        assert fired == [8, 12]

    def test_rate_counts_sources(self):
        workload = SteadyWorkload(8, random.Random(0), rate=3, period=1)
        decision = workload.round_start(make_view())
        assert len(decision.injections) == 3
        assert len({pid for pid, _ in decision.injections}) == 3

    def test_dest_size(self):
        workload = SteadyWorkload(8, random.Random(0), rate=1, dest_size=5)
        _, rumor = workload.round_start(make_view()).injections[0]
        assert len(rumor.dest) == 5

    def test_source_excluded_from_dest_by_default(self):
        workload = SteadyWorkload(4, random.Random(0), rate=1, dest_size=3)
        for round_no in range(10):
            for pid, rumor in workload.round_start(
                make_view(n=4, round_no=round_no)
            ).injections:
                assert pid not in rumor.dest

    def test_include_source(self):
        workload = SteadyWorkload(
            4, random.Random(0), rate=1, dest_size=2, include_source=True
        )
        pid, rumor = workload.round_start(make_view(n=4)).injections[0]
        assert pid in rumor.dest

    def test_only_alive_sources(self):
        workload = SteadyWorkload(4, random.Random(0), rate=4, period=1)
        decision = workload.round_start(make_view(n=4, crashed={0, 1}))
        assert {pid for pid, _ in decision.injections} <= {2, 3}

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SteadyWorkload(4, random.Random(0), rate=-1)


class TestPoissonWorkload:
    def test_zero_probability_never_fires(self):
        workload = PoissonWorkload(8, random.Random(0), probability=0.0)
        for round_no in range(10):
            assert not workload.round_start(make_view(round_no=round_no)).injections

    def test_unit_probability_everyone_fires(self):
        workload = PoissonWorkload(8, random.Random(0), probability=1.0)
        decision = workload.round_start(make_view())
        assert len(decision.injections) == 8

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            PoissonWorkload(8, random.Random(0), probability=1.5)


class TestBurstWorkload:
    def test_everyone_injects_in_burst(self):
        workload = BurstWorkload(8, random.Random(0), burst_rounds=[5])
        assert not workload.round_start(make_view(round_no=4)).injections
        decision = workload.round_start(make_view(round_no=5))
        assert len(decision.injections) == 8


class TestGroupTraffic:
    def test_round_robin_sources(self):
        workload = GroupTrafficWorkload([2, 5], random.Random(0), period=1)
        sources = [
            workload.round_start(make_view(round_no=r)).injections[0][0]
            for r in range(4)
        ]
        assert sources == [2, 5, 2, 5]

    def test_dest_is_other_participants(self):
        workload = GroupTrafficWorkload([2, 5, 7], random.Random(0), period=1)
        pid, rumor = workload.round_start(make_view()).injections[0]
        assert rumor.dest == frozenset({2, 5, 7}) - {pid}

    def test_needs_two_participants(self):
        with pytest.raises(ValueError):
            GroupTrafficWorkload([2], random.Random(0))


class TestTheorem1Workload:
    def test_density_formula(self):
        assert theorem1_density(64, 8) == pytest.approx(64 ** 0.25 / 64)

    def test_density_needs_c_above_4(self):
        with pytest.raises(ValueError):
            theorem1_density(64, 4)

    def test_one_rumor_per_process(self):
        workload = Theorem1Workload(16, random.Random(0), c=8, inject_round=3)
        decision = workload.round_start(make_view(n=16, round_no=3))
        sources = [pid for pid, _ in decision.injections]
        assert len(sources) == len(set(sources))
        assert len(sources) >= 8  # some may draw empty destination sets

    def test_uniform_deadline(self):
        workload = Theorem1Workload(16, random.Random(0), dmax=99, inject_round=0)
        for _, rumor in workload.round_start(make_view(n=16)).injections:
            assert rumor.deadline == 99

    def test_fires_once(self):
        workload = Theorem1Workload(8, random.Random(0), inject_round=0)
        assert workload.round_start(make_view(round_no=0)).injections
        assert not workload.round_start(make_view(round_no=1)).injections

    def test_destination_sizes_near_expectation(self):
        n, c = 64, 8
        workload = Theorem1Workload(n, random.Random(1), c=c, inject_round=0)
        decision = workload.round_start(make_view(n=n))
        sizes = [len(r.dest) for _, r in decision.injections]
        mean = sum(sizes) / len(sizes)
        expected = workload.expected_x
        assert 0.3 * expected <= mean <= 3 * expected
