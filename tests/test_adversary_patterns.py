"""Edge-case tests for repro.adversary.patterns.ScriptedFaults: faults
scripted against a process in the wrong state must be skipped, and a
same-round crash+restart pair must never produce a conflicting decision."""

from repro.adversary.patterns import ScriptedFaults
from repro.sim.engine import Engine
from repro.sim.process import NodeBehavior


def make_view(n=8, round_no=0, crashed=frozenset()):
    engine = Engine(n, lambda pid: NodeBehavior(pid, n))
    for pid in crashed:
        engine.shells[pid].crash()
        engine._alive.discard(pid)  # keep incremental alive set consistent
    for _ in range(round_no):
        engine.clock.advance()
    return engine.view


class TestWrongStateSkipped:
    def test_crash_of_already_crashed_pid_is_skipped(self):
        adversary = ScriptedFaults([(0, "crash", 3)])
        decision = adversary.round_start(make_view(crashed={3}))
        assert decision.is_empty()

    def test_restart_of_alive_pid_is_skipped(self):
        adversary = ScriptedFaults([(0, "restart", 3)])
        decision = adversary.round_start(make_view())
        assert decision.is_empty()

    def test_double_crash_entries_collapse(self):
        adversary = ScriptedFaults([(0, "crash", 3), (0, "crash", 3)])
        decision = adversary.round_start(make_view())
        assert decision.crashes == {3}


class TestSameRoundCrashRestart:
    def test_alive_pid_crashes_only(self):
        # Both entries target round 0; the guards read the *pre-decision*
        # view, so an alive pid matches the crash and never the restart —
        # the pair cannot become the crash+restart conflict the engine
        # rejects ("at most once per round").
        adversary = ScriptedFaults([(0, "crash", 3), (0, "restart", 3)])
        decision = adversary.round_start(make_view())
        assert decision.crashes == {3}
        assert decision.restarts == set()

    def test_crashed_pid_restarts_only(self):
        adversary = ScriptedFaults([(0, "crash", 3), (0, "restart", 3)])
        decision = adversary.round_start(make_view(crashed={3}))
        assert decision.crashes == set()
        assert decision.restarts == {3}

    def test_script_order_is_irrelevant(self):
        forward = ScriptedFaults([(0, "crash", 3), (0, "restart", 3)])
        reverse = ScriptedFaults([(0, "restart", 3), (0, "crash", 3)])
        view = make_view()
        assert forward.round_start(view).crashes == reverse.round_start(
            view
        ).crashes

    def test_engine_accepts_the_pair(self):
        # End to end: the engine's "crash or restart at most once" check
        # must not trip on a scripted same-round pair.
        engine = Engine(
            4,
            lambda pid: NodeBehavior(pid, 4),
            adversary=ScriptedFaults([(0, "crash", 1), (0, "restart", 1)]),
        )
        engine.run(2)
        assert not engine.shells[1].alive
