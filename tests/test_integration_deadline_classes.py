"""Deadline-class management end to end (Section 4.2).

Rumors with heterogeneous deadlines must land in their power-of-two
classes, run through per-class protocol instances without interference,
and all be delivered by their *original* (untrimmed) deadlines.
"""

import pytest

from repro.adversary.base import ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.core.deadlines import pipeline_deadline
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

N = 8


def run_mix(script, rounds, seed=0, params=None):
    resolved = params if params is not None else CongosParams()
    partitions = build_partition_set(N, resolved, seed)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        partitions.count, partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=resolved,
        seed=seed,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    engine = Engine(
        N,
        factory,
        ComposedAdversary([ScriptedWorkload(script, derive_rng(seed, "wl"))]),
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(rounds)
    return engine, delivery, confidentiality


class TestDeadlineClasses:
    def test_heterogeneous_deadlines_all_served(self):
        script = [
            (64, 0, 64, {3}),     # class 64
            (64, 1, 100, {4}),    # trimmed to class 64
            (64, 2, 300, {5}),    # class 256
            (70, 3, 900, {6}),    # class 512
            (72, 4, 20, {7}),     # below threshold: direct
        ]
        engine, delivery, confidentiality = run_mix(script, rounds=1100)
        report = delivery.report(engine)
        assert report.satisfied
        assert confidentiality.is_clean()

    def test_instances_created_per_class(self):
        script = [(64, 0, 64, {3}), (64, 1, 300, {4})]
        engine, *_ = run_mix(script, rounds=600)
        node = engine.behavior(0)
        assert set(node.instances) == {64, 256}

    def test_direct_rumors_create_no_instances(self):
        script = [(20, 0, 16, {3})]
        engine, delivery, _ = run_mix(script, rounds=60)
        node = engine.behavior(0)
        assert node.instances == {}
        assert delivery.report(engine).satisfied

    def test_trimmed_deadline_still_meets_original(self):
        """A 100-round deadline is trimmed to the 64-class; delivery must
        beat the original 100 (trivially, since it beats 64)."""
        assert pipeline_deadline(100, CongosParams(), N) == 64
        script = [(64, 0, 100, {3, 5})]
        engine, delivery, _ = run_mix(script, rounds=300)
        report = delivery.report(engine)
        assert report.satisfied
        assert max(report.latencies()) <= 64

    def test_classes_do_not_cross_contaminate(self):
        """A rumor's fragments must only ever travel in its own class's
        channels (instance isolation)."""
        script = [(64, 0, 64, {3}), (64, 1, 300, {4})]
        resolved = CongosParams()
        partitions = build_partition_set(N, resolved, 0)
        factory = congos_factory(N, params=resolved, seed=0, partition_set=partitions)
        engine = Engine(
            N,
            factory,
            ComposedAdversary([ScriptedWorkload(script, derive_rng(0, "wl"))]),
            seed=0,
        )
        engine.run(600)
        node3 = engine.behavior(3)
        # The 64-class fragment store at pid 3 must hold only the rid of
        # the 64-class rumor, and vice versa at pid 4.
        for (rid, partition), groups in node3.coordinator.fragment_store.items():
            assert rid.src == 0
        node4 = engine.behavior(4)
        for (rid, partition), groups in node4.coordinator.fragment_store.items():
            assert rid.src == 1

    def test_cap_trims_huge_deadlines(self):
        params = CongosParams(deadline_cap=128)
        script = [(64, 0, 10_000, {3})]
        engine, delivery, _ = run_mix(script, rounds=400, params=params)
        node = engine.behavior(0)
        assert set(node.instances) == {128}
        assert delivery.report(engine).satisfied
