"""Tests for repro.gossip.continuous: the continuous-gossip black box.

These drive a group of ContinuousGossip instances directly (no Engine) —
a minimal synchronous harness routes messages between them — so that the
black box's interface guarantees can be checked in isolation, exactly as
CONGOS consumes them.
"""

import random

import pytest

from repro.gossip.continuous import ContinuousGossip
from repro.sim.messages import ServiceTags


class GossipHarness:
    """Minimal synchronous loop over one gossip instance per scope member."""

    def __init__(self, scope, n=None, seed=0, **kwargs):
        self.scope = sorted(scope)
        self.n = n if n is not None else max(self.scope) + 1
        self.delivered = {pid: [] for pid in self.scope}
        self.services = {}
        self.sent = 0
        self.round = 0
        for pid in self.scope:
            self.services[pid] = ContinuousGossip(
                pid=pid,
                n=self.n,
                channel="test",
                scope=self.scope,
                rng=random.Random(seed * 1000 + pid),
                deliver=self._deliver_cb(pid),
                **kwargs,
            )

    def _deliver_cb(self, pid):
        def callback(round_no, item):
            self.delivered[pid].append((round_no, item))

        return callback

    def run_round(self, crashed=frozenset()):
        outgoing = []
        for pid in self.scope:
            if pid in crashed:
                continue
            outgoing.extend(self.services[pid].send_phase(self.round))
        self.sent += len(outgoing)
        inboxes = {pid: [] for pid in self.scope}
        for message in outgoing:
            if message.dst not in crashed and message.dst in inboxes:
                inboxes[message.dst].append(message)
        for pid in self.scope:
            if pid in crashed:
                continue
            for message in inboxes[pid]:
                self.services[pid].on_message(self.round, message)
            self.services[pid].end_round(self.round)
        self.round += 1

    def run(self, rounds, crashed=frozenset()):
        for _ in range(rounds):
            self.run_round(crashed)


class TestInjection:
    def test_self_delivery_immediate(self):
        harness = GossipHarness(range(4))
        harness.services[0].inject(0, "hello", deadline=4, dest=[0, 1])
        assert harness.delivered[0][0][1].payload == "hello"

    def test_no_self_delivery_outside_dest(self):
        harness = GossipHarness(range(4))
        harness.services[0].inject(0, "hello", deadline=4, dest=[1])
        assert harness.delivered[0] == []

    def test_duplicate_uid_rejected(self):
        harness = GossipHarness(range(4))
        harness.services[0].inject(0, "a", deadline=4, dest=[1], uid=("u",))
        with pytest.raises(ValueError):
            harness.services[0].inject(0, "b", deadline=4, dest=[1], uid=("u",))

    def test_zero_deadline_rejected(self):
        harness = GossipHarness(range(4))
        with pytest.raises(ValueError):
            harness.services[0].inject(0, "a", deadline=0, dest=[1])

    def test_dest_restricted_to_scope(self):
        harness = GossipHarness([0, 1, 2], n=8)
        item = harness.services[0].inject(0, "a", deadline=4, dest=range(8))
        assert item.dest == frozenset({0, 1, 2})

    def test_pid_outside_scope_rejected(self):
        with pytest.raises(ValueError):
            ContinuousGossip(
                pid=7,
                n=8,
                channel="x",
                scope=[0, 1],
                rng=random.Random(0),
            )


class TestSpreading:
    def test_saturates_group(self):
        harness = GossipHarness(range(16))
        harness.services[3].inject(0, "payload", deadline=12, dest=range(16))
        harness.run(12)
        for pid in range(16):
            assert harness.delivered[pid], "pid {} missed the item".format(pid)

    def test_only_dest_members_get_delivery(self):
        harness = GossipHarness(range(8))
        harness.services[0].inject(0, "payload", deadline=10, dest=[2, 5])
        harness.run(10)
        for pid in range(8):
            if pid in (2, 5):
                assert harness.delivered[pid]
            else:
                assert not harness.delivered[pid]

    def test_delivery_at_most_once(self):
        harness = GossipHarness(range(8))
        harness.services[0].inject(0, "payload", deadline=10, dest=range(8))
        harness.run(20)
        for pid in range(8):
            assert len(harness.delivered[pid]) == 1

    def test_items_expire(self):
        harness = GossipHarness(range(4))
        harness.services[0].inject(0, "payload", deadline=3, dest=range(4))
        harness.run(10)
        for pid in range(4):
            assert not harness.services[pid].has_active()

    def test_no_traffic_when_idle(self):
        harness = GossipHarness(range(8))
        harness.run(5)
        assert harness.sent == 0

    def test_two_concurrent_items_batched(self):
        harness = GossipHarness(range(8))
        harness.services[0].inject(0, "a", deadline=10, dest=range(8))
        harness.services[1].inject(0, "b", deadline=10, dest=range(8))
        harness.run(10)
        for pid in range(8):
            payloads = {item.payload for _, item in harness.delivered[pid]}
            assert payloads == {"a", "b"}

    def test_filter_never_fires_for_correct_build(self):
        harness = GossipHarness([0, 2, 4, 6], n=8)
        harness.services[0].inject(0, "a", deadline=8, dest=range(8))
        harness.run(8)
        for pid in harness.scope:
            assert harness.services[pid].filter.dropped == 0

    def test_expander_schedule_saturates(self):
        harness = GossipHarness(range(16), schedule="expander")
        harness.services[0].inject(0, "payload", deadline=14, dest=range(16))
        harness.run(14)
        for pid in range(16):
            assert harness.delivered[pid]

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            GossipHarness(range(4), schedule="quantum")


class TestReliableMode:
    def test_origin_flush_guarantees_delivery(self):
        """With reliable=True even a fanout-starved group delivers by the
        deadline (the origin flushes directly at expiry)."""
        harness = GossipHarness(range(12), fanout_scale=0.01, reliable=True)
        harness.services[0].inject(0, "must-arrive", deadline=5, dest=range(12))
        harness.run(6)
        for pid in range(12):
            assert harness.delivered[pid], "pid {} missed".format(pid)
            delivered_round = harness.delivered[pid][0][0]
            assert delivered_round <= 5

    def test_unreliable_mode_keeps_messages_lower(self):
        reliable = GossipHarness(range(16), seed=1, reliable=True, fanout_scale=0.01)
        unreliable = GossipHarness(range(16), seed=1, reliable=False, fanout_scale=0.01)
        for harness in (reliable, unreliable):
            harness.services[0].inject(0, "x", deadline=6, dest=range(16))
            harness.run(7)
        assert reliable.sent > unreliable.sent


class TestResendHorizon:
    def test_old_items_stop_being_sent(self):
        harness = GossipHarness(range(8), resend_horizon=2)
        harness.services[0].inject(0, "x", deadline=50, dest=range(8))
        harness.run(10)
        sent_after = harness.sent
        harness.run(10)
        assert harness.sent == sent_after  # horizon passed: radio silence

    def test_auto_horizon_reasonable(self):
        service = ContinuousGossip(
            pid=0, n=64, channel="x", scope=range(64), rng=random.Random(0)
        )
        assert service.resend_horizon >= 8


class TestCrashTolerance:
    def test_survivors_still_saturate(self):
        harness = GossipHarness(range(16), seed=3)
        harness.services[0].inject(0, "x", deadline=14, dest=range(16))
        crashed = frozenset({5, 6, 7, 8, 9})
        harness.run(14, crashed=crashed)
        for pid in range(16):
            if pid not in crashed:
                assert harness.delivered[pid]
