"""Unit tests for the array engine's bitset and batch kernels.

The whole file needs the ``repro[fast]`` extra; without numpy it skips
cleanly (tier-1 must pass either way — see test_fastcore_optional.py).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.fastcore import bitset
from repro.fastcore.kernels import (
    _EXACT_POOL_LIMIT,
    merge_shares,
    sample_rows,
    sample_targets_excluding_self,
    split_shares,
)


class TestBitset:
    def test_empty_and_full(self):
        for n in (1, 63, 64, 65, 200):
            assert bitset.popcount(bitset.empty(n)) == 0
            assert bitset.popcount(bitset.full(n)) == n
            assert list(bitset.to_indices(bitset.full(n), n)) == list(range(n))

    def test_from_to_indices_roundtrip(self):
        rng = np.random.default_rng(3)
        for n in (70, 130, 1024):
            members = np.sort(rng.choice(n, size=n // 3, replace=False))
            bits = bitset.from_indices(members, n)
            assert bitset.popcount(bits) == len(members)
            assert np.array_equal(bitset.to_indices(bits, n), members)

    def test_test_bits_membership(self):
        bits = bitset.from_indices([0, 5, 63, 64, 100], 128)
        probes = np.array([0, 1, 5, 63, 64, 99, 100, 127])
        got = bitset.test_bits(bits, probes)
        assert list(got) == [True, False, True, True, True, False, True, False]

    def test_set_algebra(self):
        n = 150
        a = bitset.from_indices([1, 2, 3, 70, 149], n)
        b = bitset.from_indices([2, 3, 4, 70], n)
        assert list(bitset.to_indices(bitset.intersect(a, b), n)) == [2, 3, 70]
        assert list(bitset.to_indices(bitset.andnot(a, b), n)) == [1, 149]
        assert bitset.is_subset(b, bitset.union_into(a.copy(), b))
        assert not bitset.is_subset(a, b)
        assert bitset.any_common(a, b)
        assert not bitset.any_common(a, bitset.from_indices([5, 90], n))

    def test_union_into_is_in_place(self):
        n = 64
        target = bitset.from_indices([1], n)
        out = bitset.union_into(target, bitset.from_indices([2], n))
        assert out is target
        assert list(bitset.to_indices(target, n)) == [1, 2]


class TestSplitShares:
    def test_shares_xor_back_to_payload(self):
        rng = np.random.default_rng(5)
        data = bytes(range(64))
        shares = split_shares(data, partitions=6, groups=3, rng=rng)
        assert shares.shape == (6, 3, 64)
        for p in range(6):
            assert merge_shares(shares[p]) == data

    def test_fresh_randomness_per_partition(self):
        rng = np.random.default_rng(5)
        shares = split_shares(b"\x00" * 32, partitions=4, groups=2, rng=rng)
        # With independent randomness, two partitions sharing the same
        # first-share bytes is astronomically unlikely.
        assert not np.array_equal(shares[0, 0], shares[1, 0])

    def test_single_group_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="at least 2"):
            split_shares(b"xy", partitions=2, groups=1, rng=rng)


class TestSampling:
    def test_sample_rows_distinct_small_pool(self):
        rng = np.random.default_rng(9)
        pool = np.arange(20, dtype=np.int64)
        rows = sample_rows(rng, pool, rows=200, k=6)
        assert rows.shape == (200, 6)
        for row in rows:
            assert len(set(row.tolist())) == 6
            assert set(row.tolist()) <= set(pool.tolist())

    def test_sample_rows_whole_pool_degenerate(self):
        rng = np.random.default_rng(9)
        pool = np.arange(4, dtype=np.int64)
        rows = sample_rows(rng, pool, rows=3, k=10)
        assert rows.shape == (3, 4)
        assert np.array_equal(rows[0], pool)

    def test_exclude_self_small_scope(self):
        rng = np.random.default_rng(11)
        scope = np.arange(32, dtype=np.int64)
        senders = np.arange(32, dtype=np.int64)
        picks = sample_targets_excluding_self(rng, scope, senders, 5)
        assert picks.shape == (32, 5)
        for pos, row in enumerate(picks):
            assert pos not in set(row.tolist())
            assert len(set(row.tolist())) == 5

    def test_exclude_self_large_scope(self):
        rng = np.random.default_rng(11)
        m = _EXACT_POOL_LIMIT + 64
        scope = np.arange(m, dtype=np.int64)
        senders = np.arange(m, dtype=np.int64)
        picks = sample_targets_excluding_self(rng, scope, senders, 6)
        assert picks.shape == (m, 6)
        for pos, row in enumerate(picks):
            assert pos not in set(row.tolist())
            assert max(row.tolist()) < m


class TestPerfRegistry:
    def test_fastcore_cases_registered_with_numpy(self):
        from repro.perf import case_keys, get_case

        keys = case_keys()
        for key in (
            "fastcore_bitset_membership",
            "fastcore_fragment_xor",
            "fastcore_fanout_sampling",
        ):
            assert key in keys
            case = get_case(key)
            assert "fastcore" in case.tags
            # Each setup must build a runnable op.
            assert case.setup()() is not None
