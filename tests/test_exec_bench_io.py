"""Tests for repro.exec.bench_io and the bench emit() sidecar."""

import json
import os

import pytest

from repro.exec.bench_io import (
    artifact_path,
    grid_payload,
    sweep_payload,
    write_bench_json,
)


class TestWriteBenchJson:
    def test_writes_envelope(self, tmp_path):
        path = write_bench_json(
            "e99_example",
            {"metrics": {"peak": 12}},
            results_dir=str(tmp_path),
        )
        assert os.path.basename(path) == "BENCH_e99_example.json"
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["name"] == "e99_example"
        assert data["schema"] == 1
        assert data["metrics"] == {"peak": 12}
        # timestamped: ISO-8601, parseable
        assert "T" in data["created"]

    def test_created_can_be_pinned(self, tmp_path):
        path = write_bench_json(
            "e99", {}, results_dir=str(tmp_path), created="2026-01-01T00:00:00Z"
        )
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["created"] == "2026-01-01T00:00:00Z"

    def test_payload_cannot_shadow_envelope(self, tmp_path):
        path = write_bench_json(
            "e99", {"name": "spoof", "x": 1}, results_dir=str(tmp_path)
        )
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["name"] == "e99"
        assert data["x"] == 1

    def test_creates_results_dir(self, tmp_path):
        nested = str(tmp_path / "deep" / "results")
        write_bench_json("e99", {}, results_dir=nested)
        assert os.path.exists(artifact_path("e99", nested))


class TestGridPayload:
    def test_zips_headers_and_rows(self):
        rows = grid_payload(["n", "peak"], [[8, 10], [16, 30]])
        assert rows == [{"n": 8, "peak": 10}, {"n": 16, "peak": 30}]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grid_payload(["n"], [[8, 10]])


class TestSweepPayload:
    def test_serializes_cells(self):
        from repro.analysis.sweeps import CellResult, SweepResult
        from repro.exec.results import RunRecord

        record = RunRecord(
            scenario="steady",
            n=8,
            rounds=100,
            seed=0,
            peak=10,
            total=50,
            total_size=50,
            mean_per_round=0.5,
            filtered=0,
            paths={"pipeline": 4},
            latencies=(3, 5),
        )
        sweep = SweepResult(
            cells=[CellResult(cell={"n": 8}, runs=[record])]
        )
        payload = sweep_payload(sweep)
        assert payload["all_satisfied"] is True
        cell = payload["cells"][0]
        assert cell["cell"] == {"n": 8}
        assert cell["peak"]["max"] == 10
        assert cell["latency"]["count"] == 2
        assert json.dumps(payload)  # JSON-serializable end to end

    def test_empty_latencies_serialize_as_none(self):
        from repro.analysis.sweeps import CellResult, SweepResult
        from repro.exec.results import RunRecord

        record = RunRecord(
            scenario="steady",
            n=8,
            rounds=100,
            seed=0,
            peak=10,
            total=50,
            total_size=50,
            mean_per_round=0.5,
            filtered=0,
        )
        payload = sweep_payload(
            SweepResult(cells=[CellResult(cell={"n": 8}, runs=[record])])
        )
        assert payload["cells"][0]["latency"] is None
