"""Tests for the LKH key-tree cost model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.baselines.key_tree import (
    KeyTreeCostModel,
    rekey_cost,
    subtree_cover,
    tree_height,
)


class TestTreeHeight:
    def test_powers_of_two(self):
        assert tree_height(2) == 1
        assert tree_height(8) == 3
        assert tree_height(64) == 6

    def test_non_powers_round_up(self):
        assert tree_height(9) == 4

    def test_single_leaf(self):
        assert tree_height(1) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            tree_height(0)


class TestSubtreeCover:
    def test_empty_set(self):
        assert subtree_cover(8, []) == []

    def test_full_set_is_root(self):
        assert subtree_cover(8, range(8)) == [(3, 0)]

    def test_aligned_half(self):
        assert subtree_cover(8, [0, 1, 2, 3]) == [(2, 0)]

    def test_singleton(self):
        assert subtree_cover(8, [5]) == [(0, 5)]

    def test_alternating_worst_case(self):
        cover = subtree_cover(16, range(0, 16, 2))
        assert len(cover) == 8
        assert all(level == 0 for level, _ in cover)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            subtree_cover(8, [9])

    def test_non_power_of_two_population(self):
        cover = subtree_cover(10, [8, 9])
        assert cover == [(3, 1)]

    def test_cover_size_bound(self):
        """Complete-subtree method: cover <= 2 |D| log(n/|D|) + O(|D|)."""
        n = 64
        dest = [1, 7, 20, 33, 40, 59]
        cover = subtree_cover(n, dest)
        bound = 2 * len(dest) * max(1, math.log2(n / len(dest))) + 2 * len(dest)
        assert len(cover) <= bound


@given(
    n=st.integers(min_value=2, max_value=64),
    data=st.data(),
)
def test_cover_partitions_destination_exactly(n, data):
    """Property: the cover's leaves are exactly the destination set."""
    dest = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    cover = subtree_cover(n, dest)
    covered = set()
    for level, index in cover:
        span = 1 << level
        leaves = set(range(index * span, min((index + 1) * span, n)))
        assert not leaves & covered, "cover entries must be disjoint"
        covered |= leaves
    assert covered == set(dest)


class TestRekeyCost:
    def test_formula(self):
        assert rekey_cost(64, 1) == 2 * 6
        assert rekey_cost(64, 5) == 5 * 2 * 6


class TestCostModel:
    def test_subset_cover_mode(self):
        model = KeyTreeCostModel(16, mode="subset-cover")
        cost = model.on_rumor(0, [1, 2, 3])
        assert cost == len(subtree_cover(16, [1, 2, 3]))
        assert model.report.rumors == 1

    def test_rekey_mode_first_rumor_pays_full_group(self):
        model = KeyTreeCostModel(16, mode="rekey")
        cost = model.on_rumor(0, [1, 2, 3])
        assert cost == rekey_cost(16, 3) + 1

    def test_rekey_mode_stable_group_cheap(self):
        model = KeyTreeCostModel(16, mode="rekey")
        model.on_rumor(0, [1, 2, 3])
        cost = model.on_rumor(0, [1, 2, 3])
        assert cost == 1  # no membership change: just the payload

    def test_rekey_mode_charges_symmetric_difference(self):
        model = KeyTreeCostModel(16, mode="rekey")
        model.on_rumor(0, [1, 2, 3])
        cost = model.on_rumor(0, [2, 3, 4])
        assert cost == rekey_cost(16, 2) + 1

    def test_rekey_mode_dynamic_groups_expensive(self):
        """The paper's claim: per-rumor random groups make re-keying
        dominate; a stable group amortises to ~1 message per rumor."""
        import random

        rng = random.Random(0)
        dynamic = KeyTreeCostModel(64, mode="rekey")
        stable = KeyTreeCostModel(64, mode="rekey")
        group = rng.sample(range(1, 64), 8)
        for _ in range(20):
            dynamic.on_rumor(0, rng.sample(range(1, 64), 8))
            stable.on_rumor(0, group)
        assert dynamic.report.total_messages > 5 * stable.report.total_messages

    def test_crash_rekeying(self):
        model = KeyTreeCostModel(16, mode="rekey")
        model.on_rumor(0, [1, 2])
        model.on_rumor(3, [1, 5])
        cost = model.on_crash(1)
        assert cost == 2 * rekey_cost(16, 1)
        assert model.report.churn_rekey_messages == cost

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            KeyTreeCostModel(8, mode="quantum")

    def test_summary(self):
        model = KeyTreeCostModel(8)
        model.on_rumor(0, [1])
        summary = model.report.summary()
        assert summary["rumors"] == 1
        assert summary["total"] >= 1
