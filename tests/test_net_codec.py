"""The wire codec: round-trips, determinism, interning, leak safety."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.confidential_gossip import DirectAck, DirectRumor
from repro.core.group_distribution import (
    DistributionShare,
    FragmentDelivery,
    GDShare,
)
from repro.core.proxy import ProxyAck, ProxyRequest, ProxyShare
from repro.core.splitting import Fragment
from repro.gossip.rumor import GossipItem, Rumor, RumorId
from repro.net.codec import (
    WIRE_TYPES,
    WIRE_VERSION,
    CodecError,
    decode_frame,
    decode_message,
    decode_tagged_messages,
    decode_value,
    encode_frame,
    encode_message,
    encode_tagged_messages,
    encode_value,
)
from repro.sim.messages import Message

pids = st.integers(min_value=0, max_value=63)
rounds = st.integers(min_value=0, max_value=1024)
blobs = st.binary(max_size=48)
dests = st.frozensets(pids, min_size=1, max_size=6)
rids = st.builds(RumorId, src=pids, seq=st.integers(0, 1 << 40))
rumors = st.builds(
    Rumor,
    rid=rids,
    data=blobs,
    deadline=st.integers(1, 512),
    dest=dests,
    injected_at=rounds,
)
fragments = st.integers(1, 8).flatmap(
    lambda total: st.builds(
        Fragment,
        rid=rids,
        src=pids,
        partition=st.integers(0, 7),
        group=st.integers(0, total - 1),
        total_groups=st.just(total),
        data=blobs,
        dest=dests,
        dline=st.integers(1, 256),
        expiry=rounds,
    )
)
hits = st.frozensets(st.tuples(pids, rids), max_size=5)

#: One strategy per registered wire type, same order as WIRE_TYPES.
payloads = st.one_of(
    rids,
    rumors,
    st.builds(
        GossipItem,
        uid=st.tuples(pids, st.integers(0, 1 << 20)),
        origin=pids,
        payload=st.one_of(st.none(), fragments, rumors),
        expiry=rounds,
        dest=dests,
        born=rounds,
    ),
    fragments,
    st.builds(
        ProxyRequest, sender=pids, fragments=st.tuples(fragments, fragments)
    ),
    st.builds(ProxyAck, sender=pids),
    st.builds(
        ProxyShare,
        sender=pids,
        fragments=st.tuples(fragments),
        failed_proxies=st.frozensets(pids, max_size=4),
        collaborator=st.booleans(),
    ),
    st.builds(FragmentDelivery, sender=pids, fragments=st.tuples(fragments)),
    st.builds(GDShare, sender=pids, hits=hits),
    st.builds(
        DistributionShare,
        sender=pids,
        dline=st.integers(1, 256),
        partition=st.integers(0, 7),
        group=st.integers(0, 7),
        hits=hits,
    ),
    st.builds(
        DirectRumor, rumor=rumors, path=st.sampled_from(["direct", "fallback"])
    ),
    st.builds(DirectAck, rid=rids, acker=pids),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 80), max_value=1 << 80),
    st.floats(allow_nan=False),
    st.binary(max_size=32),
    st.text(max_size=16),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)

messages = st.builds(
    Message,
    src=pids,
    dst=pids,
    service=st.sampled_from(["proxy", "gd", "gossip", "direct"]),
    payload=st.one_of(st.none(), payloads),
    size=st.integers(1, 64),
    channel=st.sampled_from(["", "gg:0:1", "ag"]),
)


@settings(max_examples=200, deadline=None)
@given(payloads)
def test_payload_round_trip(payload):
    assert decode_value(encode_value(payload)) == payload


@settings(max_examples=150, deadline=None)
@given(values)
def test_scalar_container_round_trip(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=100, deadline=None)
@given(messages)
def test_message_round_trip(message):
    decoded = decode_message(encode_message(message))
    assert (
        decoded.src,
        decoded.dst,
        decoded.service,
        decoded.payload,
        decoded.size,
        decoded.channel,
    ) == (
        message.src,
        message.dst,
        message.service,
        message.payload,
        message.size,
        message.channel,
    )


def test_encoding_is_deterministic():
    # Same logical value, different construction order: identical bytes.
    one = {"b": frozenset({3, 1, 2}), "a": (1, 2.5, b"x")}
    two = {"a": (1, 2.5, b"x"), "b": frozenset({2, 3, 1})}
    assert encode_value(one) == encode_value(two)


def test_wire_registry_covers_exact_dataclass_fields():
    # The codec writes exactly the declared fields of each payload type —
    # no attribute beyond what the dataclass (and its reveals()) defines
    # can ever reach the wire, and none can be silently dropped.
    for cls, fields in WIRE_TYPES:
        declared = tuple(f.name for f in dataclasses.fields(cls))
        assert fields == declared, cls.__name__


def test_unregistered_type_refused():
    class Rogue:
        secret = b"plaintext"

    with pytest.raises(CodecError, match="unregistered type"):
        encode_value(Rogue())
    with pytest.raises(CodecError, match="unregistered type"):
        encode_message(Message(0, 1, "gossip", Rogue()))


def test_control_frames_never_carry_rumor_bytes():
    # Control payloads reveal nothing in-process; their wire form must
    # not widen that.  A distinctive marker placed in surrounding rumor
    # state never appears in the encoded control traffic.
    marker = b"TOP-SECRET-MARKER"
    rid = RumorId(3, 7)
    for payload in (
        ProxyAck(sender=3),
        DirectAck(rid=rid, acker=5),
        GDShare(sender=3, hits=frozenset({(4, rid)})),
    ):
        wire = encode_message(Message(3, 4, "gd", payload))
        assert marker not in wire
    # Sanity inverse: a payload that DOES reveal the rumor carries it.
    rumor = Rumor(rid, marker, 64, frozenset({4}), 0)
    wire = encode_message(Message(3, 4, "direct", DirectRumor(rumor, "direct")))
    assert marker in wire


def test_telemetry_frame_round_trips_sanitized_batches():
    # Worker telemetry batches are (seq, kind, round, fields) tuples whose
    # fields were json_safe'd worker-side — scalars and flat containers
    # only, so they ride the closed allow-list codec unmodified.
    body = {
        "worker": 1,
        "round": 7,
        "events": [
            (0, "rumor_inject", 7, {"rid": "r0:0", "data": "<16 bytes>"}),
            (1, "rumor_deliver", 7, {"rid": "r0:0", "pid": 3, "path": "gd"}),
        ],
    }
    kind, decoded = decode_frame(encode_frame("telemetry", body))
    assert kind == "telemetry"
    assert decoded == body


def test_batch_interning_shares_one_payload_object():
    fragment = Fragment(
        RumorId(0, 1), 0, 0, 1, 2, b"share", frozenset({1, 2}), 64, 80
    )
    payload = FragmentDelivery(sender=0, fragments=(fragment,))
    entries = [
        ((0, seq), Message(0, dst, "gd", payload))
        for seq, dst in enumerate((1, 2, 3))
    ]
    blob = encode_tagged_messages(entries)
    decoded = decode_tagged_messages(blob)
    assert [key for key, _ in decoded] == [(0, 0), (0, 1), (0, 2)]
    first = decoded[0][1].payload
    assert all(entry[1].payload is first for entry in decoded)
    assert first == payload


def test_frame_round_trip_and_version_check():
    body = {
        "round": 3,
        "injections": [(2, Rumor(RumorId(2, 0), b"z", 32, frozenset({5}), 3))],
    }
    frame = encode_frame("round", body)
    kind, decoded = decode_frame(frame)
    assert kind == "round" and decoded == body

    with pytest.raises(CodecError, match="magic"):
        decode_frame(b"xx" + frame[2:])
    tampered = frame[:2] + bytes([WIRE_VERSION + 1]) + frame[3:]
    with pytest.raises(CodecError, match="version mismatch"):
        decode_frame(tampered)
    with pytest.raises(CodecError, match="trailing"):
        decode_frame(frame + b"\x00")
