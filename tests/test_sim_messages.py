"""Tests for repro.sim.messages: envelopes and knowledge atoms."""

import pytest

from repro.sim.messages import (
    Message,
    ServiceTags,
    debug_validation,
    fragment_atom,
    plaintext_atom,
    reveals_of,
    set_debug_validation,
    total_size,
)

from conftest import mk_message, mk_rumor


class TestMessage:
    def test_defaults(self):
        message = Message(src=0, dst=1, service=ServiceTags.BASELINE)
        assert message.size == 1
        assert message.channel == ""
        assert message.payload is None

    def test_negative_pid_rejected_with_debug_validation(self):
        previous = set_debug_validation(True)
        try:
            with pytest.raises(ValueError):
                Message(src=-1, dst=0, service="x")
        finally:
            set_debug_validation(previous)

    def test_negative_size_rejected_with_debug_validation(self):
        previous = set_debug_validation(True)
        try:
            with pytest.raises(ValueError):
                Message(src=0, dst=1, service="x", size=-1)
        finally:
            set_debug_validation(previous)

    def test_validation_deferred_by_default(self):
        # The per-construction checks are a debug aid; the mandatory
        # validation site is Network.route (see test_sim_network).
        assert not debug_validation()
        message = Message(src=-1, dst=0, service="x", size=-1)
        assert message.src == -1

    def test_set_debug_validation_returns_previous(self):
        previous = set_debug_validation(True)
        try:
            assert set_debug_validation(previous) is True
        finally:
            set_debug_validation(previous)

    def test_slots_no_dict(self):
        message = Message(src=0, dst=1, service="x")
        with pytest.raises(AttributeError):
            message.extra = 1

    def test_reveals_empty_for_control_payload(self):
        message = mk_message(payload={"control": True})
        assert list(message.reveals()) == []


class TestAtoms:
    def test_plaintext_atom_shape(self):
        assert plaintext_atom("r1") == ("plaintext", "r1")

    def test_fragment_atom_shape(self):
        assert fragment_atom("r1", 2, 0) == ("fragment", "r1", 2, 0)

    def test_atoms_hashable(self):
        assert {plaintext_atom("a"), fragment_atom("a", 0, 1)}


class TestRevealsOf:
    def test_none_reveals_nothing(self):
        assert list(reveals_of(None)) == []

    def test_rumor_reveals_plaintext(self):
        rumor = mk_rumor()
        assert list(reveals_of(rumor)) == [plaintext_atom(rumor.rid)]

    def test_tuple_recursion(self):
        rumors = (mk_rumor(seq=0), mk_rumor(seq=1))
        atoms = list(reveals_of(rumors))
        assert len(atoms) == 2

    def test_nested_collections(self):
        payload = [mk_rumor(seq=0), (mk_rumor(seq=1),)]
        assert len(list(reveals_of(payload))) == 2

    def test_plain_values_reveal_nothing(self):
        for payload in (42, "text", b"bytes", {"a": 1}):
            assert list(reveals_of(payload)) == []

    def test_custom_reveals_method(self):
        class Custom:
            def reveals(self):
                yield plaintext_atom("custom")

        assert list(reveals_of(Custom())) == [("plaintext", "custom")]


class TestTotalSize:
    def test_empty(self):
        assert total_size([]) == 0

    def test_sums_sizes(self):
        messages = [mk_message(size=2), mk_message(size=3)]
        assert total_size(messages) == 5


class TestServiceTags:
    def test_all_tags_unique(self):
        assert len(set(ServiceTags.ALL)) == len(ServiceTags.ALL)

    def test_known_tags_present(self):
        assert ServiceTags.PROXY in ServiceTags.ALL
        assert ServiceTags.GROUP_GOSSIP in ServiceTags.ALL
