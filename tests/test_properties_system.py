"""System-level property-based tests.

Hypothesis drives randomized fault schedules and workloads through the
full CONGOS stack; whatever it generates, the paper's two probability-1
invariants must hold:

* no confidentiality violation, ever;
* no admissible (rumor, destination) pair missed, ever.

These are the strongest tests in the suite — they explore corners no
hand-written scenario covers (crashes straddling block boundaries,
restarts immediately re-crashed, rumors injected the round before a
blackout, ...).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.base import Adversary, ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.sim.engine import Engine
from repro.sim.events import RoundDecision
from repro.sim.rng import derive_rng

N = 8
DEADLINE = 64
ROUNDS = 240


class HypothesisFaults(Adversary):
    """Replays a hypothesis-generated fault plan, keeping it legal."""

    def __init__(self, plan):
        # plan: list of (round, pid, "crash"|"restart")
        self.plan = {}
        for round_no, pid, kind in plan:
            self.plan.setdefault(round_no, []).append((pid, kind))

    def round_start(self, view):
        decision = RoundDecision()
        for pid, kind in self.plan.get(view.round, []):
            if pid in decision.crashes or pid in decision.restarts:
                continue
            if kind == "crash" and view.is_alive(pid):
                decision.crashes.add(pid)
            elif kind == "restart" and not view.is_alive(pid):
                decision.restarts.add(pid)
        return decision


fault_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ROUNDS - 1),
        st.integers(min_value=0, max_value=N - 1),
        st.sampled_from(["crash", "restart"]),
    ),
    max_size=24,
)

injections = st.lists(
    st.tuples(
        st.integers(min_value=32, max_value=ROUNDS - DEADLINE - 2),
        st.integers(min_value=0, max_value=N - 1),  # source
        st.sets(
            st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=4
        ),
    ),
    min_size=1,
    max_size=6,
)


def run_system(faults_plan, inject_plan, seed):
    params = CongosParams()
    partitions = build_partition_set(N, params, seed)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        partitions.count, partitions.num_groups
    )
    factory = congos_factory(
        N,
        params=params,
        seed=seed,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    # One injection per (round, source) at most; hypothesis may repeat.
    seen = set()
    script = []
    for round_no, src, dest in inject_plan:
        if (round_no, src) in seen:
            continue
        seen.add((round_no, src))
        script.append((round_no, src, DEADLINE, dest))
    workload = ScriptedWorkload(script, derive_rng(seed, "hyp"))
    adversary = ComposedAdversary([workload, HypothesisFaults(faults_plan)])
    engine = Engine(
        N,
        factory,
        adversary,
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(ROUNDS)
    return engine, delivery, confidentiality


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    faults_plan=fault_events,
    inject_plan=injections,
    seed=st.integers(min_value=0, max_value=50),
)
def test_invariants_under_random_faults(faults_plan, inject_plan, seed):
    engine, delivery, confidentiality = run_system(
        faults_plan, inject_plan, seed
    )
    report = delivery.report(engine)
    assert report.satisfied, report.summary()
    assert confidentiality.is_clean(), confidentiality.violation_counts()
    assert confidentiality.violation_counts()["multiplicity"] == 0


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    inject_plan=injections,
    seed=st.integers(min_value=0, max_value=20),
)
def test_fault_free_runs_never_fall_back(inject_plan, seed):
    """With no faults, the pipeline (not the fallback) serves everything
    injected after warm-up — w.h.p., but at these sizes effectively
    always; a fallback here would flag a protocol regression."""
    engine, delivery, confidentiality = run_system([], inject_plan, seed)
    report = delivery.report(engine)
    assert report.satisfied
    paths = report.path_counts()
    assert paths.get("shoot", 0) == 0, paths
