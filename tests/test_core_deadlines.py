"""Tests for repro.core.deadlines: trimming and instance classes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import CongosParams
from repro.core.deadlines import (
    PIPELINE_FLOOR,
    deadline_classes,
    min_pipeline_deadline,
    pipeline_deadline,
    round_down_power_of_two,
    trim_deadline,
)


class TestRoundDownPowerOfTwo:
    def test_exact_powers(self):
        for exponent in range(10):
            assert round_down_power_of_two(2 ** exponent) == 2 ** exponent

    def test_rounds_down(self):
        assert round_down_power_of_two(100) == 64
        assert round_down_power_of_two(127) == 64
        assert round_down_power_of_two(129) == 128

    def test_one(self):
        assert round_down_power_of_two(1) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            round_down_power_of_two(0)


@given(value=st.integers(min_value=1, max_value=10 ** 9))
def test_round_down_properties(value):
    result = round_down_power_of_two(value)
    assert result <= value < 2 * result
    assert result & (result - 1) == 0


class TestTrimDeadline:
    def test_cap_applies_first(self):
        assert trim_deadline(10_000, cap=200) == 128

    def test_no_cap_effect_below(self):
        assert trim_deadline(100, cap=200) == 64

    def test_never_increases(self):
        for deadline in (1, 5, 48, 100, 5000):
            assert trim_deadline(deadline, cap=1000) <= deadline

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            trim_deadline(0, 10)
        with pytest.raises(ValueError):
            trim_deadline(10, 0)


class TestPipelineDeadline:
    def test_short_deadline_direct(self):
        params = CongosParams()
        assert pipeline_deadline(48, params, 64) is None
        assert pipeline_deadline(10, params, 64) is None

    def test_long_deadline_trimmed(self):
        params = CongosParams()
        assert pipeline_deadline(100, params, 64) == 64
        assert pipeline_deadline(300, params, 64) == 256

    def test_boundary_at_threshold(self):
        params = CongosParams(direct_send_threshold=48)
        # 64 > 48: the smallest pipeline class.
        assert pipeline_deadline(64, params, 64) == 64
        assert pipeline_deadline(63, params, 64) is None

    def test_floor_enforced_even_with_tiny_threshold(self):
        params = CongosParams(direct_send_threshold=1)
        assert pipeline_deadline(32, params, 64) is None
        assert PIPELINE_FLOOR == 64

    def test_cap_respected(self):
        params = CongosParams(deadline_cap=128)
        assert pipeline_deadline(10_000, params, 64) == 128

    def test_trimmed_deadline_never_misses(self):
        """Delivering by the trimmed deadline delivers by the real one."""
        params = CongosParams()
        for deadline in range(49, 2000, 37):
            trimmed = pipeline_deadline(deadline, params, 64)
            if trimmed is not None:
                assert trimmed <= deadline


class TestMinPipelineDeadline:
    def test_default_is_64(self):
        assert min_pipeline_deadline(CongosParams()) == 64

    def test_larger_threshold_pushes_up(self):
        params = CongosParams(direct_send_threshold=64)
        assert min_pipeline_deadline(params) == 128


class TestDeadlineClasses:
    def test_classes_are_powers_of_two(self):
        params = CongosParams(deadline_cap=2048)
        classes = deadline_classes(params, 64)
        assert classes == [64, 128, 256, 512, 1024, 2048]

    def test_loglog_many_classes(self):
        """O(log log n)-ish class counts at the default cap."""
        params = CongosParams()
        assert len(deadline_classes(params, 64)) <= 12

    def test_every_pipeline_deadline_lands_in_a_class(self):
        params = CongosParams(deadline_cap=1024)
        classes = set(deadline_classes(params, 32))
        for deadline in range(49, 5000, 101):
            trimmed = pipeline_deadline(deadline, params, 32)
            if trimmed is not None:
                assert trimmed in classes
