"""Tests for repro.core.deadlines: trimming and instance classes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import CongosParams
from repro.core.deadlines import (
    PIPELINE_FLOOR,
    deadline_classes,
    goes_direct,
    min_pipeline_deadline,
    pipeline_deadline,
    round_down_power_of_two,
    trim_deadline,
)


class TestRoundDownPowerOfTwo:
    def test_exact_powers(self):
        for exponent in range(10):
            assert round_down_power_of_two(2 ** exponent) == 2 ** exponent

    def test_rounds_down(self):
        assert round_down_power_of_two(100) == 64
        assert round_down_power_of_two(127) == 64
        assert round_down_power_of_two(129) == 128

    def test_one(self):
        assert round_down_power_of_two(1) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            round_down_power_of_two(0)


@given(value=st.integers(min_value=1, max_value=10 ** 9))
def test_round_down_properties(value):
    result = round_down_power_of_two(value)
    assert result <= value < 2 * result
    assert result & (result - 1) == 0


class TestTrimDeadline:
    def test_cap_applies_first(self):
        assert trim_deadline(10_000, cap=200) == 128

    def test_no_cap_effect_below(self):
        assert trim_deadline(100, cap=200) == 64

    def test_never_increases(self):
        for deadline in (1, 5, 48, 100, 5000):
            assert trim_deadline(deadline, cap=1000) <= deadline

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            trim_deadline(0, 10)
        with pytest.raises(ValueError):
            trim_deadline(10, 0)


class TestPipelineDeadline:
    def test_short_deadline_direct(self):
        params = CongosParams()
        assert pipeline_deadline(48, params, 64) is None
        assert pipeline_deadline(10, params, 64) is None

    def test_long_deadline_trimmed(self):
        params = CongosParams()
        assert pipeline_deadline(100, params, 64) == 64
        assert pipeline_deadline(300, params, 64) == 256

    def test_boundary_at_threshold(self):
        params = CongosParams(direct_send_threshold=48)
        # 64 > 48: the smallest pipeline class.
        assert pipeline_deadline(64, params, 64) == 64
        assert pipeline_deadline(63, params, 64) is None

    def test_floor_enforced_even_with_tiny_threshold(self):
        params = CongosParams(direct_send_threshold=1)
        assert pipeline_deadline(32, params, 64) is None
        assert PIPELINE_FLOOR == 64

    def test_cap_respected(self):
        params = CongosParams(deadline_cap=128)
        assert pipeline_deadline(10_000, params, 64) == 128

    def test_trimmed_deadline_never_misses(self):
        """Delivering by the trimmed deadline delivers by the real one."""
        params = CongosParams()
        for deadline in range(49, 2000, 37):
            trimmed = pipeline_deadline(deadline, params, 64)
            if trimmed is not None:
                assert trimmed <= deadline


class TestTrimEdgeCases:
    """Boundary cases of the trim → direct/pipeline decision."""

    def test_trimmed_exactly_at_threshold_goes_direct(self):
        # Threshold 64 is itself a power of two, so deadlines 64..127 all
        # trim to exactly the threshold — "does not exceed" must include
        # equality (Section 5 analyses dline > threshold).
        params = CongosParams(direct_send_threshold=64)
        for deadline in (64, 100, 127):
            assert trim_deadline(deadline, params.effective_deadline_cap(64)) == 64
            assert pipeline_deadline(deadline, params, 64) is None
            assert goes_direct(deadline, params, 64)
        # One past the trim boundary lands in the next class.
        assert pipeline_deadline(128, params, 64) == 128
        assert not goes_direct(128, params, 64)

    def test_trimmed_just_below_pipeline_floor_goes_direct(self):
        # With a tiny threshold, a deadline trimming to 32 clears the
        # threshold but not the floor: the block pipeline needs dline >=
        # PIPELINE_FLOOR, so the rumor still goes direct.
        params = CongosParams(direct_send_threshold=2)
        for deadline in (32, 63):
            trimmed = trim_deadline(deadline, params.effective_deadline_cap(64))
            assert params.direct_send_threshold < trimmed < PIPELINE_FLOOR
            assert pipeline_deadline(deadline, params, 64) is None
            assert goes_direct(deadline, params, 64)
        assert pipeline_deadline(PIPELINE_FLOOR, params, 64) == PIPELINE_FLOOR

    def test_threshold_one_boundary(self):
        # threshold=1 is the smallest value config.py accepts; deadline 1
        # trims to 1 <= threshold and must go direct, while the floor
        # still rules everything below 64.
        params = CongosParams(direct_send_threshold=1)
        assert goes_direct(1, params, 64)
        assert pipeline_deadline(1, params, 64) is None
        assert min_pipeline_deadline(params) == PIPELINE_FLOOR
        assert pipeline_deadline(PIPELINE_FLOOR, params, 64) == PIPELINE_FLOOR
        with pytest.raises(ValueError):
            CongosParams(direct_send_threshold=0)

    def test_goes_direct_matches_pipeline_deadline(self):
        params = CongosParams()
        for deadline in range(1, 300, 7):
            assert goes_direct(deadline, params, 64) == (
                pipeline_deadline(deadline, params, 64) is None
            )


class TestMinPipelineDeadline:
    def test_default_is_64(self):
        assert min_pipeline_deadline(CongosParams()) == 64

    def test_larger_threshold_pushes_up(self):
        params = CongosParams(direct_send_threshold=64)
        assert min_pipeline_deadline(params) == 128


class TestDeadlineClasses:
    def test_classes_are_powers_of_two(self):
        params = CongosParams(deadline_cap=2048)
        classes = deadline_classes(params, 64)
        assert classes == [64, 128, 256, 512, 1024, 2048]

    def test_loglog_many_classes(self):
        """O(log log n)-ish class counts at the default cap."""
        params = CongosParams()
        assert len(deadline_classes(params, 64)) <= 12

    def test_every_pipeline_deadline_lands_in_a_class(self):
        params = CongosParams(deadline_cap=1024)
        classes = set(deadline_classes(params, 32))
        for deadline in range(49, 5000, 101):
            trimmed = pipeline_deadline(deadline, params, 32)
            if trimmed is not None:
                assert trimmed in classes
