"""Tests for repro.obs.sink and the Telemetry fan-out."""

import io
import json

import pytest

from repro.obs.events import ObsEvent
from repro.obs.instrument import NULL_TELEMETRY, Telemetry
from repro.obs.sink import CollectSink, JsonlSink, RingBufferSink


def mk_event(round_no=0, **fields):
    return ObsEvent.make("test_event", round_no, **fields)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path=path) as sink:
            sink.write(mk_event(1, pid=0))
            sink.write(mk_event(2, pid=1))
            assert sink.emitted == 2
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["round"] == 1
        assert json.loads(lines[1])["pid"] == 1

    def test_stream_variant_left_open(self):
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        sink.write(mk_event())
        sink.close()
        assert not stream.closed  # caller owns the stream
        assert json.loads(stream.getvalue())["kind"] == "test_event"

    def test_write_after_close_rejected(self):
        sink = JsonlSink(stream=io.StringIO())
        sink.close()
        with pytest.raises(ValueError):
            sink.write(mk_event())

    def test_exactly_one_target_required(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink()
        with pytest.raises(ValueError):
            JsonlSink(path=str(tmp_path / "x"), stream=io.StringIO())


class TestRingBufferSink:
    def test_keeps_only_the_tail(self):
        ring = RingBufferSink(capacity=3)
        for round_no in range(5):
            ring.write(mk_event(round_no))
        assert ring.seen == 5
        assert ring.dropped == 2
        assert [event.round_no for event in ring.events()] == [2, 3, 4]

    def test_drain_to_jsonl(self):
        ring = RingBufferSink(capacity=2)
        ring.write(mk_event(0))
        ring.write(mk_event(1))
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        assert ring.drain_to(sink) == 2
        assert ring.events() == []
        assert len(stream.getvalue().splitlines()) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestTelemetryFanOut:
    def test_emit_reaches_sinks_and_subscribers(self):
        collect = CollectSink()
        seen = []

        class Subscriber:
            def on_event(self, event):
                seen.append(event.kind)

        telemetry = Telemetry(sinks=[collect])
        telemetry.subscribe(Subscriber())
        telemetry.emit("rumor_inject", 3, rid="r0:0")
        assert telemetry.enabled
        assert telemetry.emitted == 1
        assert [event.kind for event in collect.events] == ["rumor_inject"]
        assert seen == ["rumor_inject"]

    def test_null_telemetry_is_inert(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.emit("x", 0, pid=1) is None
        with pytest.raises(ValueError):
            NULL_TELEMETRY.add_sink(CollectSink())
        with pytest.raises(ValueError):
            NULL_TELEMETRY.subscribe(object())

    def test_close_closes_closable_sinks(self):
        stream = io.StringIO()
        jsonl = JsonlSink(stream=stream)
        telemetry = Telemetry(sinks=[jsonl, CollectSink()])
        telemetry.close()  # CollectSink has no close(); must not raise
        with pytest.raises(ValueError):
            jsonl.write(mk_event())
