"""Tests for repro.obs.sink and the Telemetry fan-out."""

import io
import json

import pytest

from repro.obs.events import ObsEvent
from repro.obs.instrument import NULL_TELEMETRY, Telemetry
from repro.obs.sink import (
    CollectSink,
    JsonlSink,
    RingBufferSink,
    SequenceSink,
)


class FlushCountingStream(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


def mk_event(round_no=0, **fields):
    return ObsEvent.make("test_event", round_no, **fields)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path=path) as sink:
            sink.write(mk_event(1, pid=0))
            sink.write(mk_event(2, pid=1))
            assert sink.emitted == 2
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["round"] == 1
        assert json.loads(lines[1])["pid"] == 1

    def test_stream_variant_left_open(self):
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        sink.write(mk_event())
        sink.close()
        assert not stream.closed  # caller owns the stream
        assert json.loads(stream.getvalue())["kind"] == "test_event"

    def test_write_after_close_rejected(self):
        sink = JsonlSink(stream=io.StringIO())
        sink.close()
        with pytest.raises(ValueError):
            sink.write(mk_event())

    def test_exactly_one_target_required(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink()
        with pytest.raises(ValueError):
            JsonlSink(path=str(tmp_path / "x"), stream=io.StringIO())

    def test_close_flushes_non_owned_streams(self):
        stream = FlushCountingStream()
        sink = JsonlSink(stream=stream)
        sink.write(mk_event())
        assert stream.flushes == 0
        sink.close()
        assert stream.flushes == 1
        assert not stream.closed

    def test_context_manager_closes_on_exit(self):
        stream = FlushCountingStream()
        with JsonlSink(stream=stream) as sink:
            sink.write(mk_event())
        assert stream.flushes == 1
        with pytest.raises(ValueError):
            sink.write(mk_event())

    def test_flush_every_forces_periodic_flushes(self):
        stream = FlushCountingStream()
        sink = JsonlSink(stream=stream, flush_every=2)
        for round_no in range(5):
            sink.write(mk_event(round_no))
        # Flushed after events 2 and 4; the tail waits for close().
        assert stream.flushes == 2
        sink.close()
        assert stream.flushes == 3

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError):
            JsonlSink(stream=io.StringIO(), flush_every=0)


class TestSequenceSink:
    def test_seq_is_monotonic_across_drains(self):
        sink = SequenceSink()
        sink.write(mk_event(0))
        sink.write(mk_event(0))
        first = sink.drain()
        assert [seq for seq, _ in first] == [0, 1]
        assert len(sink) == 0
        # The sequence never resets — (round, seq) stays a total order
        # over the emitter's whole stream, drain after drain.
        sink.write(mk_event(1))
        second = sink.drain()
        assert [seq for seq, _ in second] == [2]
        assert sink.seen == 3
        assert sink.drain() == []


class TestRingBufferSink:
    def test_keeps_only_the_tail(self):
        ring = RingBufferSink(capacity=3)
        for round_no in range(5):
            ring.write(mk_event(round_no))
        assert ring.seen == 5
        assert ring.dropped == 2
        assert [event.round_no for event in ring.events()] == [2, 3, 4]

    def test_drain_to_jsonl(self):
        ring = RingBufferSink(capacity=2)
        ring.write(mk_event(0))
        ring.write(mk_event(1))
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        assert ring.drain_to(sink) == 2
        assert ring.events() == []
        assert len(stream.getvalue().splitlines()) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestTelemetryFanOut:
    def test_emit_reaches_sinks_and_subscribers(self):
        collect = CollectSink()
        seen = []

        class Subscriber:
            def on_event(self, event):
                seen.append(event.kind)

        telemetry = Telemetry(sinks=[collect])
        telemetry.subscribe(Subscriber())
        telemetry.emit("rumor_inject", 3, rid="r0:0")
        assert telemetry.enabled
        assert telemetry.emitted == 1
        assert [event.kind for event in collect.events] == ["rumor_inject"]
        assert seen == ["rumor_inject"]

    def test_null_telemetry_is_inert(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.emit("x", 0, pid=1) is None
        with pytest.raises(ValueError):
            NULL_TELEMETRY.add_sink(CollectSink())
        with pytest.raises(ValueError):
            NULL_TELEMETRY.subscribe(object())

    def test_close_closes_closable_sinks(self):
        stream = io.StringIO()
        jsonl = JsonlSink(stream=stream)
        telemetry = Telemetry(sinks=[jsonl, CollectSink()])
        telemetry.close()  # CollectSink has no close(); must not raise
        with pytest.raises(ValueError):
            jsonl.write(mk_event())
