"""Array kernels: batched XOR splitting and fanout sampling.

These are the three inner loops of the array engine, factored out so the
``repro.perf`` microbench registry can pin their cost:

* :func:`split_shares` — XOR secret-split one payload into ``(P, G)``
  shares for all partitions at once (Section 4.1, vectorized);
* :func:`merge_shares` — XOR-fold one partition's shares back;
* :func:`sample_rows` — per-sender distinct fanout sampling as one
  argpartition over a random matrix (small pools), with a
  with-replacement fast path for large pools where collisions are
  negligible and only the *count* of sends is observable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "split_shares",
    "merge_shares",
    "sample_rows",
    "sample_targets_excluding_self",
]

# Pools at or below this size get exact distinct-per-row sampling (the
# object engine's rng.sample semantics); larger pools use independent
# draws — at fanout k from a pool of m >> k the probability of a repeated
# target per row is O(k^2/m) and a repeat only slows the epidemic by the
# one duplicated edge, never changes message counts.
_EXACT_POOL_LIMIT = 192


def split_shares(data: bytes, partitions: int, groups: int, rng) -> np.ndarray:
    """XOR-split ``data`` into ``groups`` shares per partition, batched.

    Returns a ``(partitions, groups, len(data))`` uint8 array where each
    partition's shares XOR back to ``data`` and every proper subset is
    uniform (fresh randomness per partition, as Lemma 3 requires).
    """
    if groups < 2:
        raise ValueError("need at least 2 fragments for secrecy")
    length = len(data)
    payload = np.frombuffer(data, dtype=np.uint8)
    shares = np.empty((partitions, groups, length), dtype=np.uint8)
    if partitions == 0:
        return shares
    shares[:, : groups - 1] = rng.integers(
        0, 256, size=(partitions, groups - 1, length), dtype=np.uint8
    )
    last = np.broadcast_to(payload, (partitions, length)).copy()
    for g in range(groups - 1):
        np.bitwise_xor(last, shares[:, g], out=last)
    shares[:, groups - 1] = last
    return shares


def merge_shares(shares: np.ndarray) -> bytes:
    """XOR-fold one partition's ``(groups, length)`` shares to the payload."""
    return np.bitwise_xor.reduce(shares, axis=0).tobytes()


def sample_rows(rng, pool: np.ndarray, rows: int, k: int) -> np.ndarray:
    """``rows`` independent samples of ``k`` distinct elements of ``pool``.

    Returns a ``(rows, k)`` array.  ``k == len(pool)`` degenerates to the
    whole pool per row (the object engine sends to the full pool then).
    """
    m = len(pool)
    if k >= m:
        return np.broadcast_to(pool, (rows, m))
    if m <= _EXACT_POOL_LIMIT:
        keys = rng.random((rows, m))
        picks = np.argpartition(keys, k - 1, axis=1)[:, :k]
        return pool[picks]
    return pool[rng.integers(0, m, size=(rows, k))]


def sample_targets_excluding_self(
    rng, scope: np.ndarray, sender_pos: np.ndarray, k: int
) -> np.ndarray:
    """Per-sender gossip targets: ``k`` picks from ``scope`` minus self.

    ``sender_pos`` holds each sender's own position within ``scope``.
    Small scopes sample exactly (distinct per row); large scopes draw
    independently from the ``len(scope) - 1`` non-self positions and
    shift past the sender's own slot.
    """
    m = len(scope)
    rows = len(sender_pos)
    if m - 1 <= _EXACT_POOL_LIMIT:
        keys = rng.random((rows, m))
        # Push each sender's own position past the cut so it is never picked.
        keys[np.arange(rows), sender_pos] = 2.0
        picks = np.argpartition(keys, k - 1, axis=1)[:, :k]
        return scope[picks]
    draws = rng.integers(0, m - 1, size=(rows, k))
    draws += draws >= sender_pos[:, None]
    return scope[draws]
