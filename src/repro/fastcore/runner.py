"""Audited scenario runner for the array engine.

``run_array_scenario`` mirrors :func:`repro.harness.runner.run_congos_scenario`
— same ``Scenario`` in, same :class:`RunResult` out — with the object
engine swapped for :class:`repro.fastcore.engine.ArrayEngine`.  The
delivery auditor, QoD report, event log and stats surfaces are the real
ones; only the confidentiality auditor is the bitset mirror (it audits
the array engine's delivered stream directly).

Scenario features outside the array engine's scope raise
:class:`UnsupportedScenario` eagerly with a pointer back to the object
engine, so a mis-routed run fails loudly instead of quietly diverging.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.audit.delivery import DeliveryAuditor
from repro.audit.failfast import FailFastMonitor
from repro.sim.rng import derive_rng

from repro.fastcore import require_numpy

__all__ = ["run_array_scenario"]


_UNSUPPORTED = "engine='array' does not support {}; use the object engine"


def _check_scope(scenario) -> None:
    params = scenario.params
    reasons = []
    if scenario.fault_factory is not None:
        reasons.append("fault_factory adversaries")
    if scenario.fault_spec() is not None:
        reasons.append("the chaos fault plane")
    if scenario.targeted_spec() is not None:
        reasons.append("targeted fault policies")
    if scenario.backend != "inproc":
        reasons.append("backend={!r}".format(scenario.backend))
    if params.gossip_schedule != "random":
        reasons.append("gossip_schedule={!r}".format(params.gossip_schedule))
    if params.gossip_reliable:
        reasons.append("gossip_reliable")
    if params.gossip_resend_backoff:
        reasons.append("gossip_resend_backoff")
    if params.proxy_retransmit:
        reasons.append("proxy_retransmit")
    if params.direct_send_reliable:
        reasons.append("the reliable direct-send layer")
    if params.gd_redundancy != 1:
        reasons.append("gd_redundancy != 1")
    if params.gd_target_pool != "destinations":
        reasons.append("gd_target_pool={!r}".format(params.gd_target_pool))
    if reasons:
        from repro.fastcore.engine import UnsupportedScenario

        raise UnsupportedScenario(_UNSUPPORTED.format(", ".join(reasons)))


def run_array_scenario(
    scenario,
    observers: Iterable[object] = (),
    partition_set=None,
    telemetry=None,
):
    """Run a fault-free CONGOS scenario on the vectorized array engine."""
    require_numpy()
    # Imported lazily behind the numpy gate: tier-1 without the
    # ``repro[fast]`` extra must never touch these modules.
    from repro.core.congos import build_partition_set
    from repro.fastcore.engine import ArrayEngine, FastConfidentialityAuditor
    from repro.harness.runner import RunResult

    _check_scope(scenario)
    if telemetry is not None and getattr(telemetry, "enabled", False):
        raise ValueError(
            "engine='array' has no per-message telemetry hooks; "
            "run traced scenarios on the object engine"
        )
    resolved_partitions = (
        partition_set
        if partition_set is not None
        else build_partition_set(scenario.n, scenario.params, scenario.seed)
    )
    delivery = DeliveryAuditor()
    confidentiality = FastConfidentialityAuditor(
        num_partitions=resolved_partitions.count,
        num_groups=resolved_partitions.num_groups,
    )
    workload = None
    if scenario.workload_factory is not None:
        workload = scenario.workload_factory(
            derive_rng(scenario.seed, "workload", scenario.name)
        )
    adversary = workload if workload is not None else _NullAdversary()
    all_observers = [delivery, *observers]
    if scenario.failfast == "confidentiality":
        all_observers.append(FailFastMonitor(confidentiality))
    elif scenario.failfast == "qod":
        all_observers.append(FailFastMonitor(confidentiality, delivery=delivery))
    engine = ArrayEngine(
        n=scenario.n,
        params=scenario.params,
        partition_set=resolved_partitions,
        seed=scenario.seed,
        adversary=adversary,
        record_delivery=delivery.record_delivery,
        auditor=confidentiality,
        observers=all_observers,
    )
    engine.run(scenario.rounds)
    engine.finalize()
    qod = delivery.report(engine)
    return RunResult(
        scenario=scenario,
        engine=engine,
        stats=engine.stats,
        qod=qod,
        confidentiality=confidentiality,
        delivery=delivery,
        workload=workload,
        partition_set=resolved_partitions,
        fault_plane=None,
    )


class _NullAdversary:
    """No injections, no faults (scenarios driven purely by observers)."""

    def round_start(self, view):
        from repro.sim.events import RoundDecision

        return RoundDecision()
