"""Packed ``uint64`` bitsets over the pid universe ``[0, n)``.

The array engine keeps every membership set — groups, item holders,
destination sets, hit sets — as a little word array (``(n + 63) // 64``
``uint64`` words), so unions, intersections and subset tests are a
handful of SIMD ops regardless of ``n``.  ``numpy >= 2.0`` gives us a
native popcount (``np.bitwise_count``); conversions to index arrays go
through ``np.unpackbits`` on the byte view.

All helpers are pure functions over plain arrays; the module imports
numpy eagerly and is only loaded behind :func:`repro.fastcore.require_numpy`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "n_words",
    "empty",
    "full",
    "from_indices",
    "to_indices",
    "popcount",
    "test_bits",
    "union_into",
    "andnot",
    "intersect",
    "is_subset",
    "any_common",
]

_WORD_BITS = 64


def n_words(n: int) -> int:
    """Words needed for ``n`` bits."""
    return (n + _WORD_BITS - 1) // _WORD_BITS


def empty(n: int) -> np.ndarray:
    """The empty set over ``[0, n)``."""
    return np.zeros(n_words(n), dtype=np.uint64)


def full(n: int) -> np.ndarray:
    """The full set ``{0, ..., n-1}``."""
    bits = np.full(n_words(n), np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = n % _WORD_BITS
    if tail:
        bits[-1] = np.uint64((1 << tail) - 1)
    return bits


def from_indices(indices, n: int) -> np.ndarray:
    """Pack an index array into a bitset."""
    bits = empty(n)
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size:
        np.bitwise_or.at(
            bits, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64)
        )
    return bits


def to_indices(bits: np.ndarray, n: int) -> np.ndarray:
    """Unpack a bitset into a sorted int64 index array."""
    flat = np.unpackbits(bits.view(np.uint8), bitorder="little")[:n]
    return np.flatnonzero(flat).astype(np.int64)


def popcount(bits: np.ndarray) -> int:
    """Number of set bits."""
    return int(np.bitwise_count(bits).sum())


def test_bits(bits: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Boolean membership of each index in the bitset."""
    idx = np.asarray(indices, dtype=np.int64)
    return (bits[idx >> 6] >> (idx & 63).astype(np.uint64)) & np.uint64(1) != 0


def union_into(target: np.ndarray, source: np.ndarray) -> np.ndarray:
    """``target |= source`` in place; returns ``target``."""
    np.bitwise_or(target, source, out=target)
    return target


def andnot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a & ~b`` (set difference)."""
    return a & ~b


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a & b``."""
    return a & b


def is_subset(a: np.ndarray, b: np.ndarray) -> bool:
    """True when every bit of ``a`` is set in ``b``."""
    return not np.any(a & ~b)


def any_common(a: np.ndarray, b: np.ndarray) -> bool:
    """True when the sets intersect."""
    return bool(np.any(a & b))
