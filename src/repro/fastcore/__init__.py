"""repro.fastcore — the numpy-backed vectorized round kernel.

The object engine (:mod:`repro.sim.engine` + :mod:`repro.core.congos`)
models every process and every message as a Python object; PR 5 tuned
that model to its ceiling.  This package replaces the per-pid inner loop
with array kernels — packed ``uint64`` bitset group membership, batched
fragment XOR over contiguous payload arrays, array-based fanout sampling
and vectorized expiry sweeps — behind the same run surfaces
(``Scenario`` / ``RunResult`` / ``repro.api``), selected with
``engine="array"``.

Correctness contract (DESIGN.md §11): *equivalence mode*.  The array
engine reproduces the protocol's per-round structure and message counts
exactly and its randomized dynamics statistically — the gate is
distributional parity of E6/E11 delivery/QoD metrics against the object
engine plus a clean confidentiality audit, not rng-stream identity.

numpy rides the ``repro[fast]`` extra; importing :mod:`repro` (and the
whole tier-1 suite) works without it.  Only actually selecting
``engine="array"`` requires the extra.
"""

from __future__ import annotations

__all__ = ["numpy_available", "require_numpy"]

_NUMPY_HINT = (
    "engine='array' needs numpy, which is not installed. "
    "Install the fast-engine extra: pip install repro[fast]"
)


def numpy_available() -> bool:
    """True when the ``repro[fast]`` extra's numpy is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import and return numpy, or raise an ImportError naming the extra."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ImportError(_NUMPY_HINT) from exc
    return numpy
