"""Statistical-parity gate: array engine vs object engine.

The array engine's correctness contract is *equivalence mode* (DESIGN.md
§11): same protocol schedule, statistically indistinguishable dynamics.
This module is the reusable gate behind that contract — it runs the same
pinned-seed scenario on both engines and compares

* the **delivery-latency distribution** (delivery round − injection
  round, over all admissible (rumor, pid) pairs) with a two-sample
  Kolmogorov–Smirnov distance,
* the **per-round message-count distribution** (KS again, over rounds),
* per-service message totals (relative error), and
* the hard invariants: both runs deliver the same (rid, pid) pairs with
  zero QoD misses and a clean confidentiality audit.

Thresholds were calibrated on the E6/E11 deadline-64 cells: seed-to-seed
*within* the object engine the latency KS is ~0 (latency is pinned by
the block schedule) and the round-count KS lands around 0.1 for these
run lengths, so the defaults (0.2 / 0.25) reject engine-level drift
without flagging ordinary sampling noise.  Future engines (or a future
exact-parity mode) can reuse :class:`ParityGate` with tighter bounds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CongosParams
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import steady_scenario

__all__ = [
    "ParityGate",
    "ParityReport",
    "default_parity_cells",
    "ks_distance",
    "run_parity_gate",
]


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov distance (max ECDF gap), pure python."""
    if not a or not b:
        return 1.0 if a or b else 0.0
    xs = sorted(a)
    ys = sorted(b)
    gap = 0.0
    i = j = 0
    while i < len(xs) or j < len(ys):
        if j >= len(ys) or (i < len(xs) and xs[i] <= ys[j]):
            value = xs[i]
        else:
            value = ys[j]
        # Step both ECDFs past every sample tied at this value before
        # measuring the gap — ties must move together or identical
        # distributions show phantom distance.
        while i < len(xs) and xs[i] == value:
            i += 1
        while j < len(ys) and ys[j] == value:
            j += 1
        gap = max(gap, abs(i / len(xs) - j / len(ys)))
    return gap


def _latencies(result) -> List[int]:
    """Delivery-round offsets for every delivered (rid, pid) pair."""
    injected = result.delivery.injection_rounds
    return sorted(
        round_no - injected[rid]
        for (rid, _pid), (round_no, _data, _path) in
        result.delivery.deliveries.items()
        if rid in injected
    )


def _round_counts(result) -> List[int]:
    """Per-round total message counts (observed rounds only)."""
    totals = result.stats._round_totals
    return [totals[r] for r in sorted(totals)]


@dataclass
class ParityReport:
    """Verdict of one cell's object-vs-array comparison."""

    cell: str
    latency_ks: float
    round_count_ks: float
    total_rel_err: float
    service_rel_err: Dict[str, float]
    delivered_pairs_equal: bool
    qod_clean: bool
    confidentiality_clean: bool
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell": self.cell,
            "latency_ks": round(self.latency_ks, 4),
            "round_count_ks": round(self.round_count_ks, 4),
            "total_rel_err": round(self.total_rel_err, 4),
            "service_rel_err": {
                k: round(v, 4) for k, v in sorted(self.service_rel_err.items())
            },
            "delivered_pairs_equal": self.delivered_pairs_equal,
            "qod_clean": self.qod_clean,
            "confidentiality_clean": self.confidentiality_clean,
            "passed": self.passed,
            "failures": list(self.failures),
        }


@dataclass(frozen=True)
class ParityGate:
    """Thresholded comparison of two engines on one scenario.

    Reusable by future engines: anything that runs a ``Scenario`` and
    returns a ``RunResult`` can be gated by swapping ``engine``.
    """

    max_latency_ks: float = 0.2
    max_round_count_ks: float = 0.25
    max_total_rel_err: float = 0.05
    max_service_rel_err: float = 0.10
    engine: str = "array"

    def check(self, scenario) -> ParityReport:
        reference = run_congos_scenario(scenario)
        candidate = run_congos_scenario(
            dataclasses.replace(scenario, engine=self.engine)
        )
        return self.compare(scenario.name, reference, candidate)

    def compare(self, cell: str, reference, candidate) -> ParityReport:
        lat_ks = ks_distance(_latencies(reference), _latencies(candidate))
        cnt_ks = ks_distance(_round_counts(reference), _round_counts(candidate))
        ref_total = max(1, reference.stats.total)
        total_err = abs(candidate.stats.total - reference.stats.total) / ref_total
        ref_services = reference.stats.summary()["by_service"]
        cand_services = candidate.stats.summary()["by_service"]
        service_err = {
            service: abs(cand_services.get(service, 0) - count) / max(1, count)
            for service, count in ref_services.items()
        }
        pairs_equal = (
            set(reference.delivery.deliveries) == set(candidate.delivery.deliveries)
        )
        qod_clean = bool(reference.qod.satisfied and candidate.qod.satisfied)
        conf_clean = (
            reference.confidentiality.is_clean()
            and candidate.confidentiality.is_clean()
        )
        failures: List[str] = []
        if lat_ks > self.max_latency_ks:
            failures.append(
                "latency KS {:.3f} > {}".format(lat_ks, self.max_latency_ks)
            )
        if cnt_ks > self.max_round_count_ks:
            failures.append(
                "round-count KS {:.3f} > {}".format(cnt_ks, self.max_round_count_ks)
            )
        if total_err > self.max_total_rel_err:
            failures.append(
                "total messages off by {:.1%}".format(total_err)
            )
        for service, err in sorted(service_err.items()):
            if err > self.max_service_rel_err:
                failures.append(
                    "{} messages off by {:.1%}".format(service, err)
                )
        if not pairs_equal:
            failures.append("delivered (rid, pid) pair sets differ")
        if not qod_clean:
            failures.append("QoD missed deliveries")
        if not conf_clean:
            failures.append("confidentiality audit not clean")
        return ParityReport(
            cell=cell,
            latency_ks=lat_ks,
            round_count_ks=cnt_ks,
            total_rel_err=total_err,
            service_rel_err=service_err,
            delivered_pairs_equal=pairs_equal,
            qod_clean=qod_clean,
            confidentiality_clean=conf_clean,
            failures=failures,
        )


def default_parity_cells(seeds: Tuple[int, ...] = (0,)) -> List[object]:
    """The pinned E6/E11 deadline-64 parity cells.

    E6's per-round scaling cells (steady workload, lean params) at small
    and medium n, plus E11's price-of-confidentiality steady cell
    (default params, n=16, 360 rounds).  Deadline-256 cells are excluded
    by design: multi-iteration GD blocks use the documented census
    approximation, so only the schedule-exact deadline-64 config gates.
    """
    cells: List[object] = []
    for seed in seeds:
        for n in (16, 32, 64):
            cells.append(
                steady_scenario(
                    n=n,
                    rounds=3 * 64 + 128,
                    seed=seed,
                    deadline=64,
                    rate=1,
                    period=4,
                    dest_size=4,
                    params=CongosParams.lean(),
                    name="e6-parity-n{}-s{}".format(n, seed),
                )
            )
        cells.append(
            steady_scenario(
                n=16,
                rounds=360,
                seed=seed,
                deadline=64,
                rate=1,
                period=4,
                dest_size=4,
                name="e11-parity-s{}".format(seed),
            )
        )
    return cells


def run_parity_gate(
    cells: Optional[Sequence[object]] = None,
    gate: Optional[ParityGate] = None,
) -> List[ParityReport]:
    """Run the full gate; raises AssertionError listing every failure."""
    resolved_gate = gate if gate is not None else ParityGate()
    reports = [
        resolved_gate.check(cell)
        for cell in (cells if cells is not None else default_parity_cells())
    ]
    broken = [r for r in reports if not r.passed]
    if broken:
        raise AssertionError(
            "statistical parity gate failed: "
            + "; ".join(
                "{}: {}".format(r.cell, ", ".join(r.failures)) for r in broken
            )
        )
    return reports
