"""The vectorized CONGOS round kernel (DESIGN.md §11).

One :class:`ArrayEngine` replaces the whole object stack — ``Engine`` +
``CongosNode`` + per-pid services — for fault-free runs.  The protocol's
*schedule* (blocks, iterations, gossip windows) and its *message counts*
are reproduced exactly; its randomized draws (gossip targets, GD/proxy
sampling) are statistically equivalent but come from independent numpy
streams, which is the equivalence-mode contract: the gate is
distributional parity of delivery/QoD metrics plus a clean
confidentiality audit, not rng-stream identity.

State layout
------------

* every membership set (groups, item holders, destination sets, hit sets)
  is a packed ``uint64`` bitset over the pid universe;
* each gossip channel ``(dline, partition, group)`` — plus the single
  AllGossip channel — keeps a short list of *items*; spreading draws one
  target matrix per channel per round, shared by every item, exactly as
  the object engine's per-pid batch does;
* per-pid census/share traffic is folded into per-block *cohort* items
  carrying a ``weight`` (the number of real constituent shares), so the
  item list stays O(blocks), not O(n · blocks);
* fragment payloads are XOR-split once per rumor into a contiguous
  ``(partitions, groups, length)`` array and merged back on reassembly.

Documented approximations (all confidentiality-safe, see DESIGN.md §11):
cohort shares assume the in-group epidemic saturates by block end (it
does w.h.p. — the gossip window is ≥ 8 rounds for ≤ 16-round blocks);
multi-iteration blocks (dline ≥ 256) keep the full-group collaborator
census for fanout, which only touches later-iteration sends whose target
pools are almost always already hit.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.audit.confidentiality import Violation
from repro.core.config import CongosParams
from repro.core.deadlines import pipeline_deadline
from repro.core.partitions import PartitionSet
from repro.gossip.epidemic import default_fanout
from repro.gossip.rumor import Rumor
from repro.sim.clock import BlockSchedule
from repro.sim.events import EventLog, InjectEvent
from repro.sim.messages import ServiceTags
from repro.sim.metrics import MessageStats
from repro.sim.rng import derive_seed

from repro.fastcore import bitset
from repro.fastcore.kernels import (
    merge_shares,
    sample_rows,
    sample_targets_excluding_self,
    split_shares,
)

__all__ = ["ArrayEngine", "FastConfidentialityAuditor", "UnsupportedScenario"]

# Item kinds on the gossip channels.
FRAG = "frag"          # one real item per (rumor, partition): the source's own-group fragment
PXSHARE = "pxshare"    # per-block cohort: proxy buffers + requester census beacons
GDCENSUS = "gdcensus"  # per-block cohort: GroupDistribution hitSet shares
DSHARE = "dshare"      # per-block cohort: AllGossip DistributionShares


class UnsupportedScenario(ValueError):
    """The scenario uses a feature the array engine does not model."""


class FastConfidentialityAuditor:
    """Confidentiality audit over the array engine's delivered stream.

    Mirrors the object :class:`repro.audit.confidentiality.ConfidentialityAuditor`
    surface (``is_clean`` / ``violation_counts`` / ``summary`` /
    ``total_border_messages``) with bitset bookkeeping: plaintext checks
    fire per delivery, reconstruction is checked per rumor when it is
    retired (per-partition AND of the cumulative fragment-holder sets
    minus the allowed set), border messages are tallied by the spread and
    proxy kernels.
    """

    def __init__(self, num_partitions: int, num_groups: int):
        self.num_partitions = num_partitions
        self.num_groups = num_groups
        self.rumor_count = 0
        self.total_border_messages = 0
        # The same Violation records the object auditor keeps, so
        # FailFastMonitor (which tails this list) plugs in unchanged.
        self.violations: List[Violation] = []
        self._counts: Dict[str, int] = {
            "plaintext": 0,
            "reconstruction": 0,
            "multiplicity": 0,
        }

    def on_rumor(self) -> None:
        self.rumor_count += 1

    def _record(self, kind, rid, pid, round_no, detail="") -> None:
        self._counts[kind] += 1
        self.violations.append(
            Violation(kind=kind, rid=rid, pid=pid, round_no=round_no, detail=detail)
        )

    def record_plaintext(self, round_no: int, state: "_RumorState", pid: int) -> None:
        """A full-rumor delivery landed at ``pid``; outsiders are leaks."""
        if not bitset.test_bits(state.allowed, np.asarray([pid]))[0]:
            self._record(
                "plaintext", state.rid, pid, round_no,
                "plaintext delivered outside D + {src}",
            )

    def add_border(self, count: int) -> None:
        self.total_border_messages += int(count)

    def retire_rumor(self, round_no: int, state: "_RumorState") -> None:
        """Run the reconstruction/multiplicity sweep for one dead rumor."""
        n = state.n
        per_partition: Dict[int, List[np.ndarray]] = {}
        for (partition, _group), holders in state.frag_holders.items():
            per_partition.setdefault(partition, []).append(holders)
        for holder_sets in per_partition.values():
            if len(holder_sets) < self.num_groups:
                continue
            conjunction = holder_sets[0].copy()
            for holders in holder_sets[1:]:
                np.bitwise_and(conjunction, holders, out=conjunction)
            leaked = bitset.andnot(conjunction, state.allowed)
            for pid in bitset.to_indices(leaked, n):
                self._record(
                    "reconstruction", state.rid, int(pid), round_no,
                    "outsider holds a full fragment set",
                )
        # Multiplicity: an outsider holding two fragments of one partition.
        for holder_sets in per_partition.values():
            if len(holder_sets) < 2:
                continue
            seen = bitset.empty(n)
            twice = bitset.empty(n)
            for holders in holder_sets:
                np.bitwise_or(twice, seen & holders, out=twice)
                np.bitwise_or(seen, holders, out=seen)
            for pid in bitset.to_indices(bitset.andnot(twice, state.allowed), n):
                self._record(
                    "multiplicity", state.rid, int(pid), round_no,
                    "outsider holds two fragments of one partition",
                )

    def violation_counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def is_clean(self) -> bool:
        return self._counts["plaintext"] == 0 and self._counts["reconstruction"] == 0

    def summary(self) -> Dict[str, object]:
        return {
            "rumors": self.rumor_count,
            "violations": self.violation_counts(),
            "border_messages": self.total_border_messages,
        }


class _RumorState:
    """Everything the engine tracks for one pipeline rumor."""

    __slots__ = (
        "rumor",
        "rid",
        "src",
        "n",
        "dline",
        "injected_at",
        "expiry",
        "fallback_round",
        "dest_mask",
        "allowed",
        "shares",
        "got",
        "frag_holders",
        "delivered",
        "src_known",
        "confirmed",
        "confirm_dirty",
        "retired",
        "merged_cache",
    )

    def __init__(self, rumor: Rumor, n: int, dline: int, round_no: int, fraction: float):
        self.rumor = rumor
        self.rid = rumor.rid
        self.src = rumor.rid.src
        self.n = n
        self.dline = dline
        self.injected_at = round_no
        self.expiry = round_no + rumor.deadline
        horizon = rumor.deadline
        if fraction < 1.0:
            horizon = max(1, math.ceil(fraction * horizon))
        self.fallback_round = round_no + horizon
        self.dest_mask = bitset.from_indices(sorted(rumor.dest), n)
        self.allowed = self.dest_mask.copy()
        bitset.union_into(self.allowed, bitset.from_indices([self.src], n))
        self.shares: Optional[np.ndarray] = None
        # (partition, group) -> bitset of pids holding that fragment via a
        # GroupDistribution delivery (the reassembly matrix) ...
        self.got: Dict[Tuple[int, int], np.ndarray] = {}
        # ... and via *any* channel (the audit's knowledge sets).
        self.frag_holders: Dict[Tuple[int, int], np.ndarray] = {}
        self.delivered = bitset.empty(n)
        self.src_known: Dict[Tuple[int, int], np.ndarray] = {}
        self.confirmed = False
        self.confirm_dirty = False
        self.retired = False
        self.merged_cache: Dict[int, bytes] = {}

    def audit_holders(self, key: Tuple[int, int]) -> np.ndarray:
        holders = self.frag_holders.get(key)
        if holders is None:
            holders = bitset.empty(self.n)
            self.frag_holders[key] = holders
        return holders

    def merged(self, partition: int) -> bytes:
        data = self.merged_cache.get(partition)
        if data is None:
            data = merge_shares(self.shares[partition])
            self.merged_cache[partition] = data
        return data


class _Item:
    """One gossip item (or per-block cohort of items) on a channel."""

    __slots__ = (
        "kind", "born", "start", "expiry", "weight", "holders", "content", "key",
    )

    def __init__(self, kind, born, start, expiry, weight, holders, content=None, key=None):
        self.kind = kind
        self.born = born
        self.start = start          # first round this item is broadcast
        self.expiry = expiry        # last round it is broadcast/absorbed
        self.weight = weight        # number of real constituent items
        self.holders = holders      # bitset, grows as the epidemic spreads
        self.content = content      # kind-specific payload
        self.key = key              # (dline, partition, group) home channel


class _Channel:
    """One continuous-gossip scope: a (partition, group) cell or all-pids."""

    __slots__ = (
        "scope_idx",
        "scope_mask",
        "size",
        "pos_of",
        "fanout",
        "k",
        "horizon",
        "service",
        "items",
        "all_to_all",
    )

    def __init__(self, scope_idx: np.ndarray, n: int, fanout_scale: float, service: str):
        self.scope_idx = scope_idx
        self.scope_mask = bitset.from_indices(scope_idx, n)
        self.size = len(scope_idx)
        self.pos_of = np.full(n, -1, dtype=np.int64)
        self.pos_of[scope_idx] = np.arange(self.size, dtype=np.int64)
        self.fanout = default_fanout(self.size, fanout_scale)
        self.k = min(self.fanout, self.size - 1)
        self.horizon = max(8, 2 * math.ceil(math.log2(max(2, self.size))) + 4)
        self.service = service
        self.items: List[_Item] = []
        self.all_to_all = self.size - 1 <= self.fanout


class _GdBlock:
    """Per-(partition, group) GroupDistribution state for one block."""

    __slots__ = ("rumors", "hits", "distributors", "census_item")

    def __init__(self, n: int):
        self.rumors: List[Tuple[_RumorState, np.ndarray]] = []
        self.hits: Dict[_RumorState, np.ndarray] = {}
        self.distributors = bitset.empty(n)
        self.census_item: Optional[_Item] = None


class _Instance:
    """One deadline class: channels, schedule and per-block machinery."""

    __slots__ = (
        "dline",
        "block_len",
        "iteration_len",
        "iterations_per_block",
        "gossip_deadline",
        "allgossip_deadline",
        "channels",
        "pending",
        "px_queue",
        "px_share_due",
        "px_items",
        "acks_due",
        "gd_blocks",
        "gd_fanout",
    )

    def __init__(self, dline: int):
        schedule = BlockSchedule(dline)
        self.dline = dline
        self.block_len = schedule.block_len
        self.iteration_len = schedule.iteration_len
        self.iterations_per_block = schedule.iterations_per_block
        self.gossip_deadline = schedule.gossip_deadline
        self.allgossip_deadline = schedule.allgossip_deadline
        self.channels: Dict[Tuple[int, int], _Channel] = {}
        # GD waiting sets: (partition, group) -> {rumor state -> holder bitset}.
        self.pending: Dict[Tuple[int, int], Dict[_RumorState, np.ndarray]] = {}
        # Cross-group fragments awaiting a proxy block:
        # (partition, group) -> [(inject round, rumor state)].
        self.px_queue: Dict[Tuple[int, int], List[Tuple[int, _RumorState]]] = {}
        # Proxy share cohorts staged at block start, materialised at bs+1:
        # [(due round, (partition, group), injector mask, weight, frag states)].
        self.px_share_due: List[Tuple[int, Tuple[int, int], np.ndarray, int, List[_RumorState]]] = []
        # Live proxy-share items of the current block, consumed at hand-up.
        self.px_items: Dict[Tuple[int, int], _Item] = {}
        # Ack traffic scheduled for the iteration's last round: round -> count.
        self.acks_due: Dict[int, int] = {}
        self.gd_blocks: Dict[Tuple[int, int], _GdBlock] = {}
        self.gd_fanout: Dict[Tuple[int, int], int] = {}

    def position(self, round_no: int) -> int:
        rib = round_no % self.block_len
        if rib // self.iteration_len >= self.iterations_per_block:
            return -1
        return rib % self.iteration_len


class ArrayEngine:
    """Vectorized fault-free CONGOS simulation behind the Engine surface.

    Duck-types the slice of :class:`repro.sim.engine.Engine` the audited
    run path consumes: ``round``, ``rounds_executed``, ``event_log``,
    ``stats``, ``alive_pids``/``is_alive`` (everyone, always — the array
    engine rejects fault scenarios upstream), and ``run``.
    """

    def __init__(
        self,
        n: int,
        params: CongosParams,
        partition_set: PartitionSet,
        seed: int,
        adversary,
        record_delivery: Callable[[int, int, object, bytes, str], None],
        auditor: FastConfidentialityAuditor,
        observers=(),
    ):
        self.n = n
        self.params = params
        self.partition_set = partition_set
        self.seed = seed
        self.adversary = adversary
        self.record_delivery = record_delivery
        self.auditor = auditor
        self.observers = list(observers)
        self.event_log = EventLog()
        self.stats = MessageStats()
        self.rounds_executed = 0
        self._round = 0

        self._rng_gossip = np.random.default_rng(derive_seed(seed, "fastcore", "gossip"))
        self._rng_gd = np.random.default_rng(derive_seed(seed, "fastcore", "gd"))
        self._rng_proxy = np.random.default_rng(derive_seed(seed, "fastcore", "proxy"))
        self._rng_split = np.random.default_rng(derive_seed(seed, "fastcore", "split"))

        # Partition geometry, computed once.
        self._group_idx: Dict[Tuple[int, int], np.ndarray] = {}
        self._group_of: Dict[int, np.ndarray] = {}
        for partition in range(partition_set.count):
            assignment = np.asarray(partition_set.assignment(partition), dtype=np.int64)
            self._group_of[partition] = assignment
            for group in range(partition_set.num_groups):
                self._group_idx[(partition, group)] = np.flatnonzero(
                    assignment == group
                ).astype(np.int64)

        self.all_channel = _Channel(
            np.arange(n, dtype=np.int64), n, params.gossip_fanout_scale,
            ServiceTags.ALL_GOSSIP,
        )
        self.instances: Dict[int, _Instance] = {}
        self.rumors: List[_RumorState] = []
        self.view = _ArrayView(self)

        # Per-round accumulators, reset in run_round.
        self._count = 0
        self._size = 0
        self._by_service: Dict[str, int] = {}
        # Deliveries staged for the end-of-round effects pass:
        # [(channel key or None, item, new-holder indices)].
        self._spread_deliveries: List[Tuple[Optional[Tuple[int, int, int]], _Item, np.ndarray]] = []
        self._reassembly_dirty: List[Tuple[_RumorState, int]] = []

    # ------------------------------------------------------------------
    # Engine surface
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        return self._round

    def alive_pids(self):
        return set(range(self.n))

    def crashed_pids(self):
        return set()

    def is_alive(self, pid: int) -> bool:
        return 0 <= pid < self.n

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # ------------------------------------------------------------------
    # Round loop
    # ------------------------------------------------------------------

    def run_round(self) -> None:
        round_no = self._round
        for observer in self.observers:
            hook = getattr(observer, "on_round_begin", None)
            if hook is not None:
                hook(round_no)
        self._count = 0
        self._size = 0
        self._by_service = {}
        self._spread_deliveries = []
        self._reassembly_dirty = []

        decision = self.adversary.round_start(self.view)
        if getattr(decision, "crashes", None) or getattr(decision, "restarts", None):
            raise UnsupportedScenario(
                "engine='array' models fault-free runs only; use the object engine "
                "for crash/restart adversaries"
            )
        new_frag_items: List[Tuple[Tuple[int, int, int], _Item]] = []
        for pid, rumor in decision.injections:
            self.event_log.record_injection(
                InjectEvent(pid=pid, round_no=round_no, rumor=rumor)
            )
            for observer in self.observers:
                hook = getattr(observer, "on_inject", None)
                if hook is not None:
                    hook(round_no, pid, rumor)
            self._inject(round_no, pid, rumor, new_frag_items)

        self._fallback_phase(round_no)

        for dline in sorted(self.instances):
            self._protocol_phase(round_no, self.instances[dline])

        self._spread_phase(round_no)
        self._delivery_effects(round_no, new_frag_items)
        self._block_end_phase(round_no)
        self._reassemble(round_no)
        self._retire_rumors(round_no)

        self.stats.record_round(round_no, self._count, self._size, self._by_service)
        for observer in self.observers:
            hook = getattr(observer, "on_round_end", None)
            if hook is not None:
                hook(round_no, self)
        self.rounds_executed += 1
        self._round = round_no + 1

    # ------------------------------------------------------------------
    # Injection, direct sends and the deadline fallback
    # ------------------------------------------------------------------

    def _tally(self, service: str, count: int, size: int) -> None:
        if count <= 0:
            return
        self._count += count
        self._size += size
        self._by_service[service] = self._by_service.get(service, 0) + count

    def _deliver_plaintext(
        self, round_no: int, state: _RumorState, targets: np.ndarray, path: str
    ) -> None:
        for pid in targets:
            self.auditor.record_plaintext(round_no, state, int(pid))
            self.record_delivery(
                int(pid), round_no, state.rid, state.rumor.data, path
            )
        bitset.union_into(state.delivered, bitset.from_indices(targets, self.n))

    def _inject(self, round_no, pid, rumor, new_frag_items) -> None:
        if not rumor.dest <= frozenset(range(self.n)):
            raise ValueError("rumor destination set contains unknown pids")
        self.auditor.on_rumor()
        dline = pipeline_deadline(rumor.deadline, self.params, self.n)
        direct = dline is None or self.params.collusion_forces_direct(self.n)
        state = _RumorState(
            rumor, self.n, dline if dline is not None else 0, round_no,
            self.params.fallback_early_fraction,
        )
        if pid in rumor.dest:
            self.record_delivery(pid, round_no, rumor.rid, rumor.data, "local")
            bitset.union_into(state.delivered, bitset.from_indices([pid], self.n))
        others = sorted(rumor.dest - {pid})
        if not others:
            return
        if direct:
            self._tally(ServiceTags.CONFIDENTIAL, len(others), len(others))
            self._deliver_plaintext(
                round_no, state, np.asarray(others, dtype=np.int64), "direct"
            )
            return
        self.rumors.append(state)
        state.shares = split_shares(
            rumor.data, self.partition_set.count, self.partition_set.num_groups,
            self._rng_split,
        )
        instance = self._instance(dline)
        src_holder = bitset.from_indices([pid], self.n)
        for partition in range(self.partition_set.count):
            my_group = int(self._group_of[partition][pid])
            item = _Item(
                FRAG,
                born=round_no,
                start=round_no,
                expiry=round_no + instance.gossip_deadline,
                weight=1,
                holders=src_holder.copy(),
                content=state,
                key=(dline, partition, my_group),
            )
            instance.channels[(partition, my_group)].items.append(item)
            new_frag_items.append(((dline, partition, my_group), item))
            bitset.union_into(
                state.audit_holders((partition, my_group)), src_holder
            )
            for group in range(self.partition_set.num_groups):
                if group != my_group:
                    instance.px_queue.setdefault((partition, group), []).append(
                        (round_no, state)
                    )

    def _fallback_phase(self, round_no: int) -> None:
        for state in self.rumors:
            if state.confirm_dirty:
                state.confirm_dirty = False
                if not state.confirmed and self._covered(state):
                    state.confirmed = True
            if state.confirmed or state.retired:
                continue
            if round_no >= state.fallback_round:
                targets = bitset.to_indices(state.dest_mask, self.n)
                targets = targets[targets != state.src]
                if self.params.fallback_scope == "unconfirmed":
                    covered = self._covered_destinations(state)
                    targets = targets[~bitset.test_bits(covered, targets)]
                self._tally(ServiceTags.CONFIDENTIAL, len(targets), len(targets))
                self._deliver_plaintext(round_no, state, targets, "shoot")
                state.retired = True

    def _covered(self, state: _RumorState) -> bool:
        for partition in range(self.partition_set.count):
            ok = True
            for group in range(self.partition_set.num_groups):
                known = state.src_known.get((partition, group))
                if known is None or not bitset.is_subset(state.dest_mask, known):
                    ok = False
                    break
            if ok:
                return True
        return False

    def _covered_destinations(self, state: _RumorState) -> np.ndarray:
        covered = bitset.empty(self.n)
        for partition in range(self.partition_set.count):
            conj = None
            for group in range(self.partition_set.num_groups):
                known = state.src_known.get((partition, group))
                if known is None:
                    conj = None
                    break
                conj = known.copy() if conj is None else conj & known
            if conj is not None:
                bitset.union_into(covered, conj & state.dest_mask)
        return covered

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    def _instance(self, dline: int) -> _Instance:
        instance = self.instances.get(dline)
        if instance is not None:
            return instance
        instance = _Instance(dline)
        for partition in range(self.partition_set.count):
            for group in range(self.partition_set.num_groups):
                idx = self._group_idx[(partition, group)]
                instance.channels[(partition, group)] = _Channel(
                    idx, self.n, self.params.gossip_fanout_scale,
                    ServiceTags.GROUP_GOSSIP,
                )
                instance.gd_fanout[(partition, group)] = self.params.service_fanout(
                    self.n, dline, len(idx)
                )
        self.instances[dline] = instance
        return instance

    # ------------------------------------------------------------------
    # Proxy + GroupDistribution block machinery
    # ------------------------------------------------------------------

    def _protocol_phase(self, round_no: int, instance: _Instance) -> None:
        block_len = instance.block_len
        rib = round_no % block_len
        position = instance.position(round_no)
        # Uptime gating: services activate only once the process has been
        # up a full block (wakeup = 0 for every pid in fault-free runs),
        # so block 0 is pure gossip + direct traffic.
        if rib == 0 and round_no >= block_len:
            self._px_begin_block(round_no, instance)
        for due, key, injectors, weight, frag_states in list(instance.px_share_due):
            if due == round_no:
                self._px_make_share(round_no, instance, key, injectors, weight, frag_states)
        instance.px_share_due = [
            entry for entry in instance.px_share_due if entry[0] > round_no
        ]
        if rib == 1 and round_no >= self.params.gd_uptime(instance.dline):
            self._gd_begin_block(round_no, instance)
        if position == 1:
            self._gd_send(round_no, instance)
        elif position == 2:
            self._gd_census(round_no, instance)
        acks = instance.acks_due.pop(round_no, None)
        if acks:
            self._tally(ServiceTags.PROXY, acks, acks)

    def _px_begin_block(self, round_no: int, instance: _Instance) -> None:
        ack_round = round_no + instance.iteration_len - 1
        for key in sorted(instance.px_queue):
            queue = instance.px_queue[key]
            fresh = [
                (arrival, state)
                for arrival, state in queue
                if arrival < round_no and round_no <= state.expiry
            ]
            instance.px_queue[key] = [
                (arrival, state) for arrival, state in queue if arrival >= round_no
            ]
            if not fresh:
                continue
            partition, group = key
            pool = self._group_idx[key]
            # Group the queue by requester: one batched request per
            # (source, target group), exactly like ProxyService.
            by_src: Dict[int, List[_RumorState]] = {}
            for _arrival, state in fresh:
                by_src.setdefault(state.src, []).append(state)
            proxies_union = bitset.empty(self.n)
            requesters: List[int] = []
            frag_states: List[_RumorState] = []
            for src in sorted(by_src):
                states = by_src[src]
                requesters.append(src)
                frag_states.extend(states)
                own_group = int(self._group_of[partition][src])
                fanout = self.params.service_fanout(
                    self.n, instance.dline,
                    len(self._group_idx[(partition, own_group)]),
                )
                count = min(fanout, len(pool))
                if count == len(pool):
                    targets = pool
                else:
                    targets = sample_rows(self._rng_proxy, pool, 1, count)[0]
                self._tally(
                    ServiceTags.PROXY, len(targets), len(targets) * len(states)
                )
                instance.acks_due[ack_round] = (
                    instance.acks_due.get(ack_round, 0) + len(targets)
                )
                target_mask = bitset.from_indices(targets, self.n)
                bitset.union_into(proxies_union, target_mask)
                for state in states:
                    bitset.union_into(state.audit_holders(key), target_mask)
                    outside = (~bitset.test_bits(state.allowed, targets)).sum()
                    self.auditor.add_border(int(outside))
            # Proxies inject their buffered fragments next round; active
            # requesters inject census beacons into their *own* group's
            # channel the same round (fragment-free, so those cohorts ride
            # along for traffic and spread only).
            injector_count = bitset.popcount(proxies_union)
            instance.px_share_due.append(
                (round_no + 1, key, proxies_union, injector_count, frag_states)
            )
            for src in requesters:
                own_key = (partition, int(self._group_of[partition][src]))
                beacon = bitset.from_indices([src], self.n)
                instance.px_share_due.append(
                    (round_no + 1, own_key, beacon, 1, [])
                )

    def _px_make_share(
        self, round_no, instance, key, injectors, weight, frag_states
    ) -> None:
        if weight <= 0:
            return
        item = _Item(
            PXSHARE,
            born=round_no,
            start=round_no + 1,
            expiry=round_no + instance.gossip_deadline,
            weight=weight,
            holders=injectors.copy(),
            content=list(frag_states),
            key=(instance.dline,) + key,
        )
        instance.channels[key].items.append(item)
        if frag_states:
            existing = instance.px_items.get(key)
            if existing is not None:
                # Same block, second cohort (multi-iteration instances):
                # merge for the hand-up bookkeeping.
                existing.content.extend(frag_states)
                bitset.union_into(existing.holders, injectors)
            else:
                instance.px_items[key] = item
            for state in frag_states:
                bitset.union_into(state.audit_holders(key), injectors)

    def _gd_begin_block(self, round_no: int, instance: _Instance) -> None:
        for key in sorted(instance.pending):
            waiting = instance.pending[key]
            if not waiting:
                continue
            block = _GdBlock(self.n)
            for state, holders in waiting.items():
                if round_no > state.expiry:
                    continue
                partials = holders.copy()
                block.rumors.append((state, partials))
                bitset.union_into(block.distributors, partials)
                hits = bitset.empty(self.n)
                # Local destinations deliver to themselves immediately.
                local = partials & state.dest_mask
                if np.any(local):
                    got = state.got.setdefault(key, bitset.empty(self.n))
                    bitset.union_into(got, local)
                    bitset.union_into(hits, local)
                    self._reassembly_dirty.append((state, key[0]))
                block.hits[state] = hits
            waiting.clear()
            if block.rumors:
                instance.gd_blocks[key] = block
            elif key in instance.gd_blocks:
                del instance.gd_blocks[key]

    def _gd_send(self, round_no: int, instance: _Instance) -> None:
        first_iteration = (round_no % instance.block_len) // instance.iteration_len == 0
        for key in sorted(instance.gd_blocks):
            block = instance.gd_blocks[key]
            live = [
                (state, partials)
                for state, partials in block.rumors
                if round_no <= state.expiry
            ]
            if not live:
                continue
            fanout = instance.gd_fanout[key]
            # Per-rumor target pools.  First iteration: the full destination
            # set — each sender knows only its own self-hit, which the
            # in-pool/out-of-pool split removes.  Later iterations: senders
            # have absorbed the census, so subtract the block's hit union
            # (a documented approximation of per-process hit knowledge).
            pools: List[np.ndarray] = []
            pool_idx: List[np.ndarray] = []
            senders_union = bitset.empty(self.n)
            for state, partials in live:
                if first_iteration:
                    pool = state.dest_mask.copy()
                else:
                    pool = bitset.andnot(state.dest_mask, block.hits[state])
                pools.append(pool)
                pool_idx.append(bitset.to_indices(pool, self.n))
                bitset.union_into(senders_union, partials)
            senders = bitset.to_indices(senders_union, self.n)
            if not len(senders):
                continue
            # Equivalence classes by which rumors each sender holds: all
            # senders in a class share the same target pool (minus self).
            membership = np.zeros(len(senders), dtype=np.int64)
            holds = []
            for j, (state, partials) in enumerate(live):
                row = bitset.test_bits(partials, senders)
                holds.append(row)
                membership |= row.astype(np.int64) << j
            for signature in np.unique(membership):
                rows = membership == signature
                class_senders = senders[rows]
                in_class = [j for j in range(len(live)) if (signature >> j) & 1]
                if not in_class:
                    continue
                union_pool = pools[in_class[0]].copy()
                for j in in_class[1:]:
                    bitset.union_into(union_pool, pools[j])
                union_idx = bitset.to_indices(union_pool, self.n)
                if not len(union_idx):
                    continue
                self._gd_send_class(
                    round_no, key, block, class_senders, union_idx, union_pool,
                    [live[j] for j in in_class], [pool_idx[j] for j in in_class],
                    fanout,
                )

    def _gd_send_class(
        self, round_no, key, block, class_senders, union_idx, union_pool,
        class_rumors, class_pool_idx, fanout,
    ) -> None:
        pool_size = len(union_idx)
        inside = bitset.test_bits(union_pool, class_senders)
        pos_lookup = np.full(self.n, -1, dtype=np.int64)
        pos_lookup[union_idx] = np.arange(pool_size, dtype=np.int64)
        target_blocks: List[np.ndarray] = []  # (rows, k) matrices of target pids
        count = 0
        for rows_mask, excl_self in ((inside, True), (~inside, False)):
            rows = class_senders[rows_mask]
            if not len(rows):
                continue
            k = min(fanout, pool_size - 1 if excl_self else pool_size)
            if k <= 0:
                continue
            count += len(rows) * k
            if excl_self:
                if k >= pool_size - 1:
                    # Whole pool minus self: model as the full pool per row
                    # and drop self-hits afterwards (self is already hit).
                    targets = np.broadcast_to(union_idx, (len(rows), pool_size))
                else:
                    targets = sample_targets_excluding_self(
                        self._rng_gd, union_idx, pos_lookup[rows], k
                    )
            else:
                targets = sample_rows(self._rng_gd, union_idx, len(rows), k)
            target_blocks.append(targets)
        if not count:
            return
        size = 0
        flat = np.concatenate([t.ravel() for t in target_blocks])
        for (state, _partials), p_idx in zip(class_rumors, class_pool_idx):
            if not len(p_idx):
                continue
            appropriate = np.isin(flat, p_idx)
            size += int(appropriate.sum())
            new_hits_idx = np.unique(flat[appropriate])
            if len(new_hits_idx):
                new_mask = bitset.from_indices(new_hits_idx, self.n)
                bitset.union_into(block.hits[state], new_mask)
                got = state.got.setdefault(key, bitset.empty(self.n))
                bitset.union_into(got, new_mask)
                bitset.union_into(state.audit_holders(key), new_mask)
                self._reassembly_dirty.append((state, key[0]))
        self._tally(ServiceTags.GROUP_DISTRIBUTION, count, max(count, size))

    def _gd_census(self, round_no: int, instance: _Instance) -> None:
        for key in sorted(instance.gd_blocks):
            block = instance.gd_blocks[key]
            injectors = block.distributors.copy()
            if block.census_item is not None:
                # Later iterations: everyone who absorbed the first census
                # has a non-empty hitSet and re-injects.
                bitset.union_into(injectors, block.census_item.holders)
            weight = bitset.popcount(injectors)
            if not weight:
                continue
            item = _Item(
                GDCENSUS,
                born=round_no,
                start=round_no + 1,
                expiry=round_no + instance.gossip_deadline,
                weight=weight,
                holders=injectors,
            )
            instance.channels[key].items.append(item)
            block.census_item = item

    def _block_end_phase(self, round_no: int) -> None:
        for dline in sorted(self.instances):
            instance = self.instances[dline]
            if round_no % instance.block_len != instance.block_len - 1:
                continue
            if round_no < instance.block_len:
                continue  # block 0: every service still waiting on uptime
            # Proxy hand-up: everything the group gossiped this block joins
            # the GD waiting set for the next block.
            for key, item in sorted(instance.px_items.items()):
                waiting = instance.pending.setdefault(key, {})
                for state in item.content:
                    if round_no > state.expiry:
                        continue
                    holders = waiting.get(state)
                    if holders is None:
                        waiting[state] = item.holders.copy()
                    else:
                        bitset.union_into(holders, item.holders)
            instance.px_items.clear()
            # GroupDistribution publish: the block's hitSets enter AllGossip.
            for key, block in sorted(instance.gd_blocks.items()):
                publishers = block.distributors.copy()
                if block.census_item is not None:
                    bitset.union_into(publishers, block.census_item.holders)
                content = [
                    (state, hits.copy())
                    for state, hits in block.hits.items()
                    if np.any(hits)
                ]
                weight = bitset.popcount(publishers)
                if not content or not weight:
                    continue
                item = _Item(
                    DSHARE,
                    born=round_no,
                    start=round_no + 1,
                    expiry=round_no + instance.allgossip_deadline,
                    weight=weight,
                    holders=publishers,
                    content=(key, content),
                )
                self.all_channel.items.append(item)
                # Sources among the publishers fold the share into their
                # hit matrix immediately (self-delivery at inject).
                self._merge_dshare(item, publishers)
            instance.gd_blocks.clear()

    def _merge_dshare(self, item: _Item, new_holders: np.ndarray) -> None:
        key, content = item.content
        for state, hits in content:
            if state.confirmed or state.retired:
                continue
            if bitset.test_bits(new_holders, np.asarray([state.src]))[0]:
                known = state.src_known.get(key)
                if known is None:
                    state.src_known[key] = hits.copy()
                else:
                    bitset.union_into(known, hits)
                state.confirm_dirty = True

    # ------------------------------------------------------------------
    # Gossip spreading
    # ------------------------------------------------------------------

    def _spread_phase(self, round_no: int) -> None:
        for dline in sorted(self.instances):
            instance = self.instances[dline]
            for key in sorted(instance.channels):
                channel = instance.channels[key]
                if channel.items:
                    self._spread_channel(round_no, channel)
        if self.all_channel.items:
            self._spread_channel(round_no, self.all_channel)

    def _spread_channel(self, round_no: int, channel: _Channel) -> None:
        channel.items = [i for i in channel.items if i.expiry >= round_no]
        live = [
            i for i in channel.items
            if i.start <= round_no and round_no - i.born <= channel.horizon
        ]
        if not live or channel.k <= 0:
            return
        senders_union = live[0].holders.copy()
        for item in live[1:]:
            bitset.union_into(senders_union, item.holders)
        senders = bitset.to_indices(senders_union, self.n)
        m = len(senders)
        if not m:
            return
        count = m * channel.k
        size = channel.k * sum(
            item.weight * bitset.popcount(item.holders) for item in live
        )
        self._tally(channel.service, count, size)
        if channel.all_to_all:
            for item in live:
                self._spread_all_to_all(channel, item)
            return
        targets = sample_targets_excluding_self(
            self._rng_gossip, channel.scope_idx, channel.pos_of[senders], channel.k
        )
        for item in live:
            hold_rows = bitset.test_bits(item.holders, senders)
            if not np.any(hold_rows):
                continue
            flat = targets[hold_rows].ravel()
            self._audit_spread_borders(item, senders[hold_rows], targets[hold_rows])
            fresh = np.unique(flat)
            fresh = fresh[~bitset.test_bits(item.holders, fresh)]
            if len(fresh):
                bitset.union_into(item.holders, bitset.from_indices(fresh, self.n))
                self._spread_deliveries.append((None, item, fresh))

    def _spread_all_to_all(self, channel: _Channel, item: _Item) -> None:
        holding = bitset.popcount(item.holders)
        if not holding:
            return
        if item.kind in (FRAG, PXSHARE):
            states = [item.content] if item.kind is FRAG else item.content
            for state in states:
                allowed_in = bitset.popcount(state.allowed & channel.scope_mask)
                allowed_holding = bitset.popcount(state.allowed & item.holders)
                self.auditor.add_border(
                    allowed_holding * (channel.size - allowed_in)
                )
        fresh_mask = bitset.andnot(channel.scope_mask, item.holders)
        fresh = bitset.to_indices(fresh_mask, self.n)
        if len(fresh):
            bitset.union_into(item.holders, fresh_mask)
            self._spread_deliveries.append((None, item, fresh))

    def _audit_spread_borders(self, item, senders, targets) -> None:
        if item.kind not in (FRAG, PXSHARE):
            return
        states = [item.content] if item.kind is FRAG else item.content
        for state in states:
            rows = bitset.test_bits(state.allowed, senders)
            if not np.any(rows):
                continue
            outside = (~bitset.test_bits(state.allowed, targets[rows].ravel())).sum()
            self.auditor.add_border(int(outside))

    def _delivery_effects(self, round_no, new_frag_items) -> None:
        """Apply end-of-round delivery callbacks for spread + fresh items."""
        for key, item in new_frag_items:
            # A source self-delivers its own fragment at inject: it joins
            # the GD waiting set for the next block, like any recipient.
            dline, partition, group = key
            self._frag_arrival(
                self.instances[dline], (partition, group), item.content,
                item.holders,
            )
        for _key, item, fresh in self._spread_deliveries:
            if item.kind is FRAG:
                state = item.content
                dline, partition, group = item.key
                mask = bitset.from_indices(fresh, self.n)
                self._frag_arrival(
                    self.instances[dline], (partition, group), state, mask
                )
                bitset.union_into(state.audit_holders((partition, group)), mask)
            elif item.kind is PXSHARE:
                mask = bitset.from_indices(fresh, self.n)
                _dline, partition, group = item.key
                for state in item.content:
                    # Receivers' partial-rumor buffers; handed up at block
                    # end via item.holders, so only the audit set updates.
                    bitset.union_into(
                        state.audit_holders((partition, group)), mask
                    )
            elif item.kind is DSHARE:
                mask = bitset.from_indices(fresh, self.n)
                self._merge_dshare(item, mask)
        self._spread_deliveries = []

    def _frag_arrival(self, instance, key, state, mask) -> None:
        waiting = instance.pending.setdefault(key, {})
        holders = waiting.get(state)
        if holders is None:
            waiting[state] = mask.copy()
        else:
            bitset.union_into(holders, mask)

    # ------------------------------------------------------------------
    # Reassembly and retirement
    # ------------------------------------------------------------------

    def _reassemble(self, round_no: int) -> None:
        if not self._reassembly_dirty:
            return
        num_groups = self.partition_set.num_groups
        seen = set()
        for state, partition in self._reassembly_dirty:
            token = (id(state), partition)
            if token in seen or state.retired:
                continue
            seen.add(token)
            conj = None
            complete = True
            for group in range(num_groups):
                got = state.got.get((partition, group))
                if got is None:
                    complete = False
                    break
                conj = got.copy() if conj is None else conj & got
            if not complete:
                continue
            fresh = bitset.andnot(conj, state.delivered)
            idx = bitset.to_indices(fresh, self.n)
            if not len(idx):
                continue
            data = state.merged(partition)
            for pid in idx:
                self.record_delivery(
                    int(pid), round_no, state.rid, data, "reassembled"
                )
            bitset.union_into(state.delivered, fresh)
        self._reassembly_dirty = []

    def _retire_rumors(self, round_no: int) -> None:
        # A rumor is finished once its deadline has passed and every channel
        # item referencing it has expired; two extra blocks cover the last
        # hand-up / publish / confirmation hop.
        if round_no % 32:
            return
        keep: List[_RumorState] = []
        for state in self.rumors:
            slack = 2 * (state.dline // 4) + 2
            if round_no > state.expiry + slack:
                self.auditor.retire_rumor(round_no, state)
                state.retired = True
            else:
                keep.append(state)
        self.rumors = keep

    def finalize(self) -> None:
        """Audit any rumor still live when the run ends."""
        for state in self.rumors:
            self.auditor.retire_rumor(self._round, state)
        self.rumors = []


class _ArrayView:
    """The slice of AdversaryView that injection workloads consume."""

    def __init__(self, engine: ArrayEngine):
        self.engine = engine

    @property
    def round(self) -> int:
        return self.engine.round

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def all_pids(self):
        return frozenset(range(self.engine.n))

    @property
    def event_log(self) -> EventLog:
        return self.engine.event_log

    def alive_pids(self):
        return self.engine.alive_pids()

    def crashed_pids(self):
        return set()

    def is_alive(self, pid: int) -> bool:
        return self.engine.is_alive(pid)

    def touched_this_round(self):
        return set()

    def behavior(self, pid: int):
        return None
