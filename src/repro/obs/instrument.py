"""The instrumentation facade the protocol stack emits into.

Hot paths in ``core``/``gossip`` hold a ``telemetry`` attribute and
guard every emission with ``if self.telemetry.enabled:`` — when tracing
is off that attribute is the shared :data:`NULL_TELEMETRY` singleton and
the entire observability layer costs one attribute read per call site.

A live :class:`Telemetry` fans each event out to its sinks (JSONL file,
ring buffer) and subscribers (``RumorTimeline``), and exposes the
run-wide :class:`MetricsRegistry`.  Telemetry objects are never pickled:
exec-pool workers build their engines in-process, and the trace CLI runs
single-process, so file handles and observer references stay local.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.obs.events import ObsEvent
from repro.obs.registry import MetricsRegistry

__all__ = ["NULL_TELEMETRY", "NullTelemetry", "Telemetry"]


class Telemetry:
    """Live telemetry: metrics registry + event fan-out."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        sinks: Iterable[Any] = (),
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sinks: List[Any] = list(sinks)
        self.subscribers: List[Any] = []
        self.emitted = 0

    def add_sink(self, sink: Any) -> None:
        self.sinks.append(sink)

    def subscribe(self, processor: Any) -> None:
        """Register an object with ``on_event(event)`` (e.g. RumorTimeline)."""
        self.subscribers.append(processor)

    def emit(self, kind: str, round_no: int, **fields: Any) -> ObsEvent:
        event = ObsEvent.make(kind, round_no, **fields)
        self.emitted += 1
        for sink in self.sinks:
            sink.write(event)
        for subscriber in self.subscribers:
            subscriber.on_event(event)
        return event

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class NullTelemetry:
    """Disabled telemetry — every operation is a no-op.

    Call sites must still guard with ``if telemetry.enabled:`` so the
    no-op path never even builds the kwargs dict, but an unguarded call
    is harmless.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = None
        self.sinks: List[Any] = []
        self.subscribers: List[Any] = []
        self.emitted = 0

    def add_sink(self, sink: Any) -> None:  # pragma: no cover - defensive
        raise ValueError("NULL_TELEMETRY accepts no sinks; build a Telemetry")

    def subscribe(self, processor: Any) -> None:  # pragma: no cover
        raise ValueError(
            "NULL_TELEMETRY accepts no subscribers; build a Telemetry"
        )

    def emit(self, kind: str, round_no: int, **fields: Any) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()
