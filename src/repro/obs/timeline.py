"""Per-rumor lifecycle reconstruction from the telemetry stream.

:class:`RumorTimeline` subscribes to a :class:`~repro.obs.instrument.Telemetry`
(via ``telemetry.subscribe(timeline)``) and folds the instrumentation
events emitted by ``core``/``gossip`` into one :class:`RumorLifecycle`
record per rumor id:

    inject round → fragment/split counts → first gossip injection →
    proxy requests and crossings → GroupDistribution fan-out →
    hitSet confirmation → fallback trigger → delivery (round, path,
    latency) per destination.

It is *also* a :class:`~repro.sim.engine.SimObserver`, so a rumor the
engine injects shows up even before (or without) protocol-level events —
the engine hook only backfills; protocol events are authoritative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.events import ObsEvent, json_safe
from repro.sim.engine import SimObserver

__all__ = ["RumorLifecycle", "RumorTimeline"]


@dataclass
class RumorLifecycle:
    """Everything observed about one rumor, keyed by its string rid."""

    rid: str
    src: Optional[int] = None
    inject_round: Optional[int] = None
    deadline: Optional[int] = None
    dline: Optional[int] = None
    dest: List[int] = field(default_factory=list)
    direct: bool = False
    direct_send_round: Optional[int] = None
    direct_retries: List[Dict[str, Any]] = field(default_factory=list)
    direct_acks: Dict[int, int] = field(default_factory=dict)
    partitions: Optional[int] = None
    fragments: int = 0
    gossip_injects: int = 0
    first_gossip_round: Optional[int] = None
    proxy_requests: int = 0
    first_proxy_round: Optional[int] = None
    last_proxy_round: Optional[int] = None
    gd_sends: int = 0
    first_gd_round: Optional[int] = None
    last_gd_round: Optional[int] = None
    confirmed_round: Optional[int] = None
    fallback_round: Optional[int] = None
    deliveries: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    faults: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def delivered_count(self) -> int:
        return len(self.deliveries)

    @property
    def complete(self) -> bool:
        """Every known destination has received the rumor."""
        if not self.dest:
            return False
        return all(dst in self.deliveries for dst in self.dest)

    def latencies(self) -> List[int]:
        return sorted(
            entry["latency"]
            for entry in self.deliveries.values()
            if entry.get("latency") is not None
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "rid": self.rid,
            "src": self.src,
            "inject_round": self.inject_round,
            "deadline": self.deadline,
            "dline": self.dline,
            "dest": list(self.dest),
            "direct": self.direct,
            "direct_send_round": self.direct_send_round,
            "direct_retries": [dict(entry) for entry in self.direct_retries],
            "direct_acks": {
                str(acker): round_no
                for acker, round_no in sorted(self.direct_acks.items())
            },
            "partitions": self.partitions,
            "fragments": self.fragments,
            "gossip_injects": self.gossip_injects,
            "first_gossip_round": self.first_gossip_round,
            "proxy_requests": self.proxy_requests,
            "first_proxy_round": self.first_proxy_round,
            "last_proxy_round": self.last_proxy_round,
            "gd_sends": self.gd_sends,
            "first_gd_round": self.first_gd_round,
            "last_gd_round": self.last_gd_round,
            "confirmed_round": self.confirmed_round,
            "fallback_round": self.fallback_round,
            "delivered": self.delivered_count,
            "complete": self.complete,
            "deliveries": {
                str(dst): dict(entry) for dst, entry in sorted(self.deliveries.items())
            },
            "faults": [dict(entry) for entry in self.faults],
        }
        return json_safe(out)


def _span(first: Optional[int], new: int) -> int:
    return new if first is None else min(first, new)


class RumorTimeline(SimObserver):
    """Folds telemetry events into per-rumor lifecycle records."""

    def __init__(self) -> None:
        self._records: Dict[str, RumorLifecycle] = {}
        self.events_seen = 0

    # -- access --------------------------------------------------------

    def lifecycle(self, rid: object) -> Optional[RumorLifecycle]:
        return self._records.get(str(rid))

    def lifecycles(self) -> List[RumorLifecycle]:
        """All records, ordered by injection round then rid."""
        return sorted(
            self._records.values(),
            key=lambda rec: (
                rec.inject_round if rec.inject_round is not None else -1,
                rec.rid,
            ),
        )

    def __len__(self) -> int:
        return len(self._records)

    def _get(self, rid: object) -> RumorLifecycle:
        key = str(rid)
        record = self._records.get(key)
        if record is None:
            record = RumorLifecycle(rid=key)
            self._records[key] = record
        return record

    # -- engine hook (backfill only) -----------------------------------

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        rid = getattr(rumor, "rid", None)
        if rid is None:
            return
        record = self._get(rid)
        if record.inject_round is None:
            record.inject_round = round_no
            record.src = pid
            deadline = getattr(rumor, "deadline", None)
            if deadline is not None:
                record.deadline = deadline
            dest = getattr(rumor, "dest", None)
            if dest and not record.dest:
                record.dest = sorted(dest)

    # -- telemetry events (authoritative) ------------------------------

    def on_event(self, event: ObsEvent) -> None:
        if event.kind.startswith("fault_"):
            self.events_seen += 1
            self._on_fault(event.kind[len("fault_"):], event.round_no, event.fields)
            return
        handler = self._HANDLERS.get(event.kind)
        if handler is None:
            return
        self.events_seen += 1
        handler(self, event.round_no, event.fields)

    def _on_rumor_inject(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        record.inject_round = round_no
        record.src = f.get("src", record.src)
        record.deadline = f.get("deadline", record.deadline)
        record.dline = f.get("dline", record.dline)
        record.direct = bool(f.get("direct", record.direct))
        dest = f.get("dest")
        if dest:
            record.dest = sorted(dest)

    def _on_rumor_split(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        record.partitions = f.get("partitions", record.partitions)
        record.fragments += int(f.get("fragments", 0))

    def _on_gossip_inject(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        record.gossip_injects += 1
        record.first_gossip_round = _span(record.first_gossip_round, round_no)

    def _on_proxy_request(self, round_no: int, f: Dict[str, Any]) -> None:
        for rid in f.get("rids", ()):
            record = self._get(rid)
            record.proxy_requests += 1
            record.first_proxy_round = _span(record.first_proxy_round, round_no)
            if record.last_proxy_round is None or round_no > record.last_proxy_round:
                record.last_proxy_round = round_no

    def _on_proxy_crossing(self, round_no: int, f: Dict[str, Any]) -> None:
        for rid in f.get("rids", ()):
            record = self._get(rid)
            record.first_proxy_round = _span(record.first_proxy_round, round_no)
            if record.last_proxy_round is None or round_no > record.last_proxy_round:
                record.last_proxy_round = round_no

    def _on_gd_send(self, round_no: int, f: Dict[str, Any]) -> None:
        for rid in f.get("rids", ()):
            record = self._get(rid)
            record.gd_sends += 1
            record.first_gd_round = _span(record.first_gd_round, round_no)
            if record.last_gd_round is None or round_no > record.last_gd_round:
                record.last_gd_round = round_no

    def _on_rumor_deliver(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        dst = f.get("pid")
        if dst is None or dst in record.deliveries:
            return
        latency = (
            round_no - record.inject_round
            if record.inject_round is not None
            else None
        )
        record.deliveries[dst] = {
            "round": round_no,
            "path": f.get("path"),
            "latency": latency,
        }

    def _on_rumor_confirm(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        if record.confirmed_round is None:
            record.confirmed_round = round_no

    def _on_rumor_fallback(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        if record.fallback_round is None:
            record.fallback_round = round_no

    def _on_rumor_direct(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        record.direct = True
        if record.direct_send_round is None:
            record.direct_send_round = round_no

    def _on_rumor_direct_retry(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        record.direct_retries.append(
            {
                "round": round_no,
                "targets": list(f.get("targets", ())),
                "attempt": f.get("attempt"),
            }
        )

    def _on_rumor_direct_ack(self, round_no: int, f: Dict[str, Any]) -> None:
        record = self._get(f["rid"])
        acker = f.get("acker")
        if acker is not None and acker not in record.direct_acks:
            record.direct_acks[acker] = round_no

    def _on_fault(self, kind: str, round_no: int, f: Dict[str, Any]) -> None:
        # Chaos fault-plane events carry the rids their payload reveals, so
        # an injected fault is pinned to every rumor whose message it hit.
        entry = {
            "round": round_no,
            "kind": kind,
            "src": f.get("src"),
            "dst": f.get("dst"),
            "service": f.get("service"),
            "detail": f.get("detail"),
        }
        for rid in f.get("rids", ()):
            self._get(rid).faults.append(dict(entry))

    _HANDLERS = {
        "rumor_inject": _on_rumor_inject,
        "rumor_split": _on_rumor_split,
        "gossip_inject": _on_gossip_inject,
        "proxy_request": _on_proxy_request,
        "proxy_crossing": _on_proxy_crossing,
        "gd_send": _on_gd_send,
        "rumor_deliver": _on_rumor_deliver,
        "rumor_confirm": _on_rumor_confirm,
        "rumor_fallback": _on_rumor_fallback,
        "rumor_direct": _on_rumor_direct,
        "rumor_direct_retry": _on_rumor_direct_retry,
        "rumor_direct_ack": _on_rumor_direct_ack,
    }

    # -- output --------------------------------------------------------

    def export(self, sink: Any) -> int:
        """Append one ``rumor_lifecycle`` event per rumor to a sink."""
        exported = 0
        for record in self.lifecycles():
            round_no = record.inject_round if record.inject_round is not None else -1
            sink.write(
                ObsEvent.make("rumor_lifecycle", round_no, **record.to_dict())
            )
            exported += 1
        return exported

    def summary(self) -> Dict[str, Any]:
        records = self.lifecycles()
        complete = sum(1 for r in records if r.complete)
        fallbacks = sum(1 for r in records if r.fallback_round is not None)
        confirmed = sum(1 for r in records if r.confirmed_round is not None)
        latencies = [lat for r in records for lat in r.latencies()]
        return {
            "rumors": len(records),
            "complete": complete,
            "confirmed": confirmed,
            "fallbacks": fallbacks,
            "deliveries": sum(r.delivered_count for r in records),
            "max_latency": max(latencies) if latencies else None,
            "mean_latency": (
                round(sum(latencies) / len(latencies), 2) if latencies else None
            ),
        }

    def replay(self, rid: object) -> List[str]:
        """Human-readable, round-ordered milestones of one rumor."""
        record = self.lifecycle(rid)
        if record is None:
            return ["rumor {!r}: no events observed".format(str(rid))]
        moments: List[tuple] = []

        def moment(round_no: Optional[int], text: str) -> None:
            if round_no is not None:
                moments.append((round_no, text))

        moment(
            record.inject_round,
            "injected at p{} (|D|={}, deadline={}, dline={}{})".format(
                record.src,
                len(record.dest),
                record.deadline,
                record.dline,
                ", direct" if record.direct else "",
            ),
        )
        if record.fragments:
            moment(
                record.inject_round,
                "split into {} fragments over {} partitions".format(
                    record.fragments, record.partitions
                ),
            )
        moment(record.first_gossip_round, "first intra-group gossip injection")
        moment(
            record.first_proxy_round,
            "first proxy crossing ({} requests through r{})".format(
                record.proxy_requests, record.last_proxy_round
            ),
        )
        moment(
            record.first_gd_round,
            "group-distribution fan-out begins ({} sends through r{})".format(
                record.gd_sends, record.last_gd_round
            ),
        )
        moment(record.confirmed_round, "hitSet confirmed at the source")
        moment(record.fallback_round, "fallback (shoot) triggered")
        moment(record.direct_send_round, "direct send to the destination set")
        for retry in record.direct_retries:
            moment(
                retry.get("round"),
                "direct retransmit #{} to {} unacked destination(s)".format(
                    retry.get("attempt"), len(retry.get("targets", ()))
                ),
            )
        for acker, ack_round in sorted(record.direct_acks.items()):
            moment(ack_round, "direct ack from p{}".format(acker))
        for fault in record.faults:
            moment(
                fault.get("round"),
                "FAULT {}: {} message p{}->p{}{}".format(
                    fault.get("kind"),
                    fault.get("service"),
                    fault.get("src"),
                    fault.get("dst"),
                    (
                        " (+{} rounds)".format(fault.get("detail"))
                        if fault.get("kind") in ("delay", "duplicate")
                        else ""
                    ),
                ),
            )
        for dst, entry in sorted(record.deliveries.items()):
            moment(
                entry["round"],
                "delivered to p{} via {} (latency {})".format(
                    dst, entry.get("path"), entry.get("latency")
                ),
            )
        moments.sort(key=lambda pair: pair[0])
        return [
            "r{:>5}  {}".format(round_no, text) for round_no, text in moments
        ]
