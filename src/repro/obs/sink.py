"""Event sinks: JSONL writer, flight-recorder ring buffer, test collector.

A sink is anything with ``write(event)``.  :class:`JsonlSink` streams
events to a file (or any text stream) one JSON object per line;
:class:`RingBufferSink` keeps only the most recent ``capacity`` events in
memory so always-on flight recording stays bounded, and can drain its
contents into another sink after the fact (e.g. only when a run fails).
:class:`SequenceSink` numbers events with a monotonic per-sink sequence
and hands them over in batches — the capture buffer shard workers drain
into telemetry frames.
"""

from __future__ import annotations

import io
from collections import deque
from typing import Deque, List, Optional, TextIO, Tuple

from repro.obs.events import ObsEvent

__all__ = ["CollectSink", "JsonlSink", "RingBufferSink", "SequenceSink"]


class JsonlSink:
    """Serialize events to a text stream, one JSON object per line.

    Subprocess-safe: ``close()`` always flushes first (also for streams
    the caller owns), and ``flush_every`` forces a flush each N events so
    an abnormal worker exit loses at most the last partial batch instead
    of a whole buffered tail.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[TextIO] = None,
        flush_every: Optional[int] = None,
    ):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path= or stream=")
        if flush_every is not None and flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self._owns_stream = stream is None
        self._stream: Optional[TextIO] = (
            io.open(path, "w", encoding="utf-8") if path is not None else stream
        )
        self.path = path
        self.flush_every = flush_every
        self.emitted = 0

    def write(self, event: ObsEvent) -> None:
        if self._stream is None:
            raise ValueError("sink is closed")
        self._stream.write(event.to_json())
        self._stream.write("\n")
        self.emitted += 1
        if self.flush_every is not None and self.emitted % self.flush_every == 0:
            self._stream.flush()

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
            finally:
                if self._owns_stream:
                    self._stream.close()
        self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SequenceSink:
    """Buffer events with a monotonic sequence number until drained.

    The sequence is per-sink and never resets, so ``(round, seq)`` is a
    total order over one emitter's whole stream even across many drains —
    exactly what the coordinator's cross-shard merge key needs.
    """

    def __init__(self) -> None:
        self._buffer: List[Tuple[int, ObsEvent]] = []
        self.seq = 0
        self.seen = 0

    def write(self, event: ObsEvent) -> None:
        self._buffer.append((self.seq, event))
        self.seq += 1
        self.seen += 1

    def __len__(self) -> int:
        return len(self._buffer)

    def drain(self) -> List[Tuple[int, ObsEvent]]:
        """Hand over all buffered ``(seq, event)`` pairs and reset."""
        drained = self._buffer
        self._buffer = []
        return drained


class RingBufferSink:
    """Flight recorder: keep the last ``capacity`` events, count the rest."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[ObsEvent] = deque(maxlen=capacity)
        self.seen = 0

    def write(self, event: ObsEvent) -> None:
        self.seen += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        return self.seen - len(self._events)

    def events(self) -> List[ObsEvent]:
        return list(self._events)

    def drain_to(self, sink: "JsonlSink") -> int:
        """Flush the buffered tail into another sink; returns the count."""
        drained = 0
        while self._events:
            sink.write(self._events.popleft())
            drained += 1
        return drained


class CollectSink:
    """Append every event to a plain list (test helper)."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def write(self, event: ObsEvent) -> None:
        self.events.append(event)
