"""Event sinks: JSONL writer, flight-recorder ring buffer, test collector.

A sink is anything with ``write(event)``.  :class:`JsonlSink` streams
events to a file (or any text stream) one JSON object per line;
:class:`RingBufferSink` keeps only the most recent ``capacity`` events in
memory so always-on flight recording stays bounded, and can drain its
contents into another sink after the fact (e.g. only when a run fails).
"""

from __future__ import annotations

import io
from collections import deque
from typing import Deque, List, Optional, TextIO

from repro.obs.events import ObsEvent

__all__ = ["CollectSink", "JsonlSink", "RingBufferSink"]


class JsonlSink:
    """Serialize events to a text stream, one JSON object per line."""

    def __init__(self, path: Optional[str] = None, stream: Optional[TextIO] = None):
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path= or stream=")
        self._owns_stream = stream is None
        self._stream: Optional[TextIO] = (
            io.open(path, "w", encoding="utf-8") if path is not None else stream
        )
        self.path = path
        self.emitted = 0

    def write(self, event: ObsEvent) -> None:
        if self._stream is None:
            raise ValueError("sink is closed")
        self._stream.write(event.to_json())
        self._stream.write("\n")
        self.emitted += 1

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSink:
    """Flight recorder: keep the last ``capacity`` events, count the rest."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[ObsEvent] = deque(maxlen=capacity)
        self.seen = 0

    def write(self, event: ObsEvent) -> None:
        self.seen += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        return self.seen - len(self._events)

    def events(self) -> List[ObsEvent]:
        return list(self._events)

    def drain_to(self, sink: "JsonlSink") -> int:
        """Flush the buffered tail into another sink; returns the count."""
        drained = 0
        while self._events:
            sink.write(self._events.popleft())
            drained += 1
        return drained


class CollectSink:
    """Append every event to a plain list (test helper)."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def write(self, event: ObsEvent) -> None:
        self.events.append(event)
