"""repro.obs — unified telemetry: events, metrics, sinks, rumor timelines.

The protocol stack emits :class:`ObsEvent` records through a
:class:`Telemetry` facade; sinks persist them (JSONL, ring buffer) and
the :class:`RumorTimeline` observer folds them into per-rumor lifecycle
records.  When telemetry is disabled the shared :data:`NULL_TELEMETRY`
singleton reduces every instrumentation point to one attribute check.
"""

from repro.obs.events import ObsEvent, json_safe
from repro.obs.instrument import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
)
from repro.obs.sink import CollectSink, JsonlSink, RingBufferSink, SequenceSink
from repro.obs.timeline import RumorLifecycle, RumorTimeline

__all__ = [
    "NULL_TELEMETRY",
    "CollectSink",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullTelemetry",
    "ObsEvent",
    "RingBufferSink",
    "RumorLifecycle",
    "RumorTimeline",
    "SequenceSink",
    "Span",
    "Telemetry",
    "json_safe",
]
