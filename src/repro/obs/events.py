"""JSON-safe telemetry events.

An :class:`ObsEvent` is one record in the telemetry stream: a ``kind``
tag, the simulation round it happened in, and a flat field dict that is
*guaranteed* JSON-serializable.  The guarantee is enforced at emission
time by :func:`json_safe`, which reduces arbitrary payload values to
JSON primitives — rumor ids become their string form, sets become sorted
lists, and raw byte strings are replaced by a length marker so that a
trace file never leaks a rumor's confidential payload ``z``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["ObsEvent", "json_safe", "REQUIRED_KEYS"]

# Every serialized event carries at least these keys (the CI trace-smoke
# job validates them on real output).
REQUIRED_KEYS = ("kind", "round")

_RESERVED = frozenset(REQUIRED_KEYS)


def json_safe(value: Any) -> Any:
    """Reduce ``value`` to something ``json.dumps`` accepts verbatim.

    * primitives pass through;
    * ``bytes`` are replaced by a ``"<N bytes>"`` marker — confidential
      rumor payloads must never appear in a trace;
    * mappings keep their structure with stringified keys;
    * sets/frozensets become deterministically sorted lists;
    * anything else (RumorId, dataclasses, ...) becomes ``str(value)``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return "<{} bytes>".format(len(value))
    if isinstance(value, Mapping):
        return {str(key): json_safe(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=_sort_key)
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return str(value)


def _sort_key(item: Any):
    """Total order over heterogeneous JSON values (for set rendering)."""
    return (type(item).__name__, str(item))


@dataclass(frozen=True)
class ObsEvent:
    """One telemetry event.

    ``fields`` must already be JSON-safe; :meth:`make` sanitizes for you.
    Field names colliding with the envelope keys (``kind``, ``round``)
    are dropped rather than allowed to shadow the envelope.
    """

    kind: str
    round_no: int
    fields: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def make(cls, kind: str, round_no: int, **fields: Any) -> "ObsEvent":
        return cls(kind=kind, round_no=round_no, fields=json_safe(fields))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "round": self.round_no}
        for key, value in self.fields.items():
            if key not in _RESERVED:
                out[key] = value
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def __str__(self) -> str:
        parts = " ".join(
            "{}={}".format(key, value) for key, value in sorted(self.fields.items())
        )
        return "[r{:>5}] {:<16} {}".format(self.round_no, self.kind, parts)
