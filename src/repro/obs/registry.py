"""Metrics registry: labelled counters, gauges, histograms, span timers.

The registry is deliberately tiny and dependency-free.  Instruments are
created on first use and keyed by ``(name, sorted(labels))``, so

    registry.counter("gossip.injected", service="gg").inc()

always returns the same :class:`Counter` for the same label set.  A
:class:`Span` wraps ``time.perf_counter`` and lands its duration in a
histogram, usable as a context manager::

    with registry.span("exec.task", scenario="steady"):
        ...
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Span"]

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can move both ways (e.g. active blocks, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Streaming summary: count / total / min / max / mean.

    No buckets — the repro workloads need magnitudes, not quantiles, and
    a five-number summary keeps merge and JSON output trivial.
    """

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }


class Span:
    """Times a block and records the duration into a histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started: Optional[float] = None
        self.seconds: Optional[float] = None

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is not None:
            self.seconds = time.perf_counter() - self._started
            self._histogram.observe(self.seconds)


class MetricsRegistry:
    """Get-or-create home for all instruments in one run."""

    def __init__(self) -> None:
        self._instruments: Dict[LabelKey, Any] = {}

    def _get(self, factory, name: str, labels: Dict[str, Any]):
        key = _label_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                "metric {!r} already registered as {}".format(
                    name, instrument.kind
                )
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def span(self, name: str, **labels: Any) -> Span:
        return Span(self.histogram(name, **labels))

    def __len__(self) -> int:
        return len(self._instruments)

    def items(self) -> Iterator[Tuple[LabelKey, Any]]:
        return iter(sorted(self._instruments.items()))

    def dump(self) -> List[Dict[str, Any]]:
        """All instruments as JSON-safe dicts, deterministically ordered."""
        out: List[Dict[str, Any]] = []
        for (name, labels), instrument in self.items():
            entry: Dict[str, Any] = {
                "name": name,
                "type": instrument.kind,
                "labels": dict(labels),
            }
            entry.update(instrument.as_dict())
            out.append(entry)
        return out

    def render(self) -> str:
        """Human-readable registry dump (the CLI ``--metrics`` view)."""
        lines: List[str] = []
        for entry in self.dump():
            labels = ",".join(
                "{}={}".format(k, v) for k, v in sorted(entry["labels"].items())
            )
            head = "{}{}".format(
                entry["name"], "{" + labels + "}" if labels else ""
            )
            body = " ".join(
                "{}={}".format(k, v)
                for k, v in entry.items()
                if k not in ("name", "type", "labels")
            )
            lines.append("{:<44} {:<9} {}".format(head, entry["type"], body))
        return "\n".join(lines) if lines else "(no metrics recorded)"
