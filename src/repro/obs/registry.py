"""Metrics registry: labelled counters, gauges, histograms, span timers.

The registry is deliberately tiny and dependency-free.  Instruments are
created on first use and keyed by ``(name, sorted(labels))``, so

    registry.counter("gossip.injected", service="gg").inc()

always returns the same :class:`Counter` for the same label set.  A
:class:`Span` wraps ``time.perf_counter`` and lands its duration in a
histogram, usable as a context manager::

    with registry.span("exec.task", scenario="steady"):
        ...
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Span"]

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can move both ways (e.g. active blocks, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Sample-keeping summary: count / total / min / max / mean / quantiles.

    No buckets — the repro workloads are small enough that keeping the raw
    samples is cheaper than tuning bucket edges, and exact quantiles make
    the SLO summaries (p50/p99/p999) trustworthy at any sample count.
    """

    kind = "histogram"

    QUANTILES = ((0.5, "p50"), (0.99, "p99"), (0.999, "p999"))

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.samples.append(value)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Exact sample quantile with linear interpolation.

        Returns ``None`` when no samples were observed; ``q`` must lie in
        ``[0, 1]``.  With a single sample every quantile is that sample.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got {!r}".format(q))
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }
        ordered = sorted(self.samples)
        for q, label in self.QUANTILES:
            if not ordered:
                out[label] = None
                continue
            position = q * (len(ordered) - 1)
            lower = int(position)
            upper = min(lower + 1, len(ordered) - 1)
            fraction = position - lower
            value = ordered[lower] + (ordered[upper] - ordered[lower]) * fraction
            out[label] = round(value, 6)
        return out


class Span:
    """Times a block and records the duration into a histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started: Optional[float] = None
        self.seconds: Optional[float] = None

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started is not None:
            self.seconds = time.perf_counter() - self._started
            self._histogram.observe(self.seconds)


class MetricsRegistry:
    """Get-or-create home for all instruments in one run."""

    def __init__(self) -> None:
        self._instruments: Dict[LabelKey, Any] = {}

    def _get(self, factory, name: str, labels: Dict[str, Any]):
        key = _label_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                "metric {!r} already registered as {}".format(
                    name, instrument.kind
                )
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def span(self, name: str, **labels: Any) -> Span:
        return Span(self.histogram(name, **labels))

    def __len__(self) -> int:
        return len(self._instruments)

    def items(self) -> Iterator[Tuple[LabelKey, Any]]:
        return iter(sorted(self._instruments.items()))

    def dump(self) -> List[Dict[str, Any]]:
        """All instruments as JSON-safe dicts, deterministically ordered."""
        out: List[Dict[str, Any]] = []
        for (name, labels), instrument in self.items():
            entry: Dict[str, Any] = {
                "name": name,
                "type": instrument.kind,
                "labels": dict(labels),
            }
            entry.update(instrument.as_dict())
            out.append(entry)
        return out

    def snapshot(self) -> List[Dict[str, Any]]:
        """Wire-safe instrument state, deterministically ordered.

        Unlike :meth:`dump` (a human/JSON view with derived quantiles),
        a snapshot carries the *mergeable* state — counter/gauge values
        and raw histogram samples — so registries from shard workers can
        be folded into one via :meth:`merge_snapshot` without losing
        exactness.  Payload values are scalars and flat containers only,
        so a snapshot rides the net codec unmodified.
        """
        out: List[Dict[str, Any]] = []
        for (name, labels), instrument in self.items():
            if instrument.kind == "histogram":
                state: Dict[str, Any] = {"samples": list(instrument.samples)}
            else:
                state = {"value": instrument.value}
            out.append(
                {
                    "name": name,
                    "kind": instrument.kind,
                    "labels": dict(labels),
                    "state": state,
                }
            )
        return out

    def merge_snapshot(
        self, entries: List[Dict[str, Any]], **extra_labels: Any
    ) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add their value, gauges add their value (merged gauges
        are sums — the only cross-shard gauge semantics that compose),
        histograms replay their samples.  ``extra_labels`` are appended
        to every entry's label set (e.g. ``worker=3``), so callers choose
        between per-worker breakdowns and exact global totals.
        """
        for entry in entries:
            labels = dict(entry["labels"])
            labels.update(extra_labels)
            kind = entry["kind"]
            state = entry["state"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(state["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).add(state["value"])
            elif kind == "histogram":
                histogram = self.histogram(entry["name"], **labels)
                for sample in state["samples"]:
                    histogram.observe(sample)
            else:
                raise ValueError(
                    "snapshot entry with unknown kind {!r}".format(kind)
                )

    def render(self) -> str:
        """Human-readable registry dump (the CLI ``--metrics`` view)."""
        lines: List[str] = []
        for entry in self.dump():
            labels = ",".join(
                "{}={}".format(k, v) for k, v in sorted(entry["labels"].items())
            )
            head = "{}{}".format(
                entry["name"], "{" + labels + "}" if labels else ""
            )
            body = " ".join(
                "{}={}".format(k, v)
                for k, v in entry.items()
                if k not in ("name", "type", "labels")
            )
            lines.append("{:<44} {:<9} {}".format(head, entry["type"], body))
        return "\n".join(lines) if lines else "(no metrics recorded)"
