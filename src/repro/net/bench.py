"""E18 sharded-scaling bench: the in-process engine vs ``repro.net``.

E18 answers two questions about the sharded backend:

* **Is it correct at scale?**  Every cell runs the canonical steady/lean
  cell (the E17 spec) on both backends and records the payload digest of
  each ``RunRecord.without_profile()``; ``digest_match`` asserts they are
  bit-identical, and ``clean`` asserts the ConfidentialityAuditor — fed
  the reassembled cross-shard delivered stream — saw zero violations.
* **What does the wire cost?**  Wall-clock for both backends, the
  local/cross message split from :meth:`ShardEngine.net_summary`, the
  shard plan's group locality, per-worker-pair cross-batch frame/byte
  counts (deterministic, in ``runs``), and per-round coordinator phase
  latencies — route/ship/barrier/merge p50/p99/p999 — in ``timing``.  On a single-core box the lockstep
  sharded run is strictly *slower* than in-process (every message pays
  codec + transport overhead and workers time-share one CPU); the
  artifact reports that slowdown honestly rather than a fabricated
  speedup — the bench measures the price of the process boundary, which
  is what multi-core placement would have to amortize.

Artifact: ``BENCH_e18_sharded_scaling.json`` (written by the ``net
bench`` CLI command).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import CongosParams
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, canonical_json
from repro.harness.runner import run_congos_scenario

__all__ = [
    "E18_BENCH_NAME",
    "sharded_spec",
    "run_sharded_scaling",
    "sharded_scaling_payload",
]

E18_BENCH_NAME = "e18_sharded_scaling"

DEFAULT_NS: Tuple[int, ...] = (64, 256)


def sharded_spec(
    n: int,
    rounds: int = 40,
    deadline: int = 64,
    workers: int = 2,
    transport: str = "tcp",
) -> RunSpec:
    """The E17 steady/lean cell, retargeted at the sharded backend."""
    return RunSpec.make(
        "steady",
        seed=0,
        n=n,
        rounds=rounds,
        deadline=deadline,
        rate=1,
        period=4,
        params=CongosParams.lean(),
        backend="sharded",
        net={"workers": workers, "transport": transport},
    )


def _payload_digest(result) -> str:
    # No spec_key on purpose: the two backends have different spec keys
    # (backend/net enter the content hash when non-default), and the
    # digest must compare the *simulation payload* alone.
    clean = RunRecord.from_result(result).without_profile().to_dict()
    return hashlib.sha256(canonical_json(clean).encode("utf-8")).hexdigest()


def _timed_run(spec: RunSpec):
    started = time.perf_counter()
    result = run_congos_scenario(spec.to_scenario())
    return result, round(time.perf_counter() - started, 3)


def run_sharded_scaling(
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = 40,
    deadline: int = 64,
    workers: int = 2,
    transport: str = "tcp",
    progress: Optional[Progress] = None,
) -> List[Dict[str, object]]:
    """Run each ``n`` on both backends; one comparison row per ``n``."""
    rows: List[Dict[str, object]] = []
    for n in ns:
        inproc_spec = RunSpec.make(
            "steady",
            seed=0,
            n=n,
            rounds=rounds,
            deadline=deadline,
            rate=1,
            period=4,
            params=CongosParams.lean(),
        )
        shard_spec = sharded_spec(
            n,
            rounds=rounds,
            deadline=deadline,
            workers=workers,
            transport=transport,
        )
        inproc, inproc_wall = _timed_run(inproc_spec)
        sharded, sharded_wall = _timed_run(shard_spec)
        net = sharded.engine.net_summary()
        total = inproc.stats.total
        # Deterministic: batch contents come from the deterministic
        # codec, so frame/byte counts repeat run to run (unlike the
        # wall-clock phase percentiles, which stay in ``timing``).
        worker_pairs = sharded.engine.worker_pair_summary()
        phase_latency = {
            phase: {
                key: summary[key]
                for key in ("count", "mean", "p50", "p99", "p999", "max")
            }
            for phase, summary in sorted(
                sharded.engine.phase_summary().items()
            )
        }
        rows.append(
            {
                "n": n,
                "rounds": rounds,
                "deadline": deadline,
                "workers": workers,
                "transport": transport,
                "spec_key": inproc_spec.key,
                "sharded_spec_key": shard_spec.key,
                "digest": _payload_digest(inproc),
                "sharded_digest": _payload_digest(sharded),
                "digest_match": _payload_digest(inproc)
                == _payload_digest(sharded),
                "total": total,
                "rumors": sharded.rumors_injected,
                "qod_satisfied": sharded.qod.satisfied,
                "clean": sharded.confidentiality.is_clean(),
                "local_messages": net["local_messages"],
                "cross_messages": net["cross_messages"],
                "cross_fraction": net["cross_fraction"],
                "group_locality": round(
                    sharded.engine.plan.locality(sharded.partition_set), 4
                ),
                "worker_pairs": worker_pairs,
                "phase_latency_s": phase_latency,
                "wall_inproc_s": inproc_wall,
                "wall_sharded_s": sharded_wall,
                "slowdown": (
                    round(sharded_wall / inproc_wall, 2)
                    if inproc_wall
                    else None
                ),
                "msgs_per_s_sharded": (
                    round(total / sharded_wall) if sharded_wall else None
                ),
            }
        )
        if progress is not None:
            progress.task_done(wall_time=inproc_wall + sharded_wall)
    return rows


def sharded_scaling_payload(
    rows: Iterable[Mapping[str, object]],
) -> Dict[str, object]:
    """The E18 artifact body (deterministic ``runs`` / wall-clock
    ``timing`` split, as in the other BENCH artifacts)."""
    rows = list(rows)
    runs = [
        {
            key: row[key]
            for key in (
                "n",
                "rounds",
                "deadline",
                "workers",
                "transport",
                "spec_key",
                "sharded_spec_key",
                "digest",
                "sharded_digest",
                "digest_match",
                "total",
                "rumors",
                "qod_satisfied",
                "clean",
                "local_messages",
                "cross_messages",
                "cross_fraction",
                "group_locality",
                "worker_pairs",
            )
        }
        for row in rows
    ]
    timing = [
        {
            "n": row["n"],
            "wall_inproc_s": row["wall_inproc_s"],
            "wall_sharded_s": row["wall_sharded_s"],
            "slowdown": row["slowdown"],
            "msgs_per_s_sharded": row["msgs_per_s_sharded"],
            "phase_latency_s": row["phase_latency_s"],
        }
        for row in rows
    ]
    return {
        "scenario": "steady",
        "sync": "lockstep",
        "runs": runs,
        "timing": timing,
        "all_digests_match": all(row["digest_match"] for row in rows),
        "all_clean": all(row["clean"] for row in rows),
        "note": (
            "single-host measurement: workers time-share the CPU, so "
            "slowdown is the per-message codec+transport cost of the "
            "process boundary, not a parallel speedup"
        ),
    }
