"""repro.net — sharded multi-process CONGOS on a real message transport.

The subsystem has four layers, each usable on its own:

* :mod:`repro.net.codec` — a versioned, deterministic wire format for
  :class:`~repro.sim.messages.Message` payloads and control frames.
  Leak-safe by construction: only registered payload types encode, and a
  frame never widens what its payload ``reveals()``.
* :mod:`repro.net.transport` — the pluggable byte transport.  The stdlib
  TCP loopback backend has no dependencies and carries tier-1 tests and
  CI; an optional zmq backend lives behind the ``net`` extra.
* :mod:`repro.net.shard` — the group-aligned pid-to-worker plan.
* :mod:`repro.net.worker` / :mod:`repro.net.coordinator` — the worker
  process hosting a shard of :class:`~repro.sim.process.ProcessShell`\\ s
  and the coordinator that drives the round barrier, runs the adversary,
  relays cross-shard traffic and feeds the auditors from the reassembled
  event stream.

Entry point: :func:`repro.net.coordinator.run_sharded_scenario`, or more
conveniently ``Scenario(backend="sharded")`` /
``repro.api.run_scenario(..., backend="sharded")``.
"""

from repro.net.codec import (
    CodecError,
    WIRE_VERSION,
    decode_frame,
    decode_tagged_messages,
    encode_frame,
    encode_tagged_messages,
)
from repro.net.shard import ShardPlan
from repro.net.transport import get_transport

__all__ = [
    "CodecError",
    "ShardPlan",
    "WIRE_VERSION",
    "decode_frame",
    "decode_tagged_messages",
    "encode_frame",
    "encode_tagged_messages",
    "get_transport",
]
