"""The shard coordinator: a sharded drop-in for ``run_congos_scenario``.

:func:`run_sharded_scenario` runs a scenario's pids across worker
*processes* connected by a real transport, while keeping every piece of
global logic — the adversary, the event log, message statistics, both
auditors, observer dispatch — in the coordinator, in exactly the order
:class:`~repro.sim.engine.Engine` runs it.  The result is bit-identical
to the in-process backend (same ``RunRecord.without_profile()``), with
one caveat: chaos runs compare against the in-process engine in
*message-keyed* mode (``Scenario.chaos_keyed``), because the default
index-order fate stream has no shard-invariant meaning.

Round barrier
    Lockstep, the only sync policy implemented: every worker finishes
    its send phase before any cross batch is forwarded, and every worker
    finishes delivery before the next round starts.  The barrier lives
    in two frame exchanges per round (``round``/``sent``, then
    ``deliver``/``events``), so a different policy — e.g. bounded-lag
    pipelining — would slot in by changing only this module's loop.

What crosses the wire, and what the coordinator sees
    Cross-shard batches travel as opaque codec bytes; the coordinator
    relays them between workers without decoding, so rumor payload bytes
    never materialize in the coordinator except where the audit needs
    them: each worker's *delivered* stream, which is decoded and fed to
    the :class:`~repro.audit.confidentiality.ConfidentialityAuditor` in
    reconstructed global order.  Delivery records carry payload digests
    only; plaintext is re-attached from the coordinator's own injection
    log, never from the wire.

Adversary support
    Everything driven by ``round_start`` (workloads, crash/restart fault
    models, adaptive killers reading the event log) works unchanged.
    Mid-round adversaries are rejected at setup: they inspect the round's
    outgoing messages, which never exist in one place here.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import asdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.adversary.base import Adversary, ComposedAdversary
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.audit.failfast import FailFastMonitor
from repro.chaos.plane import ChaosFaultPlane
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import TargetedFaultPlane
from repro.core.congos import build_partition_set
from repro.core.partitions import PartitionSet
from repro.gossip.rumor import RumorId
from repro.net.codec import decode_frame, decode_tagged_messages, encode_frame
from repro.net.shard import ShardPlan
from repro.net.transport import DEFAULT_TIMEOUT, get_transport
from repro.net.worker import worker_main
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import RoundClock
from repro.sim.events import (
    CrashEvent,
    EventLog,
    InjectEvent,
    RestartEvent,
)
from repro.sim.metrics import MessageStats
from repro.sim.rng import derive_rng

__all__ = ["NetOptions", "ShardEngine", "run_sharded_scenario"]


class NetOptions:
    """Resolved ``Scenario.net`` options (all optional, with defaults)."""

    KEYS = ("workers", "transport", "timeout")

    def __init__(self, net: Optional[Dict[str, object]]):
        net = dict(net or {})
        unknown = set(net) - set(self.KEYS)
        if unknown:
            raise ValueError(
                "unknown net options: {}".format(sorted(unknown))
            )
        self.workers = int(net.get("workers", 2))  # type: ignore[arg-type]
        self.transport = str(net.get("transport", "tcp"))
        timeout = net.get("timeout")
        self.timeout = DEFAULT_TIMEOUT if timeout is None else float(timeout)  # type: ignore[arg-type]
        if self.workers < 1:
            raise ValueError("net.workers must be >= 1")


class ShardEngine:
    """The coordinator's engine facade.

    Duck-types the :class:`~repro.sim.engine.Engine` surface that
    observers, auditors and ``RunResult`` consumers actually touch —
    ``round``, ``event_log``, ``stats``, ``rounds_executed``,
    ``alive_pids()`` — plus sharding-specific accounting for the E18
    bench (:meth:`net_summary`).
    """

    def __init__(self, n: int, plan: ShardPlan, transport: str):
        self.n = n
        self.plan = plan
        self.transport = transport
        self.sync = "lockstep"
        self.clock = RoundClock(0)
        self.stats = MessageStats()
        self.event_log = EventLog()
        self.rounds_executed = 0
        self.local_messages = 0
        self.cross_messages = 0
        self._alive: Set[int] = set(range(n))
        self._touched_this_round: Set[int] = set()
        # Always-on net-only observability (namespaced ``net.``): round
        # phase spans, worker wait/queue summaries, transport totals.
        # Kept outside any user Telemetry so the E18 bench can read it
        # without paying for event capture.
        self.metrics = MetricsRegistry()
        # (src_worker, dst_worker) -> relayed cross-batch frames/bytes.
        # Deterministic: the codec is, and batches are per-round merges.
        self.pair_frames: Dict[Tuple[int, int], int] = {}
        self.pair_bytes: Dict[Tuple[int, int], int] = {}

    @property
    def round(self) -> int:
        return self.clock.round

    def alive_pids(self) -> Set[int]:
        return set(self._alive)

    def net_summary(self) -> Dict[str, object]:
        total = self.local_messages + self.cross_messages
        return {
            "workers": self.plan.workers,
            "transport": self.transport,
            "sync": self.sync,
            "local_messages": self.local_messages,
            "cross_messages": self.cross_messages,
            "cross_fraction": (
                round(self.cross_messages / total, 4) if total else 0.0
            ),
        }

    def record_cross_batch(self, src: int, dst: int, nbytes: int) -> None:
        pair = (src, dst)
        self.pair_frames[pair] = self.pair_frames.get(pair, 0) + 1
        self.pair_bytes[pair] = self.pair_bytes.get(pair, 0) + nbytes

    def worker_pair_summary(self) -> Dict[str, Dict[str, int]]:
        """Relayed cross-batch frame/byte counts per ``src->dst`` pair."""
        return {
            "{}->{}".format(src, dst): {
                "frames": self.pair_frames[(src, dst)],
                "bytes": self.pair_bytes[(src, dst)],
            }
            for src, dst in sorted(self.pair_frames)
        }

    def phase_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-phase round-latency summaries (incl. p50/p99/p999)."""
        out: Dict[str, Dict[str, object]] = {}
        for (name, labels), instrument in self.metrics.items():
            if name == "net.round.phase_seconds":
                out[dict(labels)["phase"]] = instrument.as_dict()
        return out


class ShardAdversaryView:
    """Duck-types :class:`~repro.sim.engine.AdversaryView` for shard runs.

    Omniscient *membership* state (aliveness, event log) is global at
    the coordinator; per-node internals are not, so :meth:`behavior`
    raises instead of silently returning stale state.
    """

    def __init__(self, engine: ShardEngine):
        self.engine = engine
        self._all_pids: FrozenSet[int] = frozenset(range(engine.n))

    @property
    def round(self) -> int:
        return self.engine.round

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def all_pids(self) -> FrozenSet[int]:
        return self._all_pids

    @property
    def event_log(self) -> EventLog:
        return self.engine.event_log

    def alive_pids(self) -> Set[int]:
        return self.engine.alive_pids()

    def crashed_pids(self) -> Set[int]:
        return self._all_pids - self.engine._alive

    def is_alive(self, pid: int) -> bool:
        return pid in self.engine._alive

    def touched_this_round(self) -> Set[int]:
        return set(self.engine._touched_this_round)

    def behavior(self, pid: int):
        raise NotImplementedError(
            "node {} lives in a shard worker process; the sharded backend "
            "does not expose remote node internals to adversaries".format(pid)
        )


def _reject_mid_round_adversaries(adversary: Adversary) -> None:
    """Fail fast on adversaries the sharded backend cannot honor.

    Names the exact offending part — including its position inside a
    :class:`ComposedAdversary` — and points at the supported
    alternative: targeted chaos policies (``Scenario.targeted`` with
    ``chaos_keyed=True``) make their decisions from shard-invariant
    message metadata, so they run on this backend where a mid-round
    adversary cannot.
    """
    composed = isinstance(adversary, ComposedAdversary)
    parts = adversary.parts if composed else [adversary]
    for index, part in enumerate(parts):
        if type(part).mid_round is not Adversary.mid_round:
            if composed:
                where = "{} (part {} of {} in a ComposedAdversary)".format(
                    type(part).__name__, index + 1, len(parts)
                )
            else:
                where = type(part).__name__
            raise NotImplementedError(
                "{} overrides mid_round (it inspects the round's outgoing "
                "messages); the sharded backend never materializes them in "
                "one place.  Run this scenario with backend='inproc', or "
                "express the attack as a targeted chaos policy "
                "(Scenario.targeted + chaos_keyed=True, see "
                "repro.chaos.targeted) — those decide from per-message "
                "metadata and replay identically on the sharded "
                "backend".format(where)
            )


class _WorkerPool:
    """Spawned worker processes plus their coordinator-side connections."""

    def __init__(
        self,
        scenario,
        plan: ShardPlan,
        options: NetOptions,
        telemetry_enabled: bool = False,
    ):
        self.plan = plan
        transport = get_transport(options.transport, timeout=options.timeout)
        self.listener = transport.listen()
        context = multiprocessing.get_context("spawn")
        self.processes = []
        self.connections: Dict[int, object] = {}
        try:
            for worker in range(plan.workers):
                config = {
                    "worker": worker,
                    "n": scenario.n,
                    "seed": scenario.seed,
                    "params": asdict(scenario.params),
                    "chaos": scenario.chaos,
                    "targeted": scenario.targeted,
                    "owner": plan.owner,
                    "address": self.listener.address,
                    "transport": options.transport,
                    "timeout": options.timeout,
                    "telemetry": telemetry_enabled,
                }
                process = context.Process(
                    target=worker_main, args=(config,), daemon=True
                )
                process.start()
                self.processes.append(process)
            for _ in range(plan.workers):
                connection = self.listener.accept()
                kind, body = decode_frame(connection.recv())
                if kind == "error":
                    raise RuntimeError(
                        "shard worker failed during startup:\n{}".format(
                            body.get("traceback")
                        )
                    )
                if kind != "hello":
                    raise RuntimeError(
                        "expected hello frame, got {!r}".format(kind)
                    )
                self.connections[int(body["worker"])] = connection
        except BaseException:
            self.close()
            raise

    def send(self, worker: int, frame: bytes) -> None:
        self.connections[worker].send(frame)

    def recv(self, worker: int, expected: str):
        kind, body = decode_frame(self.connections[worker].recv())
        if kind == "error":
            raise RuntimeError(
                "shard worker {} failed:\n{}".format(
                    body.get("worker", worker), body.get("traceback")
                )
            )
        if kind != expected:
            raise RuntimeError(
                "expected {!r} frame from worker {}, got {!r}".format(
                    expected, worker, kind
                )
            )
        return body

    def close(self) -> None:
        for connection in self.connections.values():
            try:
                connection.close()
            except Exception:
                pass
        try:
            self.listener.close()
        except Exception:
            pass
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)


def run_sharded_scenario(
    scenario,
    observers=(),
    partition_set: Optional[PartitionSet] = None,
    telemetry=None,
):
    """Run a scenario on the sharded multi-process backend.

    Mirrors :func:`repro.harness.runner.run_with_factory` decision for
    decision; see the module docstring for the exact division of labor
    between coordinator and workers.  Returns the same ``RunResult``
    shape as the in-process path (``result.engine`` is a
    :class:`ShardEngine` facade).

    ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on worker-side
    event capture: every worker runs its own registry + capture buffer,
    ships sanitized batches back each round, and the coordinator re-emits
    them here in ``(round, worker, seq)`` order with a ``worker`` field
    added — for the same scenario the merged stream is the inproc stream
    modulo that label.  Worker metric registries are folded into
    ``telemetry.metrics`` *without* worker labels, so protocol counter
    totals match the inproc run exactly; coordinator-side ``net.*``
    metrics (phase spans, worker waits, transport totals) are added on
    top.  ``None`` keeps the wire protocol byte-identical to a
    pre-telemetry run — no extra frames at all.
    """
    # Imported here: harness.runner dispatches to this module, so a
    # top-level import would be circular.
    from repro.harness.runner import RunResult

    options = NetOptions(scenario.net)
    if options.workers > scenario.n:
        raise ValueError(
            "net.workers={} exceeds n={}".format(options.workers, scenario.n)
        )
    resolved_partitions = (
        partition_set
        if partition_set is not None
        else build_partition_set(scenario.n, scenario.params, scenario.seed)
    )
    plan = ShardPlan.build(
        scenario.n, options.workers, partition_set=resolved_partitions
    )

    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        num_partitions=resolved_partitions.count,
        num_groups=resolved_partitions.num_groups,
    )
    parts: List[Adversary] = []
    workload: Optional[Adversary] = None
    if scenario.workload_factory is not None:
        workload = scenario.workload_factory(
            derive_rng(scenario.seed, "workload", scenario.name)
        )
        if telemetry is not None:
            # Same hook as the inproc runner: workloads run coordinator-
            # side, so their admission accounting (repro.load) lands in
            # the coordinator's registry, not a worker snapshot.
            bind = getattr(workload, "bind_telemetry", None)
            if bind is not None:
                bind(telemetry)
        parts.append(workload)
    if scenario.fault_factory is not None:
        parts.append(
            scenario.fault_factory(
                derive_rng(scenario.seed, "faults", scenario.name),
                resolved_partitions,
                scenario.n,
            )
        )
    adversary: Adversary = ComposedAdversary(parts)
    _reject_mid_round_adversaries(adversary)

    all_observers = [delivery, confidentiality, *observers]
    if scenario.failfast == "confidentiality":
        all_observers.append(FailFastMonitor(confidentiality))
    elif scenario.failfast == "qod":
        all_observers.append(FailFastMonitor(confidentiality, delivery=delivery))
    # The engine's per-hook dispatch tables, verbatim (inherited no-op
    # SimObserver methods are never called).
    from repro.sim.engine import Engine, SimObserver

    dispatch: Dict[str, Tuple] = {}
    for hook in Engine._HOOKS:
        base = getattr(SimObserver, hook)
        dispatch[hook] = tuple(
            observer
            for observer in all_observers
            if getattr(type(observer), hook, base) is not base
            or hook in getattr(observer, "__dict__", ())
        )

    engine = ShardEngine(scenario.n, plan, options.transport)
    view = ShardAdversaryView(engine)
    spec = scenario.fault_spec()
    tspec = scenario.targeted_spec()
    fault_plane: Optional[ChaosFaultPlane] = None
    if tspec is not None:
        # Counts-only mirror of the workers' targeted planes.  Tracking
        # state is maintained here via the same injection announcements
        # the round frames broadcast; counts and the budget ledger are
        # merged from the final frames below.
        fault_plane = TargetedFaultPlane(
            scenario.seed,
            spec if spec is not None else FaultSpec(),
            tspec,
            scenario.n,
            keep_events=False,
            message_keyed=True,
        )
    elif spec is not None:
        # Counts-only mirror of the workers' planes: the schedule object
        # is identical (same seed/spec), the counts are merged from the
        # final frames below.
        fault_plane = ChaosFaultPlane(
            scenario.seed, spec, scenario.n, keep_events=False,
            message_keyed=True,
        )

    pool = _WorkerPool(
        scenario, plan, options, telemetry_enabled=telemetry is not None
    )
    try:
        worker_ids = sorted(pool.connections)
        for _ in range(scenario.rounds):
            _run_round(
                engine, view, adversary, dispatch, delivery, pool,
                worker_ids, plan, telemetry, fault_plane,
            )
        for worker in worker_ids:
            pool.send(worker, encode_frame("stop", None))
        for worker in worker_ids:
            if telemetry is not None:
                # Exact global totals: merged without a worker label, so
                # every protocol counter equals the inproc run's value.
                snapshot = pool.recv(worker, "metrics")
                telemetry.metrics.merge_snapshot(snapshot["metrics"])
            final = pool.recv(worker, "final")
            if (
                isinstance(fault_plane, TargetedFaultPlane)
                and final.get("targeted") is not None
            ):
                fault_plane.merge_targeted(final["targeted"])
            if fault_plane is not None and final["counts"] is not None:
                for kind, count in final["counts"].items():
                    fault_plane.counts[kind] = (
                        fault_plane.counts.get(kind, 0) + count
                    )
                for stage, kinds in (final["stage_counts"] or {}).items():
                    merged = fault_plane.stage_counts.setdefault(stage, {})
                    for kind, count in kinds.items():
                        merged[kind] = merged.get(kind, 0) + count
            _fold_worker_net(engine.metrics, worker, final.get("net"))
        _fold_transport_totals(engine, pool, worker_ids)
    finally:
        pool.close()

    if telemetry is not None:
        # Surface the coordinator's net-only registry (phase spans,
        # worker waits, pair counters, transport totals) to the tracer.
        telemetry.metrics.merge_snapshot(engine.metrics.snapshot())

    qod = delivery.report(engine)
    return RunResult(
        scenario=scenario,
        engine=engine,
        stats=engine.stats,
        qod=qod,
        confidentiality=confidentiality,
        delivery=delivery,
        workload=workload,
        partition_set=resolved_partitions,
        fault_plane=fault_plane,
    )


def _fold_worker_net(
    metrics: MetricsRegistry, worker: int, net: Optional[Dict[str, object]]
) -> None:
    """Fold a worker's final-frame wait/queue samples into ``net.*``."""
    if not net:
        return
    barrier = metrics.histogram("net.worker.barrier_wait_seconds", worker=worker)
    for sample in net.get("barrier_wait_s", ()):
        barrier.observe(sample)
    ship = metrics.histogram("net.worker.ship_wait_seconds", worker=worker)
    for sample in net.get("ship_wait_s", ()):
        ship.observe(sample)
    depth = metrics.histogram("net.worker.queue_depth", worker=worker)
    for sample in net.get("queue_depths", ()):
        depth.observe(sample)
    metrics.gauge("net.worker.queue_peak", worker=worker).set(
        net.get("queue_peak", 0)
    )


def _fold_transport_totals(
    engine: ShardEngine, pool: _WorkerPool, worker_ids: List[int]
) -> None:
    """Per-worker frame/byte totals from the coordinator's connections.

    Direction is coordinator-relative: ``dir=send`` is control traffic
    to the worker (round/deliver/stop frames and relayed batches),
    ``dir=recv`` is the worker's replies.
    """
    for worker in worker_ids:
        totals = pool.connections[worker].wire_totals()
        for direction, frames_key, bytes_key in (
            ("send", "sent_frames", "sent_bytes"),
            ("recv", "recv_frames", "recv_bytes"),
        ):
            engine.metrics.counter(
                "net.transport.frames", dir=direction, worker=worker
            ).inc(totals[frames_key])
            engine.metrics.counter(
                "net.transport.bytes", dir=direction, worker=worker
            ).inc(totals[bytes_key])
    for (src, dst), frames in sorted(engine.pair_frames.items()):
        pair = "{}->{}".format(src, dst)
        engine.metrics.counter("net.cross.frames", pair=pair).inc(frames)
        engine.metrics.counter("net.cross.bytes", pair=pair).inc(
            engine.pair_bytes[(src, dst)]
        )


def _run_round(
    engine: ShardEngine,
    view: ShardAdversaryView,
    adversary: Adversary,
    dispatch: Dict[str, Tuple],
    delivery: DeliveryAuditor,
    pool: _WorkerPool,
    worker_ids: List[int],
    plan: ShardPlan,
    telemetry=None,
    fault_plane: Optional[ChaosFaultPlane] = None,
) -> None:
    round_no = engine.clock.round
    targeted = isinstance(fault_plane, TargetedFaultPlane)
    phase_started = time.perf_counter()

    def mark_phase(phase: str) -> None:
        # Wall-clock since the previous mark; lands in the always-on
        # net registry (never the simulation payload), so the spans are
        # free of digest concerns.
        nonlocal phase_started
        now = time.perf_counter()
        engine.metrics.histogram(
            "net.round.phase_seconds", phase=phase
        ).observe(now - phase_started)
        phase_started = now

    for observer in dispatch["on_round_begin"]:
        observer.on_round_begin(round_no)

    decision = adversary.round_start(view)
    if decision.crashes & decision.restarts:
        raise ValueError(
            "a process may crash or restart at most once per round"
        )
    alive = engine._alive
    crashes = sorted(decision.crashes)
    restarts = sorted(decision.restarts)
    for pid in crashes:
        if pid not in alive:
            raise RuntimeError("process {} is already crashed".format(pid))
        alive.discard(pid)
        engine.event_log.record_crash(CrashEvent(pid, round_no, False))
        for observer in dispatch["on_crash"]:
            observer.on_crash(round_no, pid, False)
    for pid in restarts:
        if pid in alive:
            raise RuntimeError("process {} is already alive".format(pid))
        alive.add(pid)
        engine.event_log.record_restart(RestartEvent(pid, round_no))
        for observer in dispatch["on_restart"]:
            observer.on_restart(round_no, pid)
    engine._touched_this_round = set(crashes) | set(restarts)

    injections_of: Dict[int, List[Tuple[int, object]]] = {}
    injected: Set[int] = set()
    rumor_meta: List[List[int]] = []
    for pid, rumor in decision.injections:
        if pid in injected:
            raise ValueError(
                "at most one rumor per process per round (pid {})".format(pid)
            )
        if pid not in alive:
            raise ValueError(
                "cannot inject at crashed process {}".format(pid)
            )
        injected.add(pid)
        engine.event_log.record_injection(InjectEvent(pid, round_no, rumor))
        for observer in dispatch["on_inject"]:
            observer.on_inject(round_no, pid, rumor)
        injections_of.setdefault(plan.owner[pid], []).append((pid, rumor))
        if targeted:
            # Leak-safe announcement (rid coordinates + deadline, never
            # the payload or destination set), broadcast to EVERY worker
            # so all targeted policies track identically; the mirror
            # plane tracks the same way coordinator-side.
            rid = rumor.rid
            rumor_meta.append([rid.src, rid.seq, rumor.deadline])
            fault_plane.observe_injection(
                round_no, rid.src, rid.seq, rumor.deadline
            )

    for worker in worker_ids:
        body: Dict[str, object] = {
            "round": round_no,
            "crashes": crashes,
            "restarts": restarts,
            "injections": injections_of.get(worker, []),
        }
        if targeted:
            # Key only present on targeted runs: the wire stays
            # byte-identical for every pre-existing scenario.
            body["rumor_meta"] = rumor_meta
        pool.send(worker, encode_frame("round", body))
    mark_phase("route")
    total = 0
    size = 0
    by_service: Dict[str, int] = {}
    batches_for: Dict[int, List[bytes]] = {worker: [] for worker in worker_ids}
    for worker in worker_ids:
        sent = pool.recv(worker, "sent")
        total += sent["count"]
        size += sent["size"]
        for service, tally in sent["by_service"].items():
            by_service[service] = by_service.get(service, 0) + tally
        engine.local_messages += sent["local_count"]
        engine.cross_messages += sent["count"] - sent["local_count"]
        # Opaque relay: the coordinator never decodes cross traffic.
        for destination, blob in sorted(sent["cross"].items()):
            batches_for[destination].append(blob)
            engine.record_cross_batch(worker, destination, len(blob))
    engine.stats.record_round(round_no, total, size, by_service)

    for worker in worker_ids:
        pool.send(
            worker,
            encode_frame(
                "deliver",
                {
                    "round": round_no,
                    "mid_crashes": [],
                    "batches": batches_for[worker],
                },
            ),
        )
    mark_phase("ship")
    merged: List[Tuple[Tuple[int, ...], object]] = []
    delivery_batches: List[Tuple[int, List]] = []
    telemetry_entries: List[Tuple[int, int, int, str, Dict[str, object]]] = []
    for worker in worker_ids:
        events = pool.recv(worker, "events")
        merged.extend(decode_tagged_messages(events["delivered"]))
        delivery_batches.append((worker, events["deliveries"]))
        if telemetry is not None:
            batch = pool.recv(worker, "telemetry")
            for seq, kind, event_round, fields in batch["events"]:
                telemetry_entries.append(
                    (event_round, worker, seq, kind, fields)
                )
    mark_phase("barrier")
    # Restore the exact in-process delivered order: fresh messages by
    # (src, seq) — the engine's outgoing order — then matured chaos
    # copies by (admit_round, src, seq) — the plane's queue order.
    merged.sort(key=lambda entry: entry[0])
    deliver_observers = dispatch["on_deliver"]
    if deliver_observers:
        for _, message in merged:
            for observer in deliver_observers:
                observer.on_deliver(round_no, message)

    for _, records in delivery_batches:
        for pid, when, src, seq, digest, path in records:
            rid = RumorId(src, seq)
            rumor = delivery.rumors.get(rid)
            if (
                rumor is not None
                and hashlib.sha256(rumor.data).hexdigest() == digest
            ):
                data = rumor.data
            else:
                # Never equal to any injected plaintext: records the
                # delivery (and its path) while failing correct_data.
                data = b"\x00unverified:" + digest.encode("ascii")
            delivery.record_delivery(pid, when, rid, data, path)

    if telemetry is not None:
        # The deterministic cross-shard merge: (round, worker, seq) is a
        # total order — seq is monotonic within a worker's stream and
        # the worker label breaks ties across streams.  Re-emitting here
        # fans out to the tracer's sinks and subscribers exactly as the
        # inproc backend would, with one extra ``worker`` field.
        telemetry_entries.sort(key=lambda entry: entry[:3])
        for event_round, worker, _seq, kind, fields in telemetry_entries:
            telemetry.emit(kind, event_round, **{**fields, "worker": worker})

    for observer in dispatch["on_round_end"]:
        observer.on_round_end(round_no, engine)
    engine.rounds_executed += 1
    engine.clock.advance()
    mark_phase("merge")
