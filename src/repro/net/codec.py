"""Versioned, deterministic wire codec for messages and control frames.

Design constraints, in order:

* **Leak-safe by construction.**  Only values on a closed allow-list
  encode: scalars, containers, and the registered payload dataclasses
  below.  An unregistered object raises :class:`CodecError` instead of
  being pickled, so a payload type the auditors have never seen cannot
  silently cross the wire.  Serialization walks the same declared fields
  ``reveals()`` is defined over — a frame never carries more information
  than its payload already reveals in-process (fragment shares stay
  uniformly-random bytes; control frames stay control-only).
* **Deterministic.**  The same value always encodes to the same bytes:
  integers are zigzag varints, floats are big-endian IEEE-754, dict keys
  are sorted, and frozensets/sets are written in canonical order (sorted
  by their own encoded bytes).  Canonical set order is safe because the
  protocol never depends on set iteration order — every emission and
  rng-feeding loop in :mod:`repro.core` sorts before iterating.
* **Round-trippable.**  ``decode(encode(x)) == x`` for every encodable
  value, using the payload types' own ``__eq__``; the codec tests pin
  this with hypothesis over every registered payload shape.

Batch encoding (:func:`encode_tagged_messages`) interns payloads by
identity: a gossip fanout of one payload tuple to thirty recipients
writes the payload once, and *decoding shares a single payload object*
across the reconstructed messages.  That preserves both wire size and
the ``id(payload)``-keyed per-round batch cache in
:class:`repro.audit.confidentiality.ConfidentialityAuditor`.

Frames (:func:`encode_frame`) carry a magic + version header so a peer
speaking a different wire version fails loudly instead of misparsing.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.confidential_gossip import DirectAck, DirectRumor
from repro.core.group_distribution import (
    DistributionShare,
    FragmentDelivery,
    GDShare,
)
from repro.core.proxy import ProxyAck, ProxyRequest, ProxyShare
from repro.core.splitting import Fragment
from repro.gossip.rumor import GossipItem, Rumor, RumorId
from repro.sim.messages import Message

__all__ = [
    "CodecError",
    "MAGIC",
    "WIRE_VERSION",
    "WIRE_TYPES",
    "decode_frame",
    "decode_message",
    "decode_tagged_messages",
    "decode_value",
    "encode_frame",
    "encode_message",
    "encode_tagged_messages",
    "encode_value",
]

MAGIC = b"\xc6\x05"  # "confidential gossip", version header follows
WIRE_VERSION = 1

#: Frame kinds used by the coordinator/worker lockstep protocol.
#: ``telemetry`` (per-round sanitized event batches) and ``metrics``
#: (end-of-run registry snapshots) only flow when the coordinator runs
#: with telemetry enabled; default runs never emit them.
FRAME_KINDS = (
    "hello", "round", "sent", "deliver", "events", "stop", "final", "error",
    "telemetry", "metrics",
)


class CodecError(ValueError):
    """An object the wire format refuses to carry (or malformed bytes)."""


# ----------------------------------------------------------------------
# Registered payload types
# ----------------------------------------------------------------------
#
# The closed allow-list of Message payload dataclasses, with their field
# order.  Order matters twice: the tuple index IS the wire tag (so the
# registry may only be appended to, never reordered, within a wire
# version), and fields are written in the declared constructor order so
# decode can rebuild via keyword arguments.

WIRE_TYPES: Tuple[Tuple[type, Tuple[str, ...]], ...] = (
    (RumorId, ("src", "seq")),
    (Rumor, ("rid", "data", "deadline", "dest", "injected_at")),
    (GossipItem, ("uid", "origin", "payload", "expiry", "dest", "born")),
    (
        Fragment,
        (
            "rid", "src", "partition", "group", "total_groups",
            "data", "dest", "dline", "expiry",
        ),
    ),
    (ProxyRequest, ("sender", "fragments")),
    (ProxyAck, ("sender",)),
    (ProxyShare, ("sender", "fragments", "failed_proxies", "collaborator")),
    (FragmentDelivery, ("sender", "fragments")),
    (GDShare, ("sender", "hits")),
    (DistributionShare, ("sender", "dline", "partition", "group", "hits")),
    (DirectRumor, ("rumor", "path")),
    (DirectAck, ("rid", "acker")),
)

_OBJ_BASE = 0x40
_TYPE_TAGS: Dict[type, Tuple[int, Tuple[str, ...]]] = {
    cls: (_OBJ_BASE + index, fields)
    for index, (cls, fields) in enumerate(WIRE_TYPES)
}

# Scalar / container tags (< _OBJ_BASE).
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_FROZENSET = 0x09
_T_SET = 0x0A
_T_DICT = 0x0B

_pack_float = struct.Struct(">d").pack
_unpack_float = struct.Struct(">d").unpack_from


# ----------------------------------------------------------------------
# Varints
# ----------------------------------------------------------------------


def _write_uvarint(value: int, out: bytearray) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        # No shift cap: the encoder writes arbitrary-precision ints, so
        # the decoder must accept them.  Termination is bounded by the
        # truncation check above (one byte consumed per iteration).


# Python ints are unbounded; use the sign-fold form directly (no 64-bit
# assumption) so arbitrary-precision round numbers survive.
def _write_svarint(value: int, out: bytearray) -> None:
    folded = (value << 1) if value >= 0 else ((-value << 1) - 1)
    _write_uvarint(folded, out)


def _read_svarint(data: bytes, pos: int) -> Tuple[int, int]:
    folded, pos = _read_uvarint(data, pos)
    return ((folded + 1) >> 1) * (-1 if folded & 1 else 1), pos


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    kind = type(value)
    if kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif kind is int:
        out.append(_T_INT)
        _write_svarint(value, out)
    elif kind is float:
        out.append(_T_FLOAT)
        out += _pack_float(value)
    elif kind is bytes:
        out.append(_T_BYTES)
        _write_uvarint(len(value), out)
        out += value
    elif kind is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(len(raw), out)
        out += raw
    elif kind is tuple or kind is list:
        out.append(_T_TUPLE if kind is tuple else _T_LIST)
        _write_uvarint(len(value), out)
        for item in value:
            _encode(item, out)
    elif kind is frozenset or kind is set:
        # Canonical order: encode each element, sort the byte strings.
        # Deterministic across interpreters and PYTHONHASHSEED, unlike
        # the set's own iteration order.
        out.append(_T_FROZENSET if kind is frozenset else _T_SET)
        encoded: List[bytes] = []
        for item in value:
            buf = bytearray()
            _encode(item, buf)
            encoded.append(bytes(buf))
        encoded.sort()
        _write_uvarint(len(encoded), out)
        for blob in encoded:
            out += blob
    elif kind is dict:
        out.append(_T_DICT)
        try:
            keys = sorted(value)
        except TypeError:
            raise CodecError("wire dicts need sortable keys")
        _write_uvarint(len(keys), out)
        for key in keys:
            _encode(key, out)
            _encode(value[key], out)
    else:
        entry = _TYPE_TAGS.get(kind)
        if entry is None:
            raise CodecError(
                "refusing to serialize unregistered type {!r}; register it "
                "in repro.net.codec.WIRE_TYPES if it is a legitimate "
                "payload".format(kind.__name__)
            )
        tag, fields = entry
        out.append(tag)
        for name in fields:
            _encode(getattr(value, name), out)


def _decode(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise CodecError("truncated value")
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        return _read_svarint(data, pos)
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise CodecError("truncated float")
        return _unpack_float(data, pos)[0], pos + 8
    if tag == _T_BYTES or tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated bytes")
        raw = data[pos:end]
        return (raw if tag == _T_BYTES else raw.decode("utf-8")), end
    if tag == _T_TUPLE or tag == _T_LIST:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_FROZENSET or tag == _T_SET:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode(data, pos)
            items.append(item)
        return (frozenset(items) if tag == _T_FROZENSET else set(items)), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _decode(data, pos)
            mapping[key], pos = _decode(data, pos)
        return mapping, pos
    index = tag - _OBJ_BASE
    if 0 <= index < len(WIRE_TYPES):
        cls, fields = WIRE_TYPES[index]
        kwargs = {}
        for name in fields:
            kwargs[name], pos = _decode(data, pos)
        try:
            return cls(**kwargs), pos
        except (TypeError, ValueError) as exc:
            raise CodecError(
                "decoded {} failed validation: {}".format(cls.__name__, exc)
            )
    raise CodecError("unknown wire tag 0x{:02x}".format(tag))


def encode_value(value: Any) -> bytes:
    """Encode one value (payload, control structure) to canonical bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; raises on trailing garbage."""
    value, pos = _decode(data, 0)
    if pos != len(data):
        raise CodecError("trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Message batches
# ----------------------------------------------------------------------
#
# A batch is a list of (key, Message) pairs where ``key`` is a small
# tuple of ints used by the coordinator to restore global message order
# (see repro.net.worker).  Payloads are interned by identity: each
# distinct payload object is written once and referenced by index, so a
# fanout of one payload to many recipients costs one payload encoding
# and decodes to messages *sharing* one payload object.


def encode_tagged_messages(
    entries: Sequence[Tuple[Tuple[int, ...], Message]],
) -> bytes:
    out = bytearray()
    payload_index: Dict[int, int] = {}
    payloads: List[Any] = []
    for _, message in entries:
        payload = message.payload
        if payload is None:
            continue
        key = id(payload)
        if key not in payload_index:
            payload_index[key] = len(payloads)
            payloads.append(payload)
    _write_uvarint(len(payloads), out)
    for payload in payloads:
        _encode(payload, out)
    _write_uvarint(len(entries), out)
    for key, message in entries:
        _encode(tuple(key), out)
        _write_svarint(message.src, out)
        _write_svarint(message.dst, out)
        _encode(message.service, out)
        _write_svarint(message.size, out)
        _encode(message.channel, out)
        payload = message.payload
        _write_uvarint(
            0 if payload is None else payload_index[id(payload)] + 1, out
        )
    return bytes(out)


def decode_tagged_messages(
    data: bytes,
) -> List[Tuple[Tuple[int, ...], Message]]:
    count, pos = _read_uvarint(data, 0)
    payloads: List[Any] = []
    for _ in range(count):
        payload, pos = _decode(data, pos)
        payloads.append(payload)
    count, pos = _read_uvarint(data, pos)
    entries: List[Tuple[Tuple[int, ...], Message]] = []
    for _ in range(count):
        key, pos = _decode(data, pos)
        src, pos = _read_svarint(data, pos)
        dst, pos = _read_svarint(data, pos)
        service, pos = _decode(data, pos)
        size, pos = _read_svarint(data, pos)
        channel, pos = _decode(data, pos)
        ref, pos = _read_uvarint(data, pos)
        payload = None if ref == 0 else payloads[ref - 1]
        entries.append(
            (key, Message(src, dst, service, payload, size, channel))
        )
    if pos != len(data):
        raise CodecError("trailing bytes after message batch")
    return entries


def encode_message(message: Message) -> bytes:
    """Encode a single message (convenience wrapper over the batch form)."""
    return encode_tagged_messages([((), message)])


def decode_message(data: bytes) -> Message:
    entries = decode_tagged_messages(data)
    if len(entries) != 1:
        raise CodecError("expected exactly one message")
    return entries[0][1]


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------


def encode_frame(kind: str, body: Any) -> bytes:
    """A versioned control frame: magic, version, kind, body."""
    out = bytearray(MAGIC)
    out.append(WIRE_VERSION)
    _encode(kind, out)
    _encode(body, out)
    return bytes(out)


def decode_frame(data: bytes) -> Tuple[str, Any]:
    if data[: len(MAGIC)] != MAGIC:
        raise CodecError("bad frame magic")
    pos = len(MAGIC)
    if pos >= len(data):
        raise CodecError("truncated frame header")
    version = data[pos]
    if version != WIRE_VERSION:
        raise CodecError(
            "wire version mismatch: got {}, speak {}".format(
                version, WIRE_VERSION
            )
        )
    kind, pos = _decode(data, pos + 1)
    body, pos = _decode(data, pos)
    if pos != len(data):
        raise CodecError("trailing bytes after frame")
    if not isinstance(kind, str):
        raise CodecError("frame kind must be a string")
    return kind, body
