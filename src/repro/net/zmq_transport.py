"""Optional zmq transport (ROUTER/DEALER), behind the ``net`` extra.

Modeled on the FEUP-SDLE ``ProxyCommunicator`` pattern: the coordinator
binds one ROUTER socket and multiplexes every worker over it, keyed by
the DEALER's connection identity; workers each run a single DEALER.  A
poller with a hard deadline guards every receive so a dead peer fails
the round barrier loudly instead of hanging it.

pyzmq is imported lazily — constructing the transport without it raises
a ``RuntimeError`` naming the extra, and nothing in the default install
path touches this module.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from repro.net.transport import (
    DEFAULT_TIMEOUT,
    Connection,
    Listener,
    Transport,
    TransportClosed,
)

__all__ = ["ZmqTransport"]


def _import_zmq():
    try:
        import zmq
    except ImportError as exc:  # pragma: no cover - exercised when absent
        raise RuntimeError(
            "the zmq transport requires pyzmq, which is not installed; "
            "install the optional extra:  pip install 'repro[net]'"
        ) from exc
    return zmq


class _RouterPeer(Connection):
    """The coordinator's handle on one worker, over the shared ROUTER."""

    def __init__(self, listener: "ZmqListener", identity: bytes):
        self._listener = listener
        self._identity = identity

    def send(self, frame: bytes) -> None:
        self._listener._send_to(self._identity, frame)
        self._note_send(len(frame))

    def recv(self) -> bytes:
        frame = self._listener._recv_from(self._identity)
        self._note_recv(len(frame))
        return frame

    def close(self) -> None:
        pass  # peer lifetime == router lifetime


class ZmqListener(Listener):
    def __init__(self, timeout: float):
        zmq = _import_zmq()
        self._zmq = zmq
        self._timeout_ms = int(timeout * 1000)
        self._context = zmq.Context.instance()
        self._socket = self._context.socket(zmq.ROUTER)
        port = self._socket.bind_to_random_port("tcp://127.0.0.1")
        self._endpoint = "tcp://127.0.0.1:{}".format(port)
        self._poller = zmq.Poller()
        self._poller.register(self._socket, zmq.POLLIN)
        # Per-identity inbound frame queues: the ROUTER interleaves
        # traffic from all workers, so frames for peer A that arrive
        # while waiting on peer B are buffered, not lost.
        self._queues: Dict[bytes, Deque[bytes]] = {}

    @property
    def address(self) -> Tuple[str, str]:
        return ("zmq", self._endpoint)

    def _pump(self) -> bytes:
        """Block for one inbound frame; returns the sender identity."""
        events = dict(self._poller.poll(self._timeout_ms))
        if self._socket not in events:
            raise TransportClosed(
                "no zmq traffic within {}ms".format(self._timeout_ms)
            )
        identity, frame = self._socket.recv_multipart()
        self._queues.setdefault(identity, deque()).append(frame)
        return identity

    def accept(self) -> _RouterPeer:
        known = set(self._queues)
        while True:
            identity = self._pump()
            if identity not in known:
                return _RouterPeer(self, identity)

    def _send_to(self, identity: bytes, frame: bytes) -> None:
        self._socket.send_multipart([identity, frame])

    def _recv_from(self, identity: bytes) -> bytes:
        queue = self._queues.setdefault(identity, deque())
        while not queue:
            self._pump()
        return queue.popleft()

    def close(self) -> None:
        self._socket.close(linger=0)


class _DealerConnection(Connection):
    def __init__(self, endpoint: str, timeout: float):
        zmq = _import_zmq()
        self._zmq = zmq
        self._timeout_ms = int(timeout * 1000)
        self._context = zmq.Context.instance()
        self._socket = self._context.socket(zmq.DEALER)
        self._socket.connect(endpoint)
        self._poller = zmq.Poller()
        self._poller.register(self._socket, zmq.POLLIN)

    def send(self, frame: bytes) -> None:
        self._socket.send(frame)
        self._note_send(len(frame))

    def recv(self) -> bytes:
        events = dict(self._poller.poll(self._timeout_ms))
        if self._socket not in events:
            raise TransportClosed(
                "coordinator silent for {}ms".format(self._timeout_ms)
            )
        frame = self._socket.recv()
        self._note_recv(len(frame))
        return frame

    def close(self) -> None:
        self._socket.close(linger=0)


class ZmqTransport(Transport):
    name = "zmq"

    def __init__(self, timeout: float = DEFAULT_TIMEOUT):
        _import_zmq()  # fail at construction, with the extra's name
        self.timeout = timeout

    def listen(self) -> ZmqListener:
        return ZmqListener(timeout=self.timeout)

    def connect(self, address: Tuple[object, ...]) -> _DealerConnection:
        scheme, endpoint = address
        if scheme != "zmq":
            raise ValueError("zmq transport got address {!r}".format(address))
        return _DealerConnection(str(endpoint), timeout=self.timeout)
