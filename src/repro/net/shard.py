"""Group-aligned pid-to-worker shard plans.

CONGOS fragments never leave their group except through the Proxy and
GroupDistribution services, so the natural shard boundary is the group:
placing whole partition-0 groups on one worker keeps the bulk of the
GroupGossip fanout local and sends only Proxy / GD / direct-send /
fallback traffic across shards.

:class:`ShardPlan` is a pure value object (pid -> worker index) that
both the coordinator and every worker compute routing against; it rides
the spawn config as a plain tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.partitions import PartitionSet

__all__ = ["ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every pid to exactly one worker."""

    n: int
    workers: int
    owner: Tuple[int, ...]  # owner[pid] == worker index

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if len(self.owner) != self.n:
            raise ValueError("owner table must cover every pid")
        seen = set(self.owner)
        if not seen <= set(range(self.workers)):
            raise ValueError("owner table references unknown workers")
        if len(seen) != self.workers:
            raise ValueError("every worker must own at least one pid")

    @classmethod
    def build(
        cls,
        n: int,
        workers: int,
        partition_set: Optional[PartitionSet] = None,
    ) -> "ShardPlan":
        """Chunk pids onto ``workers`` near-equal contiguous shards.

        With a partition set, pids are laid out group-major over
        partition 0 first, so chunk boundaries fall between groups
        wherever group sizes allow — whole groups land on one worker and
        their GroupGossip traffic never crosses the wire.
        """
        if workers < 1:
            raise ValueError("need at least one worker")
        if workers > n:
            raise ValueError(
                "{} workers for {} pids: at least one worker would be "
                "empty".format(workers, n)
            )
        if partition_set is None:
            order = list(range(n))
        else:
            order = [
                pid
                for group in range(partition_set.num_groups)
                for pid in sorted(partition_set.members(0, group))
            ]
            if len(order) != n:
                raise ValueError("partition 0 does not cover every pid")
        owner = [0] * n
        base, extra = divmod(n, workers)
        start = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            for pid in order[start : start + size]:
                owner[pid] = worker
            start += size
        return cls(n=n, workers=workers, owner=tuple(owner))

    def pids_of(self, worker: int) -> List[int]:
        """The pids a worker owns, ascending."""
        return [pid for pid in range(self.n) if self.owner[pid] == worker]

    def assignments(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {w: [] for w in range(self.workers)}
        for pid in range(self.n):
            out[self.owner[pid]].append(pid)
        return out

    def locality(self, partition_set: PartitionSet) -> float:
        """Fraction of partition-0 groups living entirely on one worker
        (a rough proxy for how much gossip traffic stays off the wire)."""
        local = 0
        for group in range(partition_set.num_groups):
            owners = {self.owner[pid] for pid in partition_set.members(0, group)}
            if len(owners) == 1:
                local += 1
        return local / partition_set.num_groups
