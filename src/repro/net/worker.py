"""The shard worker process.

A worker hosts the :class:`~repro.sim.process.ProcessShell`\\ s of the
pids it owns and replays, for that subset, exactly what
:class:`~repro.sim.engine.Engine` would do — same phase order, same
pid-ascending iteration, same crash-loss and chaos semantics — driven by
lockstep frames from the coordinator:

``round``   crashes/restarts/injections for this round; the worker runs
            its send phase and answers ``sent`` with aggregate counts
            plus the cross-shard batches, encoded, per destination
            worker.  Payload bytes in cross batches are opaque to the
            coordinator — it relays them verbatim.
``deliver`` the cross batches addressed to this worker; the worker
            merges them with its local traffic **in global send order**
            (every message is tagged ``(src, seq)`` where ``seq`` is the
            sender's emission index), routes with the message-keyed
            chaos plane, runs its receive phase, and answers ``events``
            with the delivered stream (order keys included) and delivery
            records.  Delivery records carry a sha256 of the rumor
            bytes, never the bytes themselves.
``stop``    answers ``final`` (chaos counts plus always-on wait/queue
            instrumentation) and exits.

With telemetry enabled in the spawn config, the worker also runs its own
:class:`~repro.obs.Telemetry` — a private :class:`MetricsRegistry` plus
a :class:`~repro.obs.SequenceSink` capture buffer — and ships two extra
frame kinds: a ``telemetry`` frame after every ``events`` reply (the
round's sanitized event batch, each entry ``(seq, kind, round, fields)``
with ``seq`` the worker's monotonic emission index) and one ``metrics``
frame (the registry snapshot) before ``final``.  Sanitization happens
*worker-side* at emission time (:meth:`ObsEvent.make` runs
``json_safe``), so rumor payload bytes never enter a telemetry frame —
the codec tests pin this with a marker grep.  Telemetry emission reads
no rng stream, so traced runs stay bit-identical to default runs.

Determinism argument: a node's behaviour is a function of its pid, the
shared seed hierarchy, and its per-round inputs (injections, inbox).
Workers reproduce the engine's inbox content and order exactly — fresh
messages sort by ``(src, seq)`` (the engine's outgoing order) and
matured chaos copies append in plane-queue order, which the keyed plane
makes shard-invariant — so every node computes bit-identical state to
the in-process run, by induction over rounds.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from typing import Dict, List, Optional, Set, Tuple

from repro.chaos.plane import ChaosFaultPlane
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import TargetedFaultPlane, TargetedSpec
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.net.codec import (
    decode_frame,
    decode_tagged_messages,
    encode_frame,
    encode_tagged_messages,
)
from repro.net.transport import get_transport
from repro.obs.instrument import Telemetry
from repro.obs.sink import SequenceSink
from repro.sim.messages import Message
from repro.sim.process import ProcessShell

__all__ = ["ShardWorker", "worker_main"]

#: Order-key tags: fresh messages deliver in (src, seq) order before any
#: matured chaos copy, which delivers in (admit_round, src, seq) order —
#: together they reproduce the engine's delivered-stream order exactly.
FRESH = 0
MATURED = 1


class ShardWorker:
    """One worker's full state; see the module docstring for protocol."""

    def __init__(self, config: Dict[str, object]):
        self.wid: int = int(config["worker"])  # type: ignore[arg-type]
        self.n: int = int(config["n"])  # type: ignore[arg-type]
        self.seed: int = int(config["seed"])  # type: ignore[arg-type]
        self.owner: Tuple[int, ...] = tuple(config["owner"])  # type: ignore[arg-type]
        params = CongosParams(**config["params"])  # type: ignore[arg-type]
        self.my_pids: List[int] = [
            pid for pid in range(self.n) if self.owner[pid] == self.wid
        ]
        partition_set = build_partition_set(self.n, params, self.seed)
        self._deliveries: List[Tuple[int, int, int, int, str, str]] = []

        # Worker-local telemetry: events buffer in a SequenceSink until
        # the coordinator drains them (one telemetry frame per round),
        # metrics accumulate in a private registry shipped at stop.
        self.capture: Optional[SequenceSink] = None
        self.telemetry: Optional[Telemetry] = None
        if config.get("telemetry"):
            self.capture = SequenceSink()
            self.telemetry = Telemetry(sinks=[self.capture])

        # Always-on SLO instrumentation (floats/ints only; never touches
        # simulation state, so default runs stay bit-identical).
        self.barrier_wait_s: List[float] = []
        self.ship_wait_s: List[float] = []
        self.queue_depths: List[int] = []
        self.queue_peak = 0

        def _deliver(pid: int, round_no: int, rid, data: bytes, path: str) -> None:
            self._deliveries.append(
                (
                    pid,
                    round_no,
                    rid.src,
                    rid.seq,
                    hashlib.sha256(data).hexdigest(),
                    path,
                )
            )

        factory = congos_factory(
            self.n,
            params=params,
            seed=self.seed,
            deliver_callback=_deliver,
            partition_set=partition_set,
            telemetry=self.telemetry,
        )
        self.shells: Dict[int, ProcessShell] = {}
        for pid in self.my_pids:
            shell = ProcessShell(pid, factory)
            shell.start(0)
            self.shells[pid] = shell
        self.alive: Set[int] = set(range(self.n))
        chaos = config.get("chaos")
        targeted = config.get("targeted")
        self.plane: Optional[ChaosFaultPlane] = None
        if targeted is not None:
            # Targeted layer over a possibly-null oblivious spec.  All
            # policy state is fed by the coordinator's rumor_meta
            # broadcast, and budgets are per-destination, so every
            # worker reaches exactly the inproc (chaos_keyed) verdicts
            # for the destinations it owns.
            spec = (
                FaultSpec.from_dict(chaos)  # type: ignore[arg-type]
                if chaos is not None
                else FaultSpec()
            )
            self.plane = TargetedFaultPlane(
                self.seed,
                spec,
                TargetedSpec.from_dict(targeted),  # type: ignore[arg-type]
                self.n,
                telemetry=self.telemetry,
                keep_events=False,
                message_keyed=True,
            )
        elif chaos is not None:
            spec = FaultSpec.from_dict(chaos)  # type: ignore[arg-type]
            if not spec.is_null():
                # Message-keyed mode: fates drawn per (round, src, dst,
                # copy) and shuffles per recipient, so every worker makes
                # the same decisions regardless of the shard layout.
                self.plane = ChaosFaultPlane(
                    self.seed,
                    spec,
                    self.n,
                    telemetry=self.telemetry,
                    keep_events=False,
                    message_keyed=True,
                )
        # Round-local state between the round and deliver frames.
        self._local: List[Tuple[Tuple[int, ...], Message]] = []
        # id(queued message) -> (src, seq), for tagging matured copies.
        self._queued_keys: Dict[int, Tuple[int, int]] = {}

    # -- frame handlers --------------------------------------------------

    def handle_round(self, body: Dict[str, object]) -> Dict[str, object]:
        round_no: int = body["round"]  # type: ignore[assignment]
        for pid in body["crashes"]:  # type: ignore[union-attr]
            if pid in self.shells:
                self.shells[pid].crash()
            self.alive.discard(pid)
        for pid in body["restarts"]:  # type: ignore[union-attr]
            if pid in self.shells:
                self.shells[pid].restart(round_no)
            self.alive.add(pid)
        for pid, rumor in body["injections"]:  # type: ignore[union-attr]
            self.shells[pid].inject(round_no, rumor)
        # Targeted runs only: the round's injection announcements (rid
        # coordinates + deadline, never payload bytes or destination
        # sets), broadcast to every worker so all policies track alike.
        if self.plane is not None:
            for src, seq, deadline in body.get("rumor_meta") or ():
                self.plane.observe_injection(round_no, src, seq, deadline)

        count = 0
        size = 0
        by_service: Dict[str, int] = {}
        local: List[Tuple[Tuple[int, ...], Message]] = []
        cross: Dict[int, List[Tuple[Tuple[int, ...], Message]]] = {}
        n = self.n
        owner = self.owner
        wid = self.wid
        for pid in self.my_pids:
            messages = self.shells[pid].send_phase(round_no)
            for seq, message in enumerate(messages):
                src = message.src
                dst = message.dst
                if src < 0 or src >= n or dst < 0 or dst >= n:
                    raise ValueError(
                        "invalid endpoints {}->{}".format(src, dst)
                    )
                count += 1
                size += message.size
                service = message.service
                by_service[service] = by_service.get(service, 0) + 1
                entry = ((src, seq), message)
                if owner[dst] == wid:
                    local.append(entry)
                else:
                    cross.setdefault(owner[dst], []).append(entry)
        self._local = local
        return {
            "round": round_no,
            "count": count,
            "size": size,
            "local_count": len(local),
            "by_service": by_service,
            "cross": {
                worker: encode_tagged_messages(batch)
                for worker, batch in cross.items()
            },
        }

    def handle_deliver(self, body: Dict[str, object]) -> Dict[str, object]:
        round_no: int = body["round"]  # type: ignore[assignment]
        for pid in body["mid_crashes"]:  # type: ignore[union-attr]
            if pid in self.shells:
                self.shells[pid].crash()
            self.alive.discard(pid)

        entries = list(self._local)
        self._local = []
        # Keep the decoded batches alive until the frame is built: the
        # auditor-side id(payload) cache pins by identity, and matured
        # chaos copies are keyed by id() below.
        for blob in body["batches"]:  # type: ignore[union-attr]
            entries.extend(decode_tagged_messages(blob))
        entries.sort(key=lambda entry: entry[0])

        pending = self.plane.pending_count() if self.plane is not None else 0
        depth = len(entries) + pending
        self.queue_depths.append(depth)
        if depth > self.queue_peak:
            self.queue_peak = depth

        plane = self.plane
        chaos = plane is not None and plane.active_in(round_no)
        if chaos:
            plane.begin_round(round_no)
        alive = self.alive
        inboxes: Dict[int, List[Message]] = {}
        delivered: List[Tuple[Tuple[int, ...], Message]] = []
        lost_to_crash = 0
        lost_to_fault = 0
        for key, message in entries:
            dst = message.dst
            if dst not in alive:
                lost_to_crash += 1
                continue
            if chaos:
                fate = plane.admit(round_no, message)
                if fate == "drop" or fate == "sever":
                    lost_to_fault += 1
                    continue
                if fate == "delay":
                    self._queued_keys[id(message)] = key
                    continue
                if fate == "duplicate":
                    self._queued_keys[id(message)] = key
            inboxes.setdefault(dst, []).append(message)
            delivered.append(((FRESH,) + key, message))
        if plane is not None and plane.has_pending():
            for admit_round, message in plane.release_tagged(round_no):
                src, seq = self._queued_keys.pop(id(message))
                if message.dst not in alive:
                    lost_to_crash += 1
                    plane.record_late_loss(round_no, message)
                    continue
                inboxes.setdefault(message.dst, []).append(message)
                delivered.append(((MATURED, admit_round, src, seq), message))
        if chaos:
            plane.shuffle_inboxes(round_no, inboxes)

        empty: List[Message] = []
        for pid in self.my_pids:
            shell = self.shells[pid]
            if shell.alive:
                shell.receive_phase(round_no, inboxes.get(pid, empty))
        # Everything recorded since the last flush — including "local"
        # deliveries triggered by this round's injections in handle_round.
        deliveries = self._deliveries
        self._deliveries = []
        return {
            "round": round_no,
            "delivered": encode_tagged_messages(delivered),
            "deliveries": deliveries,
            "lost_to_crash": lost_to_crash,
            "lost_to_fault": lost_to_fault,
        }

    def handle_stop(self) -> Dict[str, object]:
        plane = self.plane
        return {
            "worker": self.wid,
            "counts": dict(plane.counts) if plane is not None else None,
            "stage_counts": (
                {stage: dict(kinds) for stage, kinds in plane.stage_counts.items()}
                if plane is not None
                else None
            ),
            # Targeted runs: this worker's policy counts + budget ledger
            # (per-destination accounting over the pids it owns); the
            # coordinator merges them into its mirror plane.
            "targeted": (
                plane.targeted_summary()
                if isinstance(plane, TargetedFaultPlane)
                else None
            ),
            # Always-on SLO instrumentation.  Floats/ints only; the
            # coordinator folds these into its net-metrics registry,
            # never into the simulation payload, so nondeterministic
            # timings cannot perturb a RunRecord digest.
            "net": {
                "barrier_wait_s": list(self.barrier_wait_s),
                "ship_wait_s": list(self.ship_wait_s),
                "queue_depths": list(self.queue_depths),
                "queue_peak": self.queue_peak,
            },
        }

    # -- telemetry frames ------------------------------------------------

    def drain_telemetry(self, round_no: int) -> Dict[str, object]:
        """The round's ``telemetry`` frame body: sanitized event batch.

        Entries are ``(seq, kind, round, fields)`` with ``seq`` the
        worker's monotonic emission index — the coordinator merges all
        workers' batches on ``(round, worker, seq)``.  Fields were made
        JSON-safe at emission time, so no rumor bytes can appear here.
        """
        assert self.capture is not None
        events = [
            (seq, event.kind, event.round_no, event.fields)
            for seq, event in self.capture.drain()
        ]
        return {"worker": self.wid, "round": round_no, "events": events}

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``metrics`` frame body: this worker's registry snapshot."""
        assert self.telemetry is not None
        return {
            "worker": self.wid,
            "metrics": self.telemetry.metrics.snapshot(),
        }


def worker_main(config: Dict[str, object]) -> None:
    """Process entry point (spawn-safe: config is a plain dict)."""
    transport = get_transport(
        str(config["transport"]), timeout=config.get("timeout")
    )
    connection = transport.connect(config["address"])  # type: ignore[arg-type]
    try:
        try:
            worker = ShardWorker(config)
            connection.send(
                encode_frame("hello", {"worker": worker.wid})
            )
            while True:
                # Wall-clock blocked on the coordinator: before a round
                # frame this is the lockstep barrier (the slowest peer's
                # shadow); before a deliver frame it is the cross-batch
                # relay (ship) wait.
                waited_from = time.perf_counter()
                kind, body = decode_frame(connection.recv())
                waited = time.perf_counter() - waited_from
                if kind == "round":
                    worker.barrier_wait_s.append(waited)
                    reply = ("sent", worker.handle_round(body))
                elif kind == "deliver":
                    worker.ship_wait_s.append(waited)
                    reply = ("events", worker.handle_deliver(body))
                elif kind == "stop":
                    if worker.telemetry is not None:
                        connection.send(
                            encode_frame("metrics", worker.metrics_snapshot())
                        )
                    connection.send(
                        encode_frame("final", worker.handle_stop())
                    )
                    break
                else:
                    raise ValueError("unexpected frame {!r}".format(kind))
                connection.send(encode_frame(*reply))
                if kind == "deliver" and worker.telemetry is not None:
                    connection.send(
                        encode_frame(
                            "telemetry",
                            worker.drain_telemetry(body["round"]),
                        )
                    )
        except Exception:
            connection.send(
                encode_frame(
                    "error",
                    {
                        "worker": int(config.get("worker", -1)),  # type: ignore[arg-type]
                        "traceback": traceback.format_exc(),
                    },
                )
            )
    finally:
        connection.close()
