"""Pluggable byte transports for the sharded backend.

A transport moves opaque frames (length-prefixed byte strings) between
the coordinator and its workers; all semantics live above it in
:mod:`repro.net.codec`.  Two backends:

* ``tcp`` — stdlib loopback sockets.  No dependencies; this is what
  tier-1 tests and CI run on.
* ``zmq`` — ROUTER/DEALER over pyzmq, behind the ``net`` optional
  extra (:mod:`repro.net.zmq_transport`).  Imported lazily so the
  package works without pyzmq installed.

The interface is deliberately tiny::

    transport = get_transport("tcp")
    listener = transport.listen()          # coordinator side
    conn = transport.connect(listener.address)   # worker side
    peer = listener.accept()               # coordinator's handle on it
    conn.send(frame); frame = peer.recv()

Addresses are picklable tuples so they can ride in the spawn config of
a worker process.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional, Tuple

__all__ = [
    "Connection",
    "Listener",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "get_transport",
]

#: Generous ceiling so a hung peer fails loudly instead of deadlocking
#: the round barrier forever.
DEFAULT_TIMEOUT = 300.0

_LEN = struct.Struct(">I")


class TransportClosed(ConnectionError):
    """The peer went away mid-conversation."""


class Connection:
    """One bidirectional frame pipe.

    Every connection keeps frame/byte counters for both directions
    (payload bytes, excluding any length prefix).  The counts are always
    on — four integer adds per frame — so the coordinator can report
    per-worker transport totals without a telemetry opt-in.
    """

    sent_frames = 0
    sent_bytes = 0
    recv_frames = 0
    recv_bytes = 0

    def _note_send(self, nbytes: int) -> None:
        self.sent_frames += 1
        self.sent_bytes += nbytes

    def _note_recv(self, nbytes: int) -> None:
        self.recv_frames += 1
        self.recv_bytes += nbytes

    def wire_totals(self) -> dict:
        return {
            "sent_frames": self.sent_frames,
            "sent_bytes": self.sent_bytes,
            "recv_frames": self.recv_frames,
            "recv_bytes": self.recv_bytes,
        }

    def send(self, frame: bytes) -> None:
        raise NotImplementedError

    def recv(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Listener:
    """Coordinator-side acceptor."""

    @property
    def address(self) -> Tuple[object, ...]:
        raise NotImplementedError

    def accept(self) -> Connection:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Transport:
    name = "abstract"

    def listen(self) -> Listener:
        raise NotImplementedError

    def connect(self, address: Tuple[object, ...]) -> Connection:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Stdlib TCP loopback
# ----------------------------------------------------------------------


class TcpConnection(Connection):
    def __init__(self, sock: socket.socket, timeout: float = DEFAULT_TIMEOUT):
        sock.settimeout(timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform quirk, not fatal
            pass
        self._sock = sock

    def send(self, frame: bytes) -> None:
        try:
            self._sock.sendall(_LEN.pack(len(frame)) + frame)
        except OSError as exc:
            raise TransportClosed("send failed: {}".format(exc))
        self._note_send(len(frame))

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        while count:
            try:
                chunk = self._sock.recv(min(count, 1 << 20))
            except socket.timeout:
                raise TransportClosed(
                    "peer silent past the {}s transport timeout".format(
                        self._sock.gettimeout()
                    )
                )
            except OSError as exc:
                raise TransportClosed("recv failed: {}".format(exc))
            if not chunk:
                raise TransportClosed("peer closed the connection")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> bytes:
        (length,) = _LEN.unpack(self._recv_exact(_LEN.size))
        frame = self._recv_exact(length)
        self._note_recv(len(frame))
        return frame

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class TcpListener(Listener):
    def __init__(self, host: str = "127.0.0.1", timeout: float = DEFAULT_TIMEOUT):
        self._timeout = timeout
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(64)
        self._sock.settimeout(timeout)
        self._host, self._port = self._sock.getsockname()

    @property
    def address(self) -> Tuple[str, str, int]:
        return ("tcp", self._host, self._port)

    def accept(self) -> TcpConnection:
        try:
            sock, _ = self._sock.accept()
        except socket.timeout:
            raise TransportClosed("no worker connected before the timeout")
        return TcpConnection(sock, timeout=self._timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class TcpTransport(Transport):
    name = "tcp"

    def __init__(self, timeout: float = DEFAULT_TIMEOUT):
        self.timeout = timeout

    def listen(self) -> TcpListener:
        return TcpListener(timeout=self.timeout)

    def connect(self, address: Tuple[object, ...]) -> TcpConnection:
        scheme, host, port = address
        if scheme != "tcp":
            raise ValueError("tcp transport got address {!r}".format(address))
        sock = socket.create_connection(
            (str(host), int(port)), timeout=self.timeout
        )
        return TcpConnection(sock, timeout=self.timeout)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def get_transport(name: str, timeout: Optional[float] = None) -> Transport:
    """Resolve a transport by name (``tcp`` or ``zmq``).

    The zmq backend is resolved lazily and raises a ``RuntimeError``
    naming the ``net`` extra when pyzmq is not installed.
    """
    resolved_timeout = DEFAULT_TIMEOUT if timeout is None else timeout
    if name == "tcp":
        return TcpTransport(timeout=resolved_timeout)
    if name == "zmq":
        from repro.net.zmq_transport import ZmqTransport

        return ZmqTransport(timeout=resolved_timeout)
    raise ValueError(
        "unknown transport {!r} (expected 'tcp' or 'zmq')".format(name)
    )
