"""Process shells: aliveness, volatile state, and the node behaviour API.

The paper's processes have **no durable storage**: a restarted process is
reset to a default initial state consisting only of the algorithm and
``[n]`` (Section 2), plus the global clock.  The simulator enforces this by
construction — a :class:`ProcessShell` *discards* its behaviour object on
crash and builds a brand-new one from the factory on restart, so protocol
code physically cannot smuggle state across a crash.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.gossip.rumor import Rumor

__all__ = ["NodeBehavior", "ProcessShell"]


class NodeBehavior:
    """Base class for per-process protocol behaviour.

    Subclasses implement a full protocol stack for one process.  The engine
    drives each alive process once per round through ``send_phase`` then
    ``receive_phase`` (synchronous model: messages sent in round *t* are
    received in round *t*).
    """

    def __init__(self, pid: int, n: int):
        if not 0 <= pid < n:
            raise ValueError("pid {} outside [0, {})".format(pid, n))
        self.pid = pid
        self.n = n

    def on_start(self, round_no: int) -> None:
        """Called once when the process (re)starts, before any phase."""

    def on_inject(self, round_no: int, rumor: "Rumor") -> None:
        """A rumor was injected at this process this round."""

    def send_phase(self, round_no: int) -> List[Message]:
        """Produce this round's outgoing messages."""
        return []

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        """Consume this round's delivered messages and finish the round."""

    def delivered_rumors(self) -> Dict[object, bytes]:
        """Rumor id -> plaintext for every rumor this process has delivered
        to its user.  Used by the delivery auditor; protocols that deliver
        rumors must override."""
        return {}


class ProcessShell:
    """Aliveness wrapper around a (recreatable) :class:`NodeBehavior`.

    The shell is the engine's handle on a process: it survives crashes, but
    the behaviour object inside it does not.
    """

    def __init__(self, pid: int, factory: Callable[[int], NodeBehavior]):
        self.pid = pid
        self._factory = factory
        self._behavior: Optional[NodeBehavior] = None
        self.crash_count = 0
        self.restart_count = 0

    @property
    def alive(self) -> bool:
        return self._behavior is not None

    @property
    def behavior(self) -> Optional[NodeBehavior]:
        """The current behaviour object, or None while crashed."""
        return self._behavior

    def start(self, round_no: int) -> NodeBehavior:
        """Bring the process up with fresh volatile state."""
        if self._behavior is not None:
            raise RuntimeError("process {} is already alive".format(self.pid))
        behavior = self._factory(self.pid)
        if behavior.pid != self.pid:
            raise ValueError(
                "factory produced behaviour for pid {} (expected {})".format(
                    behavior.pid, self.pid
                )
            )
        self._behavior = behavior
        behavior.on_start(round_no)
        return behavior

    def crash(self) -> None:
        """Crash the process, discarding all volatile state."""
        if self._behavior is None:
            raise RuntimeError("process {} is already crashed".format(self.pid))
        self._behavior = None
        self.crash_count += 1

    def restart(self, round_no: int) -> NodeBehavior:
        """Restart after a crash; equivalent to :meth:`start` plus counting."""
        behavior = self.start(round_no)
        self.restart_count += 1
        return behavior

    def inject(self, round_no: int, rumor: "Rumor") -> None:
        if self._behavior is None:
            raise RuntimeError(
                "cannot inject at crashed process {}".format(self.pid)
            )
        self._behavior.on_inject(round_no, rumor)

    def send_phase(self, round_no: int) -> List[Message]:
        if self._behavior is None:
            return []
        messages = self._behavior.send_phase(round_no)
        for message in messages:
            if message.src != self.pid:
                raise ValueError(
                    "process {} attempted to forge src={}".format(
                        self.pid, message.src
                    )
                )
        return messages

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        if self._behavior is None:
            return
        self._behavior.receive_phase(round_no, inbox)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "crashed"
        return "ProcessShell(pid={}, {})".format(self.pid, state)
