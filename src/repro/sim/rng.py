"""Seeded, stream-split randomness for reproducible simulations.

Every stochastic component of the simulator (each protocol service at each
process, each adversary, each workload generator) draws from its own
:class:`random.Random` stream, derived deterministically from a single master
seed and a string label.  This guarantees that

* a run is exactly reproducible from ``(master_seed, configuration)``;
* adding or removing one component does not perturb the random choices made
  by unrelated components (no shared global stream).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["derive_seed", "derive_rng", "SeedSequence"]


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label path.

    The derivation hashes the master seed together with the string forms of
    the labels, so distinct label paths yield independent-looking streams.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(master_seed: int, *labels: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *labels))


class SeedSequence:
    """A hierarchical seed dispenser.

    ``SeedSequence(seed).child("adversary")`` returns a new sequence scoped
    under the label; ``rng()`` materialises a stream for the current scope,
    and ``spawn()`` yields an unbounded sequence of numbered child streams.
    """

    def __init__(self, master_seed: int, _path: tuple = ()):  # type: ignore[type-arg]
        self.master_seed = int(master_seed)
        self._path = _path

    @property
    def path(self) -> tuple:
        """The label path from the root sequence to this scope."""
        return self._path

    def child(self, *labels: object) -> "SeedSequence":
        """Return a sub-sequence scoped under ``labels``."""
        return SeedSequence(self.master_seed, self._path + tuple(labels))

    def seed(self) -> int:
        """The derived integer seed for this scope."""
        return derive_seed(self.master_seed, *self._path)

    def rng(self, *labels: object) -> random.Random:
        """Materialise a random stream for this scope (plus extra labels)."""
        return derive_rng(self.master_seed, *(self._path + tuple(labels)))

    def spawn(self) -> Iterator["SeedSequence"]:
        """Yield numbered child sequences ``child(0), child(1), ...``."""
        index = 0
        while True:
            yield self.child(index)
            index += 1

    def __repr__(self) -> str:
        return "SeedSequence(seed={}, path={})".format(self.master_seed, self._path)
