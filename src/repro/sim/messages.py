"""Message envelopes and knowledge-revealing payloads.

Every point-to-point message in the simulator is a :class:`Message` tagged
with the service that produced it.  Message-complexity metrics aggregate by
that tag, which is how the benches separately account for Proxy,
GroupDistribution, GroupGossip, AllGossip and fallback traffic (Lemma 7,
Theorem 11).

Confidentiality auditing is payload-driven: any payload object may implement
``reveals()`` returning the knowledge atoms a recipient learns from it (see
:mod:`repro.audit.confidentiality`).  Payloads that carry no rumor-derived
information (pure control traffic) simply do not implement it.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Iterator, List, Tuple

__all__ = [
    "Message",
    "ServiceTags",
    "KnowledgeAtom",
    "plaintext_atom",
    "fragment_atom",
    "reveals_of",
    "total_size",
    "debug_validation",
    "set_debug_validation",
]


# ----------------------------------------------------------------------
# Debug-flag validation
# ----------------------------------------------------------------------
#
# Messages are the single most-constructed object in a run (one per send,
# O(n polylog n) per round).  Range validation therefore lives at ONE site
# — Network.route, which knows ``n`` and rejects negative or out-of-range
# endpoints for every message that enters the network.  The per-construction
# checks below are a debugging aid: off by default, re-enabled with
# ``set_debug_validation(True)`` (or REPRO_DEBUG_VALIDATE=1) to catch a bad
# message at its construction site instead of at routing time.

_DEBUG_VALIDATE = os.environ.get("REPRO_DEBUG_VALIDATE", "") not in ("", "0")


def debug_validation() -> bool:
    """Whether eager per-construction Message validation is enabled."""
    return _DEBUG_VALIDATE


def set_debug_validation(enabled: bool) -> bool:
    """Toggle eager Message validation; returns the previous setting."""
    global _DEBUG_VALIDATE
    previous = _DEBUG_VALIDATE
    _DEBUG_VALIDATE = bool(enabled)
    return previous


class ServiceTags:
    """Canonical service tags used across the code base."""

    CONFIDENTIAL = "confidential"  # ConfidentialGossip fallback ("shoot") traffic
    DIRECT_ACK = "direct_ack"  # hardened direct-send acknowledgements
    PROXY = "proxy"  # Proxy requests and acks
    GROUP_DISTRIBUTION = "group_distribution"  # GD fragment deliveries
    GROUP_GOSSIP = "group_gossip"  # filtered continuous gossip
    ALL_GOSSIP = "all_gossip"  # unfiltered continuous gossip
    BASELINE = "baseline"  # baseline protocols
    KEY_TREE = "key_tree"  # crypto baseline re-keying traffic
    COVER = "cover"  # Section-7 cover traffic

    ALL: Tuple[str, ...] = (
        CONFIDENTIAL,
        DIRECT_ACK,
        PROXY,
        GROUP_DISTRIBUTION,
        GROUP_GOSSIP,
        ALL_GOSSIP,
        BASELINE,
        KEY_TREE,
        COVER,
    )


# A knowledge atom is a hashable token describing one piece of rumor-derived
# information a process may hold:
#   ("plaintext", rid)                  - the full rumor contents
#   ("fragment", rid, partition, group) - one XOR fragment of one partition
KnowledgeAtom = Tuple[Any, ...]


def plaintext_atom(rid: object) -> KnowledgeAtom:
    """Atom meaning "knows the full contents of rumor ``rid``"."""
    return ("plaintext", rid)


def fragment_atom(rid: object, partition: int, group: int) -> KnowledgeAtom:
    """Atom meaning "knows fragment ``group`` of partition ``partition``."""
    return ("fragment", rid, partition, group)


class Message:
    """A point-to-point message sent over the synchronous network.

    ``size`` is an abstract size measure (number of rumor fragments plus
    control entries carried); the paper counts *messages*, but Section 7
    discusses communication (bit) complexity, which benches E10/E11 estimate
    through this field.

    ``channel`` routes the message to one service *instance* at the
    receiver (e.g. the GroupGossip instance of partition 3, group 1, of a
    particular deadline class); ``service`` remains the coarse tag used for
    message-complexity accounting.

    Implemented as a ``__slots__`` class (not a dataclass): construction is
    on the per-send hot path, and slots cut both per-message memory and
    attribute-access time.  Endpoint/size ranges are validated once, in
    :meth:`~repro.sim.network.Network.route`; construction-time checks are
    behind :func:`debug_validation`.
    """

    __slots__ = ("src", "dst", "service", "payload", "size", "channel")

    def __init__(
        self,
        src: int,
        dst: int,
        service: str,
        payload: Any = None,
        size: int = 1,
        channel: str = "",
    ) -> None:
        if _DEBUG_VALIDATE:
            if src < 0 or dst < 0:
                raise ValueError("process ids must be non-negative")
            if size < 0:
                raise ValueError("message size must be non-negative")
        self.src = src
        self.dst = dst
        self.service = service
        self.payload = payload
        self.size = size
        self.channel = channel

    def __repr__(self) -> str:
        return (
            "Message(src={!r}, dst={!r}, service={!r}, payload={!r}, "
            "size={!r}, channel={!r})".format(
                self.src, self.dst, self.service, self.payload,
                self.size, self.channel,
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.service == other.service
            and self.payload == other.payload
            and self.size == other.size
            and self.channel == other.channel
        )

    __hash__ = None  # type: ignore[assignment]  # mutable envelope, like the old dataclass

    def reveals(self) -> Iterator[KnowledgeAtom]:
        """Knowledge atoms the recipient learns from this message."""
        return reveals_of(self.payload)


def reveals_of(payload: Any) -> Iterator[KnowledgeAtom]:
    """Extract knowledge atoms from an arbitrary payload.

    Recurses through lists/tuples/sets so composite payloads (e.g. a gossip
    message carrying several fragments) are handled uniformly.
    """
    if payload is None:
        return iter(())
    reveal = getattr(payload, "reveals", None)
    if callable(reveal):
        return iter(reveal())
    if isinstance(payload, (list, tuple, set, frozenset)):
        if isinstance(payload, (set, frozenset)):
            # Sets iterate in hash order, which varies across interpreters
            # (and across runs with PYTHONHASHSEED for str-keyed payloads);
            # audit and telemetry output must not depend on it.  ``repr`` is
            # a deterministic total order for the atom-bearing payload types
            # (tuples, dataclasses, numbers) without requiring mutual
            # comparability.
            payload = sorted(payload, key=repr)

        def _walk(items: Iterable[Any]) -> Iterator[KnowledgeAtom]:
            for item in items:
                for atom in reveals_of(item):
                    yield atom

        return _walk(payload)
    return iter(())


def total_size(messages: List[Message]) -> int:
    """Sum of the abstract sizes of ``messages``."""
    return sum(message.size for message in messages)
