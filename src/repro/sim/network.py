"""The reliable synchronous network.

Section 2 of the paper: any pair of processes can communicate directly;
messages are neither lost nor corrupted in transit.  The only way a message
can fail to arrive is through a crash/restart boundary in the very round it
was sent — and *which* of those messages are lost is the adversary's choice.

:class:`Network` validates sends, counts them into :class:`MessageStats`
(message complexity counts sends, not deliveries), applies adversarial drops
that the model permits, and routes the survivors into per-recipient inboxes.

An optional **fault plane** (:mod:`repro.chaos.plane`) extends the model
beyond the paper: after the CRRI checks, each surviving message may be
dropped, delayed, duplicated or severed by a seed-keyed schedule, and
inboxes may be reordered.  With no plane installed (the default) none of
the chaos branches execute and routing is bit-identical to the paper's
reliable model.  The plane is duck-typed here — ``sim`` stays free of any
import from the chaos layer; fates are the plain strings defined in
:mod:`repro.chaos.schedule` (``deliver``/``drop``/``delay``/``duplicate``
plus ``sever``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, TYPE_CHECKING

from repro.sim.messages import Message
from repro.sim.metrics import MessageStats

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps sim below chaos
    from repro.chaos.plane import FaultPlane

__all__ = ["Network", "DeliveryOutcome"]


class DeliveryOutcome:
    """The result of routing one round's traffic."""

    def __init__(self) -> None:
        self.inboxes: Dict[int, List[Message]] = defaultdict(list)
        self.delivered: List[Message] = []
        self.lost_to_crash: List[Message] = []
        self.lost_to_adversary: List[Message] = []
        # Chaos extension; always empty under the paper's reliable model.
        self.lost_to_fault: List[Message] = []
        self.delayed: List[Message] = []
        self.duplicated: List[Message] = []

    @property
    def delivered_count(self) -> int:
        return len(self.delivered)


class Network:
    """Reliable, fully connected, synchronous point-to-point network."""

    def __init__(
        self,
        n: int,
        stats: Optional[MessageStats] = None,
        fault_plane: Optional["FaultPlane"] = None,
    ):
        if n <= 0:
            raise ValueError("network needs at least one process")
        self.n = n
        self.stats = stats if stats is not None else MessageStats()
        self.fault_plane = fault_plane

    def validate(self, message: Message) -> None:
        """Reject out-of-range endpoints.

        This is the single mandatory validation site for messages (the
        per-construction checks in :class:`Message` are a debug flag);
        :meth:`route` inlines the same comparisons on its hot loop and
        calls here only to raise.
        """
        if not 0 <= message.src < self.n:
            raise ValueError("invalid src {}".format(message.src))
        if not 0 <= message.dst < self.n:
            raise ValueError("invalid dst {}".format(message.dst))

    def route(
        self,
        round_no: int,
        outgoing: List[Message],
        alive_after_round: Set[int],
        boundary_pids: Set[int],
        adversary_drops: Iterable[int] = (),
    ) -> DeliveryOutcome:
        """Count, filter and route one round's messages.

        Parameters
        ----------
        outgoing:
            All messages produced in this round's send phase, in engine
            order (indices in ``adversary_drops`` refer to this list).
        alive_after_round:
            Pids alive at delivery time (i.e. after mid-round crashes).
            Messages to processes not in this set are lost to the crash.
        boundary_pids:
            Pids that crashed or restarted *this round*.  The adversary may
            only drop messages whose src or dst is in this set — the network
            itself is reliable.
        adversary_drops:
            Indices into ``outgoing`` the adversary chose to lose.
        """
        outcome = DeliveryOutcome()
        drops = set(adversary_drops)
        plane = self.fault_plane
        chaos = plane is not None and plane.active_in(round_no)
        if chaos:
            plane.begin_round(round_no)
        # Hot loop: locals for everything touched per message, counts
        # accumulated here and folded into MessageStats once per round.
        n = self.n
        sent_count = 0
        sent_size = 0
        sent_by_service: Dict[str, int] = {}
        inboxes = outcome.inboxes
        delivered_append = outcome.delivered.append
        lost_to_crash_append = outcome.lost_to_crash.append
        for index, message in enumerate(outgoing):
            src = message.src
            dst = message.dst
            if src < 0 or src >= n or dst < 0 or dst >= n:
                self.validate(message)  # raises with the precise complaint
            sent_count += 1
            sent_size += message.size
            service = message.service
            sent_by_service[service] = sent_by_service.get(service, 0) + 1
            if drops and index in drops:
                if src not in boundary_pids and dst not in boundary_pids:
                    raise ValueError(
                        "adversary tried to drop message {}->{} with no "
                        "crash/restart boundary this round; the network is "
                        "reliable".format(src, dst)
                    )
                outcome.lost_to_adversary.append(message)
                continue
            if dst not in alive_after_round:
                lost_to_crash_append(message)
                continue
            if chaos:
                fate = plane.admit(round_no, message)
                if fate == "drop" or fate == "sever":
                    outcome.lost_to_fault.append(message)
                    continue
                if fate == "delay":
                    outcome.delayed.append(message)
                    continue
                if fate == "duplicate":
                    outcome.duplicated.append(message)
                    # The original is delivered now; the spurious copy
                    # matures through release() next round.
            inboxes[dst].append(message)
            delivered_append(message)
        self.stats.record_round(round_no, sent_count, sent_size, sent_by_service)
        if plane is not None and plane.has_pending():
            # Matured delayed/duplicated copies are already past the link:
            # only crash-aliveness gates them now.
            for message in plane.release(round_no):
                if message.dst not in alive_after_round:
                    outcome.lost_to_crash.append(message)
                    plane.record_late_loss(round_no, message)
                    continue
                outcome.inboxes[message.dst].append(message)
                outcome.delivered.append(message)
        if chaos:
            plane.shuffle_inboxes(round_no, outcome.inboxes)
        return outcome
