"""Per-round message-complexity accounting.

The paper's efficiency metric is *per-round message complexity*
(Definition 3): the maximum, over rounds, of the number of point-to-point
messages sent in that round.  :class:`MessageStats` tracks exactly that,
broken down by service tag, along with totals and abstract sizes, so the
benches can reproduce Lemma 7 / Theorem 11 / Theorem 16 shapes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.sim.messages import Message

__all__ = ["RoundRecord", "MessageStats"]


@dataclass(frozen=True)
class RoundRecord:
    """Counts for a single round."""

    round_no: int
    total: int
    total_size: int
    by_service: Dict[str, int]


class MessageStats:
    """Accumulates message counts, per round and per service.

    Counting happens on *send*: a message that the adversary later drops
    (because its sender crashed mid-round) still counts as sent, matching
    the paper's metric.  Messages suppressed by the group Filter are never
    sent at all and are tallied separately via :meth:`record_filtered`.
    """

    def __init__(self) -> None:
        self._round_totals: Dict[int, int] = defaultdict(int)
        self._round_sizes: Dict[int, int] = defaultdict(int)
        self._round_service: Dict[int, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._service_totals: Dict[str, int] = defaultdict(int)
        self._filtered: int = 0
        self.total: int = 0
        self.total_size: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_send(self, round_no: int, message: Message) -> None:
        self._round_totals[round_no] += 1
        self._round_sizes[round_no] += message.size
        self._round_service[round_no][message.service] += 1
        self._service_totals[message.service] += 1
        self.total += 1
        self.total_size += message.size

    def record_sends(self, round_no: int, messages: Iterable[Message]) -> None:
        for message in messages:
            self.record_send(round_no, message)

    def record_round(
        self,
        round_no: int,
        count: int,
        size: int,
        by_service: Mapping[str, int],
    ) -> None:
        """Fold one round's pre-aggregated send counts in at once.

        Equivalent to ``count`` :meth:`record_send` calls whose sizes sum
        to ``size`` and whose service tags tally to ``by_service`` — the
        network batches per round so the per-message hot path pays plain
        integer adds instead of five dict updates per send.  A zero-send
        round is a no-op, matching per-message recording (rounds with no
        sends are never observed).
        """
        if count <= 0:
            return
        self._round_totals[round_no] += count
        self._round_sizes[round_no] += size
        round_service = self._round_service[round_no]
        service_totals = self._service_totals
        for service, tally in by_service.items():
            round_service[service] += tally
            service_totals[service] += tally
        self.total += count
        self.total_size += size

    def record_filtered(self, count: int = 1) -> None:
        """Count messages dropped by a group Filter (never sent)."""
        self._filtered += count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def filtered(self) -> int:
        return self._filtered

    @property
    def rounds_observed(self) -> int:
        return len(self._round_totals)

    def per_round(self, round_no: int) -> int:
        """Messages sent in ``round_no``."""
        return self._round_totals.get(round_no, 0)

    def per_round_by_service(self, round_no: int, service: str) -> int:
        return self._round_service.get(round_no, {}).get(service, 0)

    def service_total(self, service: str) -> int:
        return self._service_totals.get(service, 0)

    def by_service(self) -> Dict[str, int]:
        """Total messages per service over the whole run."""
        return dict(self._service_totals)

    def max_per_round(self, services: Optional[Iterable[str]] = None) -> int:
        """The run's maximum per-round message count.

        With ``services`` given, restrict the count to those service tags
        (used to check Lemma 7, which bounds Proxy+GD traffic excluding the
        gossip substrate).
        """
        if not self._round_totals:
            return 0
        if services is None:
            return max(self._round_totals.values())
        wanted = set(services)
        best = 0
        for counts in self._round_service.values():
            round_sum = sum(c for svc, c in counts.items() if svc in wanted)
            if round_sum > best:
                best = round_sum
        return best

    def argmax_round(self) -> Optional[int]:
        """The round achieving the maximum per-round count, if any."""
        if not self._round_totals:
            return None
        return max(self._round_totals, key=lambda r: (self._round_totals[r], -r))

    def mean_per_round(self) -> float:
        """Average messages per observed round (rounds with zero sends that
        were never recorded do not enter the average; use ``over_rounds`` for
        a fixed horizon)."""
        if not self._round_totals:
            return 0.0
        return self.total / len(self._round_totals)

    def mean_over_horizon(self, horizon: int) -> float:
        """Average messages per round over a fixed horizon of rounds."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.total / horizon

    def round_record(self, round_no: int) -> RoundRecord:
        return RoundRecord(
            round_no=round_no,
            total=self._round_totals.get(round_no, 0),
            total_size=self._round_sizes.get(round_no, 0),
            by_service=dict(self._round_service.get(round_no, {})),
        )

    def series(self, start: int, end: int) -> List[int]:
        """Per-round totals for rounds ``start..end`` inclusive."""
        return [self._round_totals.get(r, 0) for r in range(start, end + 1)]

    def top_rounds(self, k: int = 5) -> List[Tuple[int, int]]:
        """The ``k`` busiest rounds as ``(round, count)`` pairs."""
        ordered = sorted(
            self._round_totals.items(), key=lambda item: item[1], reverse=True
        )
        return ordered[:k]

    def merge(self, other: "MessageStats") -> None:
        """Fold another stats object into this one (disjoint runs)."""
        for round_no, count in other._round_totals.items():
            self._round_totals[round_no] += count
        for round_no, size in other._round_sizes.items():
            self._round_sizes[round_no] += size
        for round_no, services in other._round_service.items():
            for service, count in services.items():
                self._round_service[round_no][service] += count
        for service, count in other._service_totals.items():
            self._service_totals[service] += count
        self._filtered += other._filtered
        self.total += other.total
        self.total_size += other.total_size

    def summary(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "total_size": self.total_size,
            "max_per_round": self.max_per_round(),
            "mean_per_round": round(self.mean_per_round(), 2),
            "filtered": self._filtered,
            "by_service": self.by_service(),
        }
