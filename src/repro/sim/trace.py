"""Structured execution traces.

A :class:`Tracer` is a :class:`~repro.sim.engine.SimObserver` that records a
compact, filterable event stream.  It is primarily a debugging and
demonstration aid (the examples use it to narrate runs); auditors do their
own bookkeeping and do not depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.engine import Engine, SimObserver
from repro.sim.messages import Message

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    round_no: int
    kind: str  # "crash" | "restart" | "inject" | "deliver" | "round_end"
    detail: Dict[str, Any]

    def __str__(self) -> str:
        parts = " ".join(
            "{}={}".format(key, value) for key, value in sorted(self.detail.items())
        )
        return "[r{:>5}] {:<9} {}".format(self.round_no, self.kind, parts)


class Tracer(SimObserver):
    """Records simulator events, optionally filtered.

    Parameters
    ----------
    kinds:
        Event kinds to keep; ``None`` keeps everything.
    message_filter:
        Optional predicate on delivered messages; only matching deliveries
        are traced (e.g. only proxy traffic).
    max_events:
        Hard cap to bound memory in long runs; oldest events are kept.
    """

    def __init__(
        self,
        kinds: Optional[List[str]] = None,
        message_filter: Optional[Callable[[Message], bool]] = None,
        max_events: int = 100_000,
    ):
        self.kinds = set(kinds) if kinds is not None else None
        self.message_filter = message_filter
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.truncated = False

    def _record(self, event: TraceEvent) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    # SimObserver hooks
    # ------------------------------------------------------------------

    def on_crash(self, round_no: int, pid: int, mid_round: bool) -> None:
        self._record(
            TraceEvent(round_no, "crash", {"pid": pid, "mid_round": mid_round})
        )

    def on_restart(self, round_no: int, pid: int) -> None:
        self._record(TraceEvent(round_no, "restart", {"pid": pid}))

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        # Record identifying metadata only: holding the rumor object itself
        # would leak the confidential payload ``z`` into traces (and make
        # the event unserializable).
        dest = getattr(rumor, "dest", None)
        self._record(
            TraceEvent(
                round_no,
                "inject",
                {
                    "pid": pid,
                    "rid": str(getattr(rumor, "rid", None)),
                    "dest_size": len(dest) if dest is not None else 0,
                    "deadline": getattr(rumor, "deadline", None),
                },
            )
        )

    def on_deliver(self, round_no: int, message: Message) -> None:
        if self.message_filter is not None and not self.message_filter(message):
            return
        self._record(
            TraceEvent(
                round_no,
                "deliver",
                {
                    "src": message.src,
                    "dst": message.dst,
                    "service": message.service,
                    "size": message.size,
                },
            )
        )

    def on_round_end(self, round_no: int, engine: Engine) -> None:
        if self.kinds is not None and "round_end" not in self.kinds:
            return
        self._record(
            TraceEvent(
                round_no,
                "round_end",
                {
                    "alive": len(engine.alive_pids()),
                    "sent": engine.stats.per_round(round_no),
                },
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def in_round(self, round_no: int) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.round_no == round_no)

    def render(self, limit: Optional[int] = None) -> str:
        """Render the trace as a printable block."""
        events = self.events if limit is None else self.events[:limit]
        lines = [str(event) for event in events]
        if self.truncated or (limit is not None and limit < len(self.events)):
            lines.append("... (trace truncated)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
