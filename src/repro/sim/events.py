"""Event types for the CRRI (Crash-and-Restart-Rumor-Injection) adversary.

The paper models all dynamism — crashes, restarts and rumor injections — as
events chosen by an adversary (Section 2).  This module defines the concrete
event records exchanged between adversaries and the engine, plus the decision
containers returned by the adversary hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.gossip.rumor import Rumor

__all__ = [
    "CrashEvent",
    "RestartEvent",
    "InjectEvent",
    "RoundDecision",
    "MidRoundDecision",
    "EventLog",
]


@dataclass(frozen=True)
class CrashEvent:
    """Process ``pid`` crashes in round ``round_no``.

    ``mid_round`` is True when the crash was decided after the send phase
    (the adversary saw this round's outgoing messages first); in that case
    the process's own sends of this round may still be delivered, per the
    model's partial-delivery rule.
    """

    pid: int
    round_no: int
    mid_round: bool = False


@dataclass(frozen=True)
class RestartEvent:
    """Process ``pid`` restarts (with empty volatile state) in ``round_no``."""

    pid: int
    round_no: int


@dataclass(frozen=True)
class InjectEvent:
    """Rumor ``rumor`` is injected at process ``pid`` in round ``round_no``."""

    pid: int
    round_no: int
    rumor: "Rumor"


@dataclass
class RoundDecision:
    """Adversary decisions taken at the start of a round.

    ``crashes`` take effect before the send phase: crashed processes send
    nothing this round.  ``restarts`` bring processes back alive with fresh
    state; they participate in this round's receive phase.  ``injections``
    are ``(pid, rumor)`` pairs delivered to alive processes (at most one
    rumor per process per round, enforced by the engine).
    """

    crashes: Set[int] = field(default_factory=set)
    restarts: Set[int] = field(default_factory=set)
    injections: List[Tuple[int, "Rumor"]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.crashes or self.restarts or self.injections)


@dataclass
class MidRoundDecision:
    """Adversary decisions taken after observing the round's sends.

    ``crashes`` are processes killed after they computed their sends; the
    paper allows "some of the messages sent by p in round t may be
    delivered, and some may be lost" — the adversary controls which, via
    ``dropped_messages`` (indices into the engine's outgoing message list
    for this round).  Dropping is only permitted for messages whose sender
    or receiver crashes/restarts this round; the engine enforces this,
    because the network itself is reliable.
    """

    crashes: Set[int] = field(default_factory=set)
    dropped_messages: Set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not (self.crashes or self.dropped_messages)


class EventLog:
    """Chronological record of all CRRI events applied during a run.

    The delivery auditor uses it to decide admissibility (which requires
    knowing the exact alive intervals of every process), and traces/benches
    use it for reporting.
    """

    def __init__(self) -> None:
        self.crashes: List[CrashEvent] = []
        self.restarts: List[RestartEvent] = []
        self.injections: List[InjectEvent] = []
        self._crash_rounds: Dict[int, List[int]] = {}
        self._restart_rounds: Dict[int, List[int]] = {}

    def record_crash(self, event: CrashEvent) -> None:
        self.crashes.append(event)
        self._crash_rounds.setdefault(event.pid, []).append(event.round_no)

    def record_restart(self, event: RestartEvent) -> None:
        self.restarts.append(event)
        self._restart_rounds.setdefault(event.pid, []).append(event.round_no)

    def record_injection(self, event: InjectEvent) -> None:
        self.injections.append(event)

    def crash_rounds(self, pid: int) -> List[int]:
        """Rounds in which ``pid`` crashed, in order."""
        return list(self._crash_rounds.get(pid, []))

    def restart_rounds(self, pid: int) -> List[int]:
        """Rounds in which ``pid`` restarted, in order."""
        return list(self._restart_rounds.get(pid, []))

    def continuously_alive(self, pid: int, start: int, end: int) -> bool:
        """True iff ``pid`` had no crash event in ``[start, end]``.

        Matches the paper's definition: alive at the beginning of ``start``
        and the end of ``end`` with no ``crash(pid, t)`` for t in between.
        A process that crashed before ``start`` and never restarted by
        ``start`` is not continuously alive either.
        """
        if start > end:
            raise ValueError("empty interval [{}, {}]".format(start, end))
        if any(start <= t <= end for t in self._crash_rounds.get(pid, ())):
            return False
        # Determine aliveness entering `start`: the latest event before
        # `start` must not be an unrecovered crash.
        last_crash = max(
            (t for t in self._crash_rounds.get(pid, ()) if t < start), default=None
        )
        if last_crash is None:
            return True
        last_restart = max(
            (t for t in self._restart_rounds.get(pid, ()) if t < start), default=None
        )
        # A restart in the same round as `start` does not count as
        # "alive at the beginning of start" for admissibility purposes.
        return last_restart is not None and last_restart > last_crash

    def summary(self) -> Dict[str, int]:
        return {
            "crashes": len(self.crashes),
            "restarts": len(self.restarts),
            "injections": len(self.injections),
        }
