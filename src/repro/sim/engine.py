"""The synchronous round engine.

One engine round implements the model of Section 2 exactly:

1. **Adversary, round start** — the CRRI adversary observes the full system
   state and decides crashes, restarts and rumor injections.  Round-start
   crashes silence a process for the whole round; restarts bring a process
   back with *empty* volatile state (it re-reads the global clock).
2. **Injections** — at most one rumor per alive process per round.
3. **Send phase** — every alive process produces its messages for the round.
4. **Adversary, mid round** — the adversary observes the outgoing messages
   (it is adaptive: "decisions ... based on the random choices being made in
   round t itself") and may crash more processes; for processes on a
   crash/restart boundary this round it chooses which of their messages are
   lost.
5. **Delivery** — the reliable network routes every surviving message.
6. **Receive phase** — alive processes consume their inboxes and finish
   local computation.

Observers (auditors, tracers) are notified of every event so that
confidentiality and quality-of-delivery can be checked from outside the
protocol, with no cooperation from protocol code.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.sim.clock import RoundClock
from repro.sim.events import (
    CrashEvent,
    EventLog,
    InjectEvent,
    MidRoundDecision,
    RestartEvent,
    RoundDecision,
)
from repro.sim.messages import Message
from repro.sim.metrics import MessageStats
from repro.sim.network import Network
from repro.sim.process import NodeBehavior, ProcessShell
from repro.sim.rng import SeedSequence

__all__ = ["SimObserver", "AdversaryView", "Engine"]


class SimObserver:
    """Hook interface for auditors and tracers.  All methods optional."""

    def on_round_begin(self, round_no: int) -> None:
        pass

    def on_crash(self, round_no: int, pid: int, mid_round: bool) -> None:
        pass

    def on_restart(self, round_no: int, pid: int) -> None:
        pass

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        pass

    def on_deliver(self, round_no: int, message: Message) -> None:
        pass

    def on_round_end(self, round_no: int, engine: "Engine") -> None:
        pass


class AdversaryView:
    """What an adversary can see.

    The paper's adversary is omniscient, so the view deliberately exposes
    the engine itself; polite adversaries restrict themselves to the helper
    accessors.
    """

    def __init__(self, engine: "Engine"):
        self.engine = engine
        # Adaptive adversaries query crashed_pids() every round; the full
        # pid universe never changes, so build it once.
        self._all_pids: FrozenSet[int] = frozenset(range(engine.n))

    @property
    def round(self) -> int:
        return self.engine.round

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def all_pids(self) -> FrozenSet[int]:
        """The immutable pid universe ``{0, ..., n-1}``."""
        return self._all_pids

    @property
    def event_log(self) -> EventLog:
        return self.engine.event_log

    def alive_pids(self) -> Set[int]:
        return self.engine.alive_pids()

    def crashed_pids(self) -> Set[int]:
        return self._all_pids - self.engine._alive

    def is_alive(self, pid: int) -> bool:
        return self.engine.shells[pid].alive

    def touched_this_round(self) -> Set[int]:
        """Pids already crashed or restarted in the current round.

        The model allows one crash-or-restart per process per round; a
        mid-round adversary must not touch these again (the engine raises
        if it does).
        """
        return set(self.engine._touched_this_round)

    def behavior(self, pid: int) -> Optional[NodeBehavior]:
        """Omniscient access to a process's internal state."""
        return self.engine.shells[pid].behavior


class _NullAdversary:
    """Fault-free, injection-free adversary used when none is supplied."""

    def round_start(self, view: AdversaryView) -> RoundDecision:
        return RoundDecision()

    def mid_round(
        self, view: AdversaryView, outgoing: List[Message]
    ) -> MidRoundDecision:
        return MidRoundDecision()


class Engine:
    """Drives ``n`` processes through synchronous rounds under an adversary."""

    def __init__(
        self,
        n: int,
        node_factory: Callable[[int], NodeBehavior],
        adversary: Optional[object] = None,
        observers: Iterable[SimObserver] = (),
        seed: int = 0,
        start_round: int = 0,
        fault_plane: Optional[object] = None,
    ):
        if n <= 0:
            raise ValueError("need at least one process")
        self.n = n
        self.seeds = SeedSequence(seed)
        self.clock = RoundClock(start_round)
        self.stats = MessageStats()
        self.network = Network(n, self.stats, fault_plane=fault_plane)
        self.event_log = EventLog()
        self.adversary = adversary if adversary is not None else _NullAdversary()
        self.observers: List[SimObserver] = []
        self.shells: Dict[int, ProcessShell] = {}
        for pid in range(n):
            shell = ProcessShell(pid, node_factory)
            shell.start(self.clock.round)
            self.shells[pid] = shell
        # Hot-path state maintained incrementally (never rebuilt per round):
        # the alive set mutates only on crash/restart; pid iteration order
        # is fixed at construction (shells are keyed 0..n-1).
        self._alive: Set[int] = set(range(n))
        self._pid_order: Tuple[int, ...] = tuple(range(n))
        # Observer dispatch tables: one tuple per hook, holding only the
        # observers whose class actually overrides that hook, so inherited
        # no-op SimObserver methods are never called.  Rebuilt on
        # add_observer; on_deliver fans out per delivered message, which is
        # why the empty-table fast path matters.
        self._dispatch: Dict[str, Tuple[SimObserver, ...]] = {}
        for observer in observers:
            self.observers.append(observer)
        self._rebuild_dispatch()
        self.view = AdversaryView(self)
        self.rounds_executed = 0
        self._touched_this_round: Set[int] = set()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def round(self) -> int:
        return self.clock.round

    @property
    def fault_plane(self) -> Optional[object]:
        """The installed chaos fault plane, if any (``None`` = reliable)."""
        return self.network.fault_plane

    def alive_pids(self) -> Set[int]:
        """A fresh copy of the alive-pid set (callers may mutate it)."""
        return set(self._alive)

    def behavior(self, pid: int) -> Optional[NodeBehavior]:
        return self.shells[pid].behavior

    def add_observer(self, observer: SimObserver) -> None:
        self.observers.append(observer)
        self._rebuild_dispatch()

    _HOOKS = (
        "on_round_begin",
        "on_crash",
        "on_restart",
        "on_inject",
        "on_deliver",
        "on_round_end",
    )

    def _rebuild_dispatch(self) -> None:
        """Recompute the per-hook observer tables (see ``__init__``)."""
        for hook in self._HOOKS:
            base = getattr(SimObserver, hook)
            self._dispatch[hook] = tuple(
                observer
                for observer in self.observers
                if getattr(type(observer), hook, base) is not base
                or hook in getattr(observer, "__dict__", ())
            )

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        for _ in range(rounds):
            self.run_round()

    def run_round(self) -> None:
        round_no = self.clock.round
        dispatch = self._dispatch
        for observer in dispatch["on_round_begin"]:
            observer.on_round_begin(round_no)

        decision = self._round_start_decision(round_no)
        touched = self._apply_round_start(round_no, decision)
        self._touched_this_round = touched
        self._apply_injections(round_no, decision)

        shells = self.shells
        outgoing: List[Message] = []
        extend = outgoing.extend
        for pid in self._pid_order:
            extend(shells[pid].send_phase(round_no))

        mid = self._mid_round_decision(round_no, outgoing, touched)
        boundary = set(touched)
        for pid in mid.crashes:
            self._crash(round_no, pid, mid_round=True)
            boundary.add(pid)

        outcome = self.network.route(
            round_no,
            outgoing,
            alive_after_round=self._alive,  # membership tests only
            boundary_pids=boundary,
            adversary_drops=mid.dropped_messages,
        )
        deliver_observers = dispatch["on_deliver"]
        if deliver_observers:
            for message in outcome.delivered:
                for observer in deliver_observers:
                    observer.on_deliver(round_no, message)

        inboxes = outcome.inboxes
        empty: List[Message] = []
        for pid in self._pid_order:
            shell = shells[pid]
            if shell.alive:
                shell.receive_phase(round_no, inboxes.get(pid, empty))

        for observer in dispatch["on_round_end"]:
            observer.on_round_end(round_no, self)
        self.rounds_executed += 1
        self.clock.advance()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _round_start_decision(self, round_no: int) -> RoundDecision:
        decision = self.adversary.round_start(self.view)
        if decision.crashes & decision.restarts:
            raise ValueError(
                "a process may crash or restart at most once per round"
            )
        return decision

    def _apply_round_start(
        self, round_no: int, decision: RoundDecision
    ) -> Set[int]:
        touched: Set[int] = set()
        for pid in sorted(decision.crashes):
            self._crash(round_no, pid, mid_round=False)
            touched.add(pid)
        for pid in sorted(decision.restarts):
            self._restart(round_no, pid)
            touched.add(pid)
        return touched

    def _apply_injections(self, round_no: int, decision: RoundDecision) -> None:
        injected: Set[int] = set()
        for pid, rumor in decision.injections:
            if pid in injected:
                raise ValueError(
                    "at most one rumor per process per round (pid {})".format(pid)
                )
            shell = self.shells[pid]
            if not shell.alive:
                raise ValueError(
                    "cannot inject at crashed process {}".format(pid)
                )
            injected.add(pid)
            self.event_log.record_injection(InjectEvent(pid, round_no, rumor))
            for observer in self._dispatch["on_inject"]:
                observer.on_inject(round_no, pid, rumor)
            shell.inject(round_no, rumor)

    def _mid_round_decision(
        self, round_no: int, outgoing: List[Message], touched: Set[int]
    ) -> MidRoundDecision:
        mid = self.adversary.mid_round(self.view, outgoing)
        for pid in mid.crashes:
            if pid in touched:
                raise ValueError(
                    "process {} already crashed/restarted this round".format(pid)
                )
            if not self.shells[pid].alive:
                raise ValueError(
                    "cannot mid-round crash dead process {}".format(pid)
                )
        return mid

    def _crash(self, round_no: int, pid: int, mid_round: bool) -> None:
        self.shells[pid].crash()
        self._alive.discard(pid)
        self.event_log.record_crash(CrashEvent(pid, round_no, mid_round))
        for observer in self._dispatch["on_crash"]:
            observer.on_crash(round_no, pid, mid_round)

    def _restart(self, round_no: int, pid: int) -> None:
        self.shells[pid].restart(round_no)
        self._alive.add(pid)
        self.event_log.record_restart(RestartEvent(pid, round_no))
        for observer in self._dispatch["on_restart"]:
            observer.on_restart(round_no, pid)
