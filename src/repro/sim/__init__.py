"""Synchronous crash/restart simulation substrate (Section 2 of the paper)."""

from repro.sim.clock import BlockSchedule, RoundClock
from repro.sim.engine import AdversaryView, Engine, SimObserver
from repro.sim.events import (
    CrashEvent,
    EventLog,
    InjectEvent,
    MidRoundDecision,
    RestartEvent,
    RoundDecision,
)
from repro.sim.messages import (
    KnowledgeAtom,
    Message,
    ServiceTags,
    fragment_atom,
    plaintext_atom,
    reveals_of,
    total_size,
)
from repro.sim.metrics import MessageStats, RoundRecord
from repro.sim.network import DeliveryOutcome, Network
from repro.sim.process import NodeBehavior, ProcessShell
from repro.sim.rng import SeedSequence, derive_rng, derive_seed
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AdversaryView",
    "BlockSchedule",
    "CrashEvent",
    "DeliveryOutcome",
    "Engine",
    "EventLog",
    "InjectEvent",
    "KnowledgeAtom",
    "Message",
    "MessageStats",
    "MidRoundDecision",
    "Network",
    "NodeBehavior",
    "ProcessShell",
    "RestartEvent",
    "RoundClock",
    "RoundDecision",
    "RoundRecord",
    "SeedSequence",
    "ServiceTags",
    "SimObserver",
    "TraceEvent",
    "Tracer",
    "derive_rng",
    "derive_seed",
    "fragment_atom",
    "plaintext_atom",
    "reveals_of",
    "total_size",
]
