"""Round clock and block/iteration arithmetic.

The paper's CONGOS protocol divides time into *blocks* of ``dline/4`` rounds,
and each block into *iterations* of ``isqrt(dline) + 2`` rounds (Figures 3/4
and Section 4.2).  Blocks are globally aligned: every process derives the
current block from the global round counter, which is what allows a restarted
process (with no durable state) to rejoin the protocol at the next block
boundary.

This module centralises that arithmetic so the Proxy, GroupDistribution and
ConfidentialGossip services, as well as the analysis code, all agree on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BlockSchedule", "RoundClock"]


@dataclass(frozen=True)
class BlockSchedule:
    """Block/iteration timing derived from a trimmed deadline ``dline``.

    Attributes
    ----------
    dline:
        The trimmed, power-of-two deadline this schedule serves.
    block_len:
        ``dline // 4`` — the length of one block, in rounds.
    iteration_len:
        ``isqrt(dline) + 2`` — the length of one iteration, in rounds.
    iterations_per_block:
        How many whole iterations fit in a block.
    gossip_deadline:
        ``max(1, isqrt(dline))`` — deadline for GroupGossip shares inside
        an iteration.
    allgossip_deadline:
        ``max(1, block_len - 1)`` — deadline for the end-of-block AllGossip
        confirmation rumor.
    """

    dline: int

    def __post_init__(self) -> None:
        if self.dline < 4:
            raise ValueError("dline must be >= 4, got {}".format(self.dline))
        # The derived lengths are queried on every round of every service
        # instance; precompute them once instead of re-deriving per call.
        # (Plain attributes, not fields: the dataclass identity — eq/repr —
        # stays keyed on ``dline`` alone, and object.__setattr__ is the
        # frozen-dataclass idiom for init-time caches.)
        object.__setattr__(self, "block_len", self.dline // 4)
        object.__setattr__(self, "iteration_len", math.isqrt(self.dline) + 2)
        object.__setattr__(
            self, "iterations_per_block", self.block_len // self.iteration_len
        )
        object.__setattr__(
            self, "gossip_deadline", max(1, math.isqrt(self.dline))
        )
        object.__setattr__(
            self, "allgossip_deadline", max(1, self.block_len - 1)
        )

    def block_of(self, round_no: int) -> int:
        """The (global) block index containing ``round_no``."""
        return round_no // self.block_len

    def block_start(self, block: int) -> int:
        """First round of block ``block``."""
        return block * self.block_len

    def block_end(self, block: int) -> int:
        """Last round of block ``block``."""
        return (block + 1) * self.block_len - 1

    def round_in_block(self, round_no: int) -> int:
        """Offset of ``round_no`` within its block (0-based)."""
        return round_no % self.block_len

    def is_block_start(self, round_no: int) -> bool:
        return self.round_in_block(round_no) == 0

    def is_block_last_round(self, round_no: int) -> bool:
        return self.round_in_block(round_no) == self.block_len - 1

    def iteration_of(self, round_no: int) -> int:
        """Iteration index within the block, or -1 in the slack tail.

        Rounds beyond ``iterations_per_block * iteration_len`` in a block do
        not belong to any iteration; services idle (or let gossip tails
        drain) during the slack tail.
        """
        iteration = (round_no % self.block_len) // self.iteration_len
        if iteration >= self.iterations_per_block:
            return -1
        return iteration

    def round_in_iteration(self, round_no: int) -> int:
        """Offset of ``round_no`` within its iteration (0-based), or -1."""
        offset = round_no % self.block_len
        if offset // self.iteration_len >= self.iterations_per_block:
            return -1
        return offset % self.iteration_len

    def is_iteration_last_round(self, round_no: int) -> bool:
        position = self.round_in_iteration(round_no)
        return position == self.iteration_len - 1

    def describe(self, round_no: int) -> str:
        """A human-readable position string, for traces."""
        return "round={} block={} iter={} pos={}".format(
            round_no,
            self.block_of(round_no),
            self.iteration_of(round_no),
            self.round_in_iteration(round_no),
        )


class RoundClock:
    """The global synchronous round counter.

    Processes have access to a global clock (Section 2), which is how a
    restarted process re-synchronises with block boundaries.  The clock is
    owned by the engine; everything else holds a read-only reference.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError("start round must be non-negative")
        self._round = start

    @property
    def round(self) -> int:
        return self._round

    def advance(self) -> int:
        """Move to the next round and return the new round number."""
        self._round += 1
        return self._round

    def __repr__(self) -> str:
        return "RoundClock(round={})".format(self._round)
