"""Direct-send soak harness: the E16 reliability matrix.

E15 soaks the full pipeline; this module isolates the one stage E15
showed degrading fastest — rumors with deadline at or below
``direct_send_threshold``, which bypass proxy/GD/gossip and, at paper
parameters, get exactly one unacknowledged send (69.9% delivery at
drop=0.3).  The E16 matrix sweeps the ``direct`` scenario builder over a
drop × hardened grid: the ``hardened`` axis turns on the
ack/retransmit/k-copy layer (``CongosParams.preset("hardened")``), and
the payload reports delivery per cell so the before/after story is one
artifact — ``BENCH_e16_direct_matrix.json``.

Confidentiality is monitored fail-fast in every cell (the reliability
layer may add redundancy, never knowledge; its acks carry rumor ids and
acker pids only), and like E15 everything is deterministic: fault
schedules are seed-keyed, the sweep runs on the exec pool bit-identically
at any ``jobs``, and :func:`direct_payload` excludes wall-clock fields.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.sweeps import SweepResult, grid, sweep_congos
from repro.chaos.soak import _sum_faults, _sum_faults_by_stage
from repro.exec.cache import ResultCache
from repro.exec.progress import Progress

__all__ = ["BENCH_NAME", "direct_cells", "run_direct_soak", "direct_payload"]

BENCH_NAME = "e16_direct_matrix"


def direct_cells(
    drop: Sequence[float], hardened: Sequence[bool] = (False, True)
) -> List[Dict[str, object]]:
    """The reliability matrix: drop intensities × default/hardened."""
    return grid(drop=list(drop), hardened=[bool(flag) for flag in hardened])


def run_direct_soak(
    cells: Iterable[Mapping[str, object]],
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Progress] = None,
    **fixed: object,
) -> SweepResult:
    """Sweep the ``direct`` builder over the matrix on the exec pool."""
    return sweep_congos(
        "direct",
        cells,
        seeds=seeds,
        jobs=jobs,
        cache=cache,
        resume=resume,
        timeout=timeout,
        retries=retries,
        progress=progress,
        **fixed,
    )


def direct_payload(
    sweep: SweepResult, fixed: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The deterministic portion of the E16 artifact.

    Per cell: injected faults (total and by pipeline stage — all of them
    should land in the ``direct`` stage, that is the point of the
    scenario), delivery against admissible pairs, and the clean verdict.
    ``delivery_by_mode`` summarizes the tentpole claim: overall delivery
    of the default single-send rule vs the hardened reliability layer.
    """
    cells: List[Dict[str, object]] = []
    by_mode: Dict[str, List[int]] = {}
    for cell in sweep.cells:
        admissible = sum(run.admissible_pairs for run in cell.runs)
        missed = sum(run.missed for run in cell.runs)
        direct_pairs = sum(
            run.paths.get("direct", 0) for run in cell.runs
        )
        mode = "hardened" if cell.cell.get("hardened") else "default"
        totals = by_mode.setdefault(mode, [0, 0])
        totals[0] += admissible
        totals[1] += missed
        cells.append(
            {
                "cell": dict(cell.cell),
                "seeds": cell.seeds,
                "faults": _sum_faults(cell.runs),
                "faults_by_stage": _sum_faults_by_stage(cell.runs),
                "admissible_pairs": admissible,
                "missed": missed,
                "direct_pairs": direct_pairs,
                "delivery_rate": (
                    round((admissible - missed) / admissible, 6)
                    if admissible
                    else None
                ),
                "qod_satisfied": cell.all_satisfied(),
                "clean": cell.all_clean(),
                "peak": cell.peak_summary().as_dict(),
            }
        )
    all_runs = [run for cell in sweep.cells for run in cell.runs]
    return {
        "cells": cells,
        "all_clean": sweep.all_clean(),
        "delivery_by_mode": {
            mode: (
                round((admissible - missed) / admissible, 6)
                if admissible
                else None
            )
            for mode, (admissible, missed) in sorted(by_mode.items())
        },
        "total_faults": _sum_faults(all_runs),
        "total_faults_by_stage": _sum_faults_by_stage(all_runs),
    }
