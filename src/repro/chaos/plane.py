"""The pluggable fault plane.

:class:`FaultPlane` is the hook :class:`repro.sim.network.Network` calls
while routing a round's traffic.  The base class is the paper's reliable
network — it admits everything, holds nothing, and the network skips the
chaos branches entirely when no plane is installed, so default runs stay
bit-identical to the seed.

:class:`ChaosFaultPlane` implements the extended fault model: per-message
drop / bounded delay / duplication, per-inbox reordering, and scheduled
partition storms, every decision drawn from a
:class:`~repro.chaos.schedule.FaultSchedule`.  The plane composes with the
CRRI adversary rather than replacing it: adversarial drops at
crash/restart boundaries and crash-loss are applied by the network
*before* a message reaches the plane, so chaos only ever touches traffic
the paper's model would have delivered.

Semantics worth pinning down (tests rely on these):

* Delayed and duplicated copies mature through :meth:`release` and are
  only checked against crash-aliveness at the matured round — they are
  already past the link, so a partition that begins after the send does
  not retroactively sever them.
* A copy whose recipient is crashed at the matured round is lost (the
  network files it under ``lost_to_crash``).
* Fault events never carry payload bytes; telemetry records rumor ids
  via knowledge atoms only, so a chaos trace cannot leak ``z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.chaos.schedule import DELAY, DELIVER, DROP, DUPLICATE, FaultSchedule
from repro.chaos.spec import FaultSpec
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.messages import Message, ServiceTags, reveals_of

__all__ = [
    "FaultPlane",
    "ChaosFaultPlane",
    "FaultEvent",
    "SEVER",
    "message_rids",
    "pipeline_stage",
]

#: Extra fate (beyond the schedule's) for messages crossing a partition cut.
SEVER = "sever"

_FAULT_KINDS = (DROP, DELAY, DUPLICATE, SEVER, "reorder", "late_loss")

# Service tag -> CONGOS pipeline stage, for per-stage fault accounting
# (dashboards split faults by where in the pipeline they landed, not just
# by kind).  Both kinds of coordinator traffic — rumor-carrying shoots
# and the hardened layer's acks — belong to the direct stage.
_SERVICE_STAGES = {
    ServiceTags.PROXY: "proxy",
    ServiceTags.GROUP_DISTRIBUTION: "gd",
    ServiceTags.GROUP_GOSSIP: "gossip",
    ServiceTags.ALL_GOSSIP: "gossip",
    ServiceTags.CONFIDENTIAL: "direct",
    ServiceTags.DIRECT_ACK: "direct",
}


def pipeline_stage(service: str) -> str:
    """The pipeline stage a service tag accounts under."""
    return _SERVICE_STAGES.get(service, "other")


def message_rids(message: Message, limit: int = 8) -> List[str]:
    """Rumor ids referenced by ``message``, for fault attribution.

    Extraction goes through knowledge atoms (``reveals``) plus direct
    ``rid``/``rumor.rid`` attributes, never through payload bytes, so the
    result is safe to put in a telemetry event.
    """
    rids: Set[str] = set()
    for atom in reveals_of(message.payload):
        if len(atom) >= 2:
            rids.add(str(atom[1]))
    rid = getattr(message.payload, "rid", None)
    if rid is not None:
        rids.add(str(rid))
    rumor = getattr(message.payload, "rumor", None)
    if rumor is not None and getattr(rumor, "rid", None) is not None:
        rids.add(str(rumor.rid))
    return sorted(rids)[:limit]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for soak payloads and replay."""

    round_no: int
    kind: str  # drop | delay | duplicate | sever | reorder | late_loss
    src: int
    dst: int
    service: str
    detail: int = 0  # delay rounds, inbox size for reorder, 0 otherwise
    policy: str = ""  # targeted policy name; "" for oblivious faults

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "round": self.round_no,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "service": self.service,
            "detail": self.detail,
        }
        if self.policy:
            data["policy"] = self.policy
        return data


class FaultPlane:
    """Reliable base plane: every hook is the identity / a no-op.

    ``active`` lets the network skip per-message chaos work entirely on
    the default path; the base plane is never active.
    """

    def active_in(self, round_no: int) -> bool:
        return False

    def has_pending(self) -> bool:
        return False

    def pending_count(self) -> int:
        return 0

    def begin_round(self, round_no: int) -> None:
        pass

    def admit(self, round_no: int, message: Message) -> str:
        return DELIVER

    def release(self, round_no: int) -> List[Message]:
        return []

    def record_late_loss(self, round_no: int, message: Message) -> None:
        pass

    def shuffle_inboxes(
        self, round_no: int, inboxes: Dict[int, List[Message]]
    ) -> None:
        pass


class ChaosFaultPlane(FaultPlane):
    """Seed-keyed drop/delay/duplicate/reorder/partition injection."""

    def __init__(
        self,
        seed: int,
        spec: FaultSpec,
        n: int,
        telemetry: Any = None,
        keep_events: bool = True,
        max_events: int = 200_000,
        message_keyed: bool = False,
    ):
        self.spec = spec
        self.schedule = FaultSchedule(seed, spec, n)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.keep_events = keep_events
        self.max_events = max_events
        # Keyed mode (sharded backend, and inproc runs meant to compare
        # against it): fates come from per-message streams keyed on
        # (round, src, dst, copy) and inbox shuffles from per-recipient
        # streams, so the schedule is invariant under pid sharding.  The
        # default index-order mode is byte-identical to the seed.
        self.message_keyed = message_keyed
        self.counts: Dict[str, int] = {kind: 0 for kind in _FAULT_KINDS}
        # stage -> kind -> count (reorder is per-inbox, not per-message,
        # so it has no stage and is tracked in ``counts`` only).
        self.stage_counts: Dict[str, Dict[str, int]] = {}
        self.events: List[FaultEvent] = []
        # deliver_round -> copies matured that round, in queue order.
        # Index mode stores bare messages; keyed mode stores
        # (admit_round, message) so release order can be tagged.
        self._pending: Dict[int, List[Any]] = {}
        self._round_rng = None  # set by begin_round
        self._severed: Optional[frozenset] = None
        self._pair_counts: Dict[Tuple[int, int], int] = {}

    # -- state queries ---------------------------------------------------

    def active_in(self, round_no: int) -> bool:
        return self.spec.active_in(round_no)

    def has_pending(self) -> bool:
        return bool(self._pending)

    def pending_count(self) -> int:
        """Delayed/duplicated copies still queued for future rounds."""
        return sum(len(copies) for copies in self._pending.values())

    def counts_summary(self) -> Dict[str, int]:
        """Stable-keyed fault counts (zero entries included)."""
        return {kind: self.counts[kind] for kind in _FAULT_KINDS}

    def counts_by_service(self) -> Dict[str, Dict[str, int]]:
        """Fault counts split by pipeline stage (proxy/gd/gossip/direct).

        Only stages actually hit appear, with their kinds sorted — a
        deterministic nested dict ready for soak payloads and metrics.
        """
        return {
            stage: {kind: kinds[kind] for kind in sorted(kinds)}
            for stage, kinds in sorted(self.stage_counts.items())
        }

    # -- network hooks ---------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        if self.message_keyed:
            self._pair_counts = {}
        else:
            self._round_rng = self.schedule.round_rng(round_no)
        self._severed = self.schedule.severed(round_no)
        if self.telemetry.enabled:
            # Delay-queue depth entering the round, so delay-heavy soaks
            # can watch growth: the gauge tracks the live value, the
            # histogram keeps the whole profile (mean/p99/max survive
            # the final snapshot).
            pending = self.pending_count()
            metrics = self.telemetry.metrics
            metrics.gauge("chaos.pending").set(pending)
            metrics.histogram("chaos.pending_depth").observe(pending)

    def admit(self, round_no: int, message: Message) -> str:
        """Decide the fate of one in-flight message.

        Returns the fate tag; ``DELAY``/``DUPLICATE`` copies are queued
        internally and surface later through :meth:`release`.
        """
        severed = self._severed
        if severed is not None and (
            (message.src in severed) != (message.dst in severed)
        ):
            self._record(round_no, SEVER, message)
            return SEVER
        return self._schedule_admit(round_no, message)

    def _schedule_admit(self, round_no: int, message: Message) -> str:
        """The post-sever fate draw (subclasses compose around this)."""
        if self.message_keyed:
            pair = (message.src, message.dst)
            copy = self._pair_counts.get(pair, 0)
            self._pair_counts[pair] = copy + 1
            fate, hold = self.schedule.message_fate(
                round_no, message.src, message.dst, copy
            )
        else:
            fate, hold = self.schedule.decide(self._round_rng)
        if fate == DROP:
            self._record(round_no, DROP, message)
            return DROP
        if fate == DELAY:
            self._queue(round_no, round_no + hold, message)
            self._record(round_no, DELAY, message, detail=hold)
            return DELAY
        if fate == DUPLICATE:
            self._queue(round_no, round_no + hold, message)
            self._record(round_no, DUPLICATE, message, detail=hold)
            return DUPLICATE
        return DELIVER

    def _queue(
        self, admit_round: int, deliver_round: int, message: Message
    ) -> None:
        copy = (admit_round, message) if self.message_keyed else message
        self._pending.setdefault(deliver_round, []).append(copy)

    def release(self, round_no: int) -> List[Message]:
        """Messages queued in earlier rounds that mature now."""
        matured = self._pending.pop(round_no, [])
        if self.message_keyed:
            return [message for _, message in matured]
        return matured

    def release_tagged(self, round_no: int) -> List[Tuple[int, Message]]:
        """Keyed mode only: matured copies as (admit_round, message).

        The sharded worker uses the admit round to reconstruct the
        global delivered order the coordinator feeds its auditors.
        """
        if not self.message_keyed:
            raise RuntimeError("release_tagged requires message_keyed mode")
        return self._pending.pop(round_no, [])

    def record_late_loss(self, round_no: int, message: Message) -> None:
        """A matured copy whose recipient is crashed — counted as a fault
        consequence so soak reports can attribute the loss."""
        self._record(round_no, "late_loss", message)

    def shuffle_inboxes(
        self, round_no: int, inboxes: Dict[int, List[Message]]
    ) -> None:
        if self.spec.reorder <= 0.0 or not inboxes:
            return
        rng = None
        if not self.message_keyed:
            rng = self.schedule.reorder_rng(round_no)
        for dst in sorted(inboxes):
            inbox = inboxes[dst]
            if self.message_keyed:
                # One stream per recipient: a worker hosting any subset
                # of pids draws exactly the same shuffles for each.
                rng = self.schedule.dst_reorder_rng(round_no, dst)
            if len(inbox) > 1 and rng.random() < self.spec.reorder:
                rng.shuffle(inbox)
                self.counts["reorder"] += 1
                if self.keep_events and len(self.events) < self.max_events:
                    self.events.append(
                        FaultEvent(round_no, "reorder", -1, dst, "*", len(inbox))
                    )
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        "fault_reorder", round_no, dst=dst, inbox=len(inbox)
                    )

    # -- internals -------------------------------------------------------

    def _record(
        self,
        round_no: int,
        kind: str,
        message: Message,
        detail: int = 0,
        policy: Optional[str] = None,
        budget_spent: Optional[int] = None,
    ) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        stage = pipeline_stage(message.service)
        kinds = self.stage_counts.setdefault(stage, {})
        kinds[kind] = kinds.get(kind, 0) + 1
        if self.keep_events and len(self.events) < self.max_events:
            self.events.append(
                FaultEvent(
                    round_no,
                    kind,
                    message.src,
                    message.dst,
                    message.service,
                    detail,
                    policy or "",
                )
            )
        if self.telemetry.enabled:
            labels = {"kind": kind, "stage": stage}
            fields: Dict[str, Any] = {
                "src": message.src,
                "dst": message.dst,
                "service": message.service,
                "detail": detail,
                "rids": message_rids(message),
            }
            if policy is not None:
                # Targeted faults carry their attribution: which policy
                # spent the budget unit and the ledger level after it.
                labels["policy"] = policy
                fields["policy"] = policy
                fields["budget_spent"] = budget_spent
            self.telemetry.metrics.counter("chaos.faults", **labels).inc()
            self.telemetry.emit("fault_" + kind, round_no, **fields)
