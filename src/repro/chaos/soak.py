"""Chaos soak harness: fault-intensity matrices on the exec pool.

A soak run sweeps the ``chaos`` scenario builder over a drop × delay
intensity grid (with duplicate/reorder/partition/churn knobs held fixed
across the matrix), replicates every cell across seeds, and aggregates
what the robustness story cares about: how much was injected (fault
counts per kind), what survived (delivery rate against admissible
pairs), what it cost (fallback escalations, message peak), and the one
invariant that must *never* bend — confidentiality stays clean at every
intensity.

Everything here is deterministic: the fault schedule is keyed on each
run's scenario seed (see :class:`~repro.chaos.schedule.FaultSchedule`),
the sweep runs on the :mod:`repro.exec` pool whose records are
bit-identical at any ``jobs`` setting, and :func:`soak_payload` excludes
wall-clock/profiling fields — the CLI attaches those separately, mirroring
the ``sweep_payload`` / ``profile`` split in :mod:`repro.exec.bench_io`.
The artifact is ``BENCH_e15_chaos_matrix.json``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.sweeps import SweepResult, grid, sweep_congos
from repro.chaos.spec import FaultSpec
from repro.exec.cache import ResultCache
from repro.exec.progress import Progress

__all__ = ["BENCH_NAME", "chaos_cells", "run_soak", "soak_payload"]

BENCH_NAME = "e15_chaos_matrix"

_SPEC_FIELDS = frozenset(f.name for f in dataclass_fields(FaultSpec))


def chaos_cells(
    drop: Sequence[float], delay: Sequence[float]
) -> List[Dict[str, object]]:
    """The intensity matrix: cartesian product of drop and delay axes."""
    return grid(drop=list(drop), delay=list(delay))


def cell_spec(
    cell: Mapping[str, object], fixed: Optional[Mapping[str, object]] = None
) -> FaultSpec:
    """The :class:`FaultSpec` a matrix cell runs under (cell overrides
    fixed; non-spec sweep kwargs like ``rounds`` are ignored)."""
    merged: Dict[str, object] = {}
    for source in (fixed or {}), cell:
        for key, value in source.items():
            if key in _SPEC_FIELDS:
                merged[key] = value
    return FaultSpec(**merged)  # type: ignore[arg-type]


def run_soak(
    cells: Iterable[Mapping[str, object]],
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Progress] = None,
    builder: str = "chaos",
    **fixed: object,
) -> SweepResult:
    """Sweep a chaos-family builder over the matrix on the exec pool.

    ``builder`` defaults to the oblivious ``chaos`` scenario;
    ``chaos-soak --policy`` passes ``"targeted"`` to layer a budgeted
    rumor-aware policy (:mod:`repro.chaos.targeted`) over the same
    drop x delay matrix.
    """
    return sweep_congos(
        builder,
        cells,
        seeds=seeds,
        jobs=jobs,
        cache=cache,
        resume=resume,
        timeout=timeout,
        retries=retries,
        progress=progress,
        **fixed,
    )


def _sum_faults(runs) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for run in runs:
        for kind, count in run.faults.items():
            totals[kind] = totals.get(kind, 0) + count
    return {kind: totals[kind] for kind in sorted(totals)}


def _sum_faults_by_stage(runs) -> Dict[str, Dict[str, int]]:
    totals: Dict[str, Dict[str, int]] = {}
    for run in runs:
        for stage, kinds in run.faults_by_stage.items():
            bucket = totals.setdefault(stage, {})
            for kind, count in kinds.items():
                bucket[kind] = bucket.get(kind, 0) + count
    return {
        stage: {kind: kinds[kind] for kind in sorted(kinds)}
        for stage, kinds in sorted(totals.items())
    }


def soak_payload(
    sweep: SweepResult, fixed: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The deterministic portion of the E15 artifact.

    Same seed set and matrix => byte-identical payload at any ``jobs``
    setting; callers add nondeterministic timing/profile keys on top.
    """
    cells: List[Dict[str, object]] = []
    for cell in sweep.cells:
        spec = cell_spec(cell.cell, fixed)
        admissible = sum(run.admissible_pairs for run in cell.runs)
        missed = sum(run.missed for run in cell.runs)
        peak = cell.peak_summary()
        cells.append(
            {
                "cell": dict(cell.cell),
                "intensity": spec.intensity(),
                "seeds": cell.seeds,
                "faults": _sum_faults(cell.runs),
                "faults_by_stage": _sum_faults_by_stage(cell.runs),
                "admissible_pairs": admissible,
                "missed": missed,
                "delivery_rate": (
                    round((admissible - missed) / admissible, 6)
                    if admissible
                    else None
                ),
                "qod_satisfied": cell.all_satisfied(),
                "fallback_rate": round(cell.fallback_rate(), 6),
                "clean": cell.all_clean(),
                "peak": peak.as_dict(),
            }
        )
    all_runs = [run for cell in sweep.cells for run in cell.runs]
    return {
        "cells": cells,
        "all_clean": sweep.all_clean(),
        "all_satisfied": sweep.all_satisfied(),
        "total_faults": _sum_faults(all_runs),
        "total_faults_by_stage": _sum_faults_by_stage(all_runs),
    }
