"""Targeted chaos adversaries: budgeted, rumor-aware fault policies.

The oblivious :class:`~repro.chaos.plane.ChaosFaultPlane` draws i.i.d.
fates; E17b showed that axis has no QoD cliff up to drop=0.5.  The
paper's lower bounds (and Lemma 4's fallback argument) are stated
against a *targeted* adversary — one that tracks a specific rumor's
carriers — so this module supplies that worst case as a policy layer
composing with the oblivious plane:

* A :class:`TargetedFaultPolicy` observes **leak-safe routing metadata
  only** — rumor ids (via :func:`~repro.chaos.plane.message_rids`),
  service tag / pipeline stage, src, dst, and injection announcements
  (rid + deadline).  It never sees payload bytes, destination sets, or
  node internals, matching the observer model of the related privacy
  work (arXiv:2308.02477, arXiv:1905.07598).
* Every fault it injects spends from a finite, explicitly-accounted
  :class:`BudgetLedger`.  Budgets are **per destination** (at most
  ``per_round`` faults toward any one destination per round, ``total``
  over the run) — a "link saboteur" stationed on each process's inbound
  edges.  Per-destination accounting is deliberately the strongest model
  that stays shard-invariant: a destination's admitted-message sequence
  is identical under any shard layout (workers sort on ``(src, seq)``),
  whereas a globally-sequential budget would depend on the interleaving
  of destinations across workers.
* Decisions are pure functions of ``(round, src, dst, service, rids)``
  plus ledger/tracking state; the only randomness — delay hold lengths —
  comes from dedicated seed-keyed streams
  (``derive_rng(seed, "chaos", "targeted", round, src, dst, copy)``),
  so runs are deterministic, ``--jobs``-invariant, and identical across
  the inproc and sharded backends.
* Everything is inert by default: no scenario opts in, no policy runs,
  and the golden payload digests hold.

``blind=True`` switches a policy into its rumor-blind variant: the same
stage/window shape and the same ledger, but every live rumor is a
target.  That is the matched-budget *oblivious* baseline the E19 matrix
compares against — same spend, only the concentration differs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.chaos.plane import (
    ChaosFaultPlane,
    message_rids,
    pipeline_stage,
)
from repro.chaos.schedule import DELAY, DELIVER, DROP
from repro.chaos.spec import FaultSpec
from repro.sim.messages import Message, ServiceTags
from repro.sim.rng import derive_rng

__all__ = [
    "TargetedSpec",
    "BudgetLedger",
    "TargetedFaultPolicy",
    "ProxySuppressor",
    "CollectorStarver",
    "DeadlineChaser",
    "FallbackHerder",
    "TargetedFaultPlane",
    "POLICIES",
    "policy_names",
    "get_policy",
    "BENCH_NAME",
    "targeted_cells",
    "run_targeted_soak",
    "targeted_payload",
]


@dataclass(frozen=True)
class TargetedSpec:
    """Plain-data description of one targeted adversary.

    Like :class:`~repro.chaos.spec.FaultSpec` this contains no state and
    no randomness — it rides inside RunSpec kwargs as a JSON dict.

    Attributes
    ----------
    policy:
        Registry name of the :class:`TargetedFaultPolicy` to run.
    per_round:
        Fault budget per destination per round.
    total:
        Fault budget per destination over the whole run.
    kind:
        What a spent budget unit does: ``"drop"`` (silent loss) or
        ``"delay"`` (hold the copy ``1..hold`` rounds).
    hold:
        Upper bound on injected delays, in rounds (``kind="delay"``).
    window:
        Deadline-chaser only: grace rounds after injection before the
        chase starts; from then until the deadline every referencing
        message is attacked.
    blind:
        Rumor-blind variant — the matched-budget oblivious baseline.
        Same stage/window shape and ledger, but every live rumor is a
        target instead of one tracked rid.
    track_src:
        Only track rumors injected by this pid (``None`` = any source).
    retarget:
        Re-arm on the next injection once the tracked rumor's deadline
        passes, so long soaks keep sustained pressure; ``False`` tracks
        a single rumor for the whole run.
    start_round / stop_round:
        The window in which the targeted layer is active.
    """

    policy: str = "proxy-suppressor"
    per_round: int = 4
    total: int = 64
    kind: str = "drop"
    hold: int = 4
    window: int = 8
    blind: bool = False
    track_src: Optional[int] = None
    retarget: bool = True
    start_round: int = 0
    stop_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                "unknown targeted policy {!r}; registered: {}".format(
                    self.policy, ", ".join(policy_names())
                )
            )
        if self.kind not in (DROP, DELAY):
            raise ValueError(
                "kind must be 'drop' or 'delay', got {!r}".format(self.kind)
            )
        if self.per_round < 1 or self.total < 1:
            raise ValueError("budgets must be at least 1")
        if self.hold < 1:
            raise ValueError("hold must be >= 1 round")
        if self.window < 1:
            raise ValueError("window must be >= 1 round")
        if self.start_round < 0:
            raise ValueError("start_round must be non-negative")
        if self.stop_round is not None and self.stop_round <= self.start_round:
            raise ValueError("stop_round must be after start_round")

    def active_in(self, round_no: int) -> bool:
        if round_no < self.start_round:
            return False
        return self.stop_round is None or round_no < self.stop_round

    # -- JSON round-trip (RunSpec kwargs, BENCH payloads) ----------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TargetedSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown TargetedSpec fields: {}".format(sorted(unknown))
            )
        return cls(**dict(data))  # type: ignore[arg-type]


class BudgetLedger:
    """Exact per-destination fault accounting.

    ``try_spend`` is the only mutation path, so ``spent`` always equals
    the number of targeted fault events recorded — the E19 validator
    asserts that identity per run.  Per-destination caps (not a global
    sequential counter) keep every decision a pure function of the
    destination's own admitted-message sequence, which is what makes the
    ledger identical across the inproc and sharded backends.
    """

    def __init__(self, per_round: int, total: int):
        self.per_round = per_round
        self.total = total
        self.spent = 0
        self.denied = 0
        self.spent_by_kind: Dict[str, int] = {}
        self.max_round_spend = 0  # worst per-destination spend in a round
        self.max_dst_spend = 0  # worst per-destination spend over the run
        self._round_spent: Dict[int, int] = {}
        self._dst_spent: Dict[int, int] = {}
        self._merged_destinations = 0

    def begin_round(self, round_no: int) -> None:
        self._round_spent = {}

    def try_spend(self, dst: int, kind: str) -> bool:
        """Spend one budget unit toward ``dst``, or refuse (cap hit)."""
        in_round = self._round_spent.get(dst, 0)
        in_run = self._dst_spent.get(dst, 0)
        if in_round >= self.per_round or in_run >= self.total:
            self.denied += 1
            return False
        self._round_spent[dst] = in_round + 1
        self._dst_spent[dst] = in_run + 1
        self.spent += 1
        self.spent_by_kind[kind] = self.spent_by_kind.get(kind, 0) + 1
        if in_round + 1 > self.max_round_spend:
            self.max_round_spend = in_round + 1
        if in_run + 1 > self.max_dst_spend:
            self.max_dst_spend = in_run + 1
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "per_round": self.per_round,
            "total": self.total,
            "spent": self.spent,
            "denied": self.denied,
            "by_kind": {
                kind: self.spent_by_kind[kind]
                for kind in sorted(self.spent_by_kind)
            },
            "max_round_spend": self.max_round_spend,
            "max_dst_spend": self.max_dst_spend,
            "destinations": len(self._dst_spent) + self._merged_destinations,
        }

    def merge(self, data: Mapping[str, object]) -> None:
        """Fold a worker's ledger summary in (sharded coordinator mirror).

        Destination sets are disjoint across workers (each pid is owned
        by exactly one), so sums and maxes are exact.
        """
        self.spent += data["spent"]  # type: ignore[operator]
        self.denied += data["denied"]  # type: ignore[operator]
        for kind, count in data["by_kind"].items():  # type: ignore[union-attr]
            self.spent_by_kind[kind] = self.spent_by_kind.get(kind, 0) + count
        self.max_round_spend = max(
            self.max_round_spend, data["max_round_spend"]  # type: ignore[arg-type]
        )
        self.max_dst_spend = max(
            self.max_dst_spend, data["max_dst_spend"]  # type: ignore[arg-type]
        )
        # Distinct destinations spent against; disjoint pid ownership
        # across workers makes the plain sum exact.
        self._merged_destinations += int(data["destinations"])  # type: ignore[arg-type]


class TargetedFaultPolicy:
    """Base policy: rumor tracking plus the subclass ``wants`` hook.

    Tracking state evolves only through :meth:`observe_injection` (rid +
    deadline announcements, identical on every backend) and round
    numbers, so policy decisions are shard-invariant by construction.
    """

    name = "?"
    #: Pipeline stages this policy attacks ("*" = any); subclasses narrow.
    stages: Tuple[str, ...] = ("*",)

    def __init__(self, spec: TargetedSpec, seed: int, n: int):
        self.spec = spec
        self.seed = seed
        self.n = n
        # rid -> (inject_round, expiry_round).  Non-blind mode keeps at
        # most one live entry (the tracked rumor); blind mode keeps every
        # live rumor.
        self.targets: Dict[str, Tuple[int, int]] = {}
        self.tracked: Optional[str] = None
        self.tracked_expiry = -1
        self.tracked_rids: List[str] = []
        self.targets_seen = 0

    def observe_injection(
        self, round_no: int, src: int, seq: int, deadline: int
    ) -> None:
        """An injection announcement: rid coordinates and deadline only."""
        rid = "r{}:{}".format(src, seq)
        expiry = round_no + deadline
        if self.spec.blind:
            if rid not in self.targets:
                self.targets_seen += 1
            self.targets[rid] = (round_no, expiry)
            return
        if self.spec.track_src is not None and src != self.spec.track_src:
            return
        if self.tracked is not None:
            if not self.spec.retarget:
                return
            if round_no <= self.tracked_expiry:
                return  # still chasing a live rumor
        self.tracked = rid
        self.tracked_expiry = expiry
        self.targets = {rid: (round_no, expiry)}
        self.tracked_rids.append(rid)
        self.targets_seen += 1

    def begin_round(self, round_no: int) -> None:
        if self.spec.blind and self.targets:
            expired = [
                rid
                for rid, (_, expiry) in self.targets.items()
                if round_no > expiry
            ]
            for rid in expired:
                del self.targets[rid]

    def live_hits(self, round_no: int, rids: Sequence[str]) -> List[str]:
        """The referenced rids that are live targets this round."""
        targets = self.targets
        return [
            rid
            for rid in rids
            if rid in targets and round_no <= targets[rid][1]
        ]

    def wants(
        self,
        round_no: int,
        src: int,
        dst: int,
        service: str,
        stage: str,
        rids: Sequence[str],
    ) -> bool:
        """Whether this message is worth a budget unit (subclass hook)."""
        raise NotImplementedError


class ProxySuppressor(TargetedFaultPolicy):
    """Drop proxy-bound fragments of the tracked rid.

    The proxy stage is where a rumor's fragments first leave the source
    (Figure 5 lines 9-13); suppressing it attacks the *entry* of the
    pipeline — the premise of Lemma 8's proxy-uptime requirement and the
    adaptive proxy-killer of Section 1, but at message granularity
    instead of crashing processes.
    """

    name = "proxy-suppressor"
    stages = ("proxy",)

    def wants(self, round_no, src, dst, service, stage, rids):
        return stage == "proxy" and bool(self.live_hits(round_no, rids))


class CollectorStarver(TargetedFaultPolicy):
    """Starve the collection half of the pipeline (GD + gossip).

    After proxies fan fragments out, group distribution and gossip are
    how destinations *collect* enough fragments to reassemble — the
    coverage argument of Lemmas 5/6.  Dropping tracked-rid traffic in
    those stages attacks reassembly without ever learning who the
    destinations are.
    """

    name = "collector-starver"
    stages = ("gd", "gossip")

    def wants(self, round_no, src, dst, service, stage, rids):
        return stage in ("gd", "gossip") and bool(
            self.live_hits(round_no, rids)
        )


class DeadlineChaser(TargetedFaultPolicy):
    """Chase the tracked rumor from mid-flight to its deadline.

    Early fragments are cheap for the adversary to waste budget on —
    the pipeline's fan-out replaces them for free.  The chaser sits out
    a ``window``-round grace period after injection, then drops *every*
    message referencing the tracked rid until its deadline: the late
    collection hops, stragglers, retransmits and the Lemma 4 fallback
    shoot itself, exactly the traffic whose loss cannot be re-fanned
    before the deadline.  Any stage qualifies once the chase is on.
    """

    name = "deadline-chaser"
    stages = ("*",)

    def wants(self, round_no, src, dst, service, stage, rids):
        targets = self.targets
        grace = self.spec.window
        for rid in rids:
            entry = targets.get(rid)
            if entry is not None and entry[0] + grace <= round_no <= entry[1]:
                return True
        return False


class FallbackHerder(TargetedFaultPolicy):
    """Drop ``DIRECT_ACK``\\ s to stress the retransmit machinery.

    The PR 4 reliability layer stops retransmitting when acks arrive;
    eating the tracked rumor's acks (control metadata — rid + acker pid,
    never payload) forces the source through its full backoff schedule,
    trading message complexity for delivery.  Meaningful on short
    deadlines (the direct-send path) under the ``hardened`` preset —
    at paper defaults there are no acks to eat and the policy spends 0.
    """

    name = "fallback-herder"
    stages = ("direct",)

    def wants(self, round_no, src, dst, service, stage, rids):
        return service == ServiceTags.DIRECT_ACK and bool(
            self.live_hits(round_no, rids)
        )


POLICIES: Dict[str, Type[TargetedFaultPolicy]] = {
    policy.name: policy
    for policy in (
        ProxySuppressor,
        CollectorStarver,
        DeadlineChaser,
        FallbackHerder,
    )
}


def policy_names() -> List[str]:
    return sorted(POLICIES)


def get_policy(name: str) -> Type[TargetedFaultPolicy]:
    try:
        return POLICIES[name]
    except KeyError:
        raise KeyError(
            "unknown targeted policy {!r}; registered: {}".format(
                name, ", ".join(policy_names())
            )
        ) from None


class TargetedFaultPlane(ChaosFaultPlane):
    """The composed plane: targeted policy first, oblivious schedule after.

    Per-message order of precedence mirrors the base plane's semantics:
    partition sever, then the targeted policy (budget permitting), then
    the oblivious schedule's fate draw.  A null oblivious spec skips the
    schedule entirely, so a pure targeted run burns no oblivious rng.
    """

    def __init__(
        self,
        seed: int,
        spec: FaultSpec,
        targeted: TargetedSpec,
        n: int,
        telemetry=None,
        keep_events: bool = True,
        max_events: int = 200_000,
        message_keyed: bool = False,
    ):
        super().__init__(
            seed,
            spec,
            n,
            telemetry=telemetry,
            keep_events=keep_events,
            max_events=max_events,
            message_keyed=message_keyed,
        )
        self.targeted = targeted
        self.policy = get_policy(targeted.policy)(targeted, seed, n)
        self.ledger = BudgetLedger(targeted.per_round, targeted.total)
        self.targeted_counts: Dict[str, int] = {}
        self._oblivious_null = spec.is_null()
        self._targeted_pair_counts: Dict[Tuple[int, int], int] = {}

    # -- adversary view ---------------------------------------------------

    def observe_injection(
        self, round_no: int, src: int, seq: int, deadline: int
    ) -> None:
        """Leak-safe injection announcement (rid coordinates + deadline).

        Fed by an engine observer on the inproc backend and by the
        coordinator's round-frame broadcast on the sharded one, so every
        worker's policy tracks identically.
        """
        self.policy.observe_injection(round_no, src, seq, deadline)

    # -- network hooks ----------------------------------------------------

    def active_in(self, round_no: int) -> bool:
        return self.targeted.active_in(round_no) or super().active_in(round_no)

    def begin_round(self, round_no: int) -> None:
        super().begin_round(round_no)
        self._targeted_pair_counts = {}
        self.policy.begin_round(round_no)
        self.ledger.begin_round(round_no)

    def admit(self, round_no: int, message: Message) -> str:
        severed = self._severed
        if severed is not None and (
            (message.src in severed) != (message.dst in severed)
        ):
            self._record(round_no, "sever", message)
            return "sever"
        fate = self._targeted_admit(round_no, message)
        if fate is not None:
            return fate
        # Fall through to the oblivious schedule, honoring its own
        # active window (outside it the base network would not have
        # consulted the plane at all).
        if self._oblivious_null or not self.spec.active_in(round_no):
            return DELIVER
        return self._schedule_admit(round_no, message)

    def _targeted_admit(self, round_no: int, message: Message) -> Optional[str]:
        if not self.targeted.active_in(round_no):
            return None
        rids = message_rids(message)
        if not self.policy.wants(
            round_no,
            message.src,
            message.dst,
            message.service,
            pipeline_stage(message.service),
            rids,
        ):
            return None
        kind = self.targeted.kind
        if not self.ledger.try_spend(message.dst, kind):
            return None
        policy = self.targeted.policy
        if kind == DROP:
            self._count_targeted(DROP)
            self._record(
                round_no,
                DROP,
                message,
                policy=policy,
                budget_spent=self.ledger.spent,
            )
            return DROP
        # Delay holds are the policy layer's only randomness; they come
        # from a dedicated stream keyed on the message's own coordinates
        # (same derivation shape as FaultSchedule.message_rng), so the
        # draw is identical on every backend and at any --jobs.
        pair = (message.src, message.dst)
        copy = self._targeted_pair_counts.get(pair, 0)
        self._targeted_pair_counts[pair] = copy + 1
        rng = derive_rng(
            self.schedule.master_seed,
            "chaos",
            "targeted",
            round_no,
            message.src,
            message.dst,
            copy,
        )
        hold = rng.randint(1, self.targeted.hold)
        self._queue(round_no, round_no + hold, message)
        self._count_targeted(DELAY)
        self._record(
            round_no,
            DELAY,
            message,
            detail=hold,
            policy=policy,
            budget_spent=self.ledger.spent,
        )
        return DELAY

    def _count_targeted(self, kind: str) -> None:
        self.targeted_counts[kind] = self.targeted_counts.get(kind, 0) + 1

    # -- reporting --------------------------------------------------------

    def targeted_summary(self) -> Dict[str, object]:
        """The policy/budget extract RunRecord and BENCH payloads carry."""
        return {
            "policy": self.targeted.policy,
            "blind": self.targeted.blind,
            "kind": self.targeted.kind,
            "counts": {
                kind: self.targeted_counts[kind]
                for kind in sorted(self.targeted_counts)
            },
            "tracked": list(self.policy.tracked_rids),
            "targets_seen": self.policy.targets_seen,
            "budget": self.ledger.as_dict(),
        }

    def merge_targeted(self, data: Mapping[str, object]) -> None:
        """Fold a worker's targeted summary in (coordinator mirror).

        Tracking state ("tracked"/"targets_seen") is identical on every
        worker and maintained coordinator-side via
        :meth:`observe_injection`, so only counts and the ledger merge.
        """
        for kind, count in data["counts"].items():  # type: ignore[union-attr]
            self.targeted_counts[kind] = (
                self.targeted_counts.get(kind, 0) + count
            )
        self.ledger.merge(data["budget"])  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# E19: the targeted worst-case matrix
# ----------------------------------------------------------------------
#
# Sweeps policy x budget x n over the "targeted" scenario builder on the
# exec pool, with each targeted cell paired against its rumor-blind
# variant at the *same* ledger (the matched-budget oblivious baseline)
# and the hardened preset on a separate axis.  The payload follows the
# E15/E16 split: deterministic portion here, wall-clock profile attached
# by the CLI.

BENCH_NAME = "e19_targeted_matrix"


def targeted_cells(
    policies: Sequence[str],
    budgets: Sequence[Tuple[int, int]],
    ns: Sequence[int],
    hardened: Sequence[bool] = (False, True),
    blind: Sequence[bool] = (False, True),
) -> List[Dict[str, object]]:
    """The E19 matrix: policy x (per_round, total) x n x preset x blind."""
    # Lazy: analysis.sweeps imports the scenario registry, which imports
    # this module for TargetedSpec — only the E19 entry points need it.
    from repro.analysis.sweeps import grid

    cells: List[Dict[str, object]] = []
    for per_round, total in budgets:
        cells.extend(
            grid(
                policy=list(policies),
                per_round=[int(per_round)],
                total=[int(total)],
                n=[int(n) for n in ns],
                hardened=[bool(flag) for flag in hardened],
                blind=[bool(flag) for flag in blind],
            )
        )
    return cells


def run_targeted_soak(
    cells,
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache=None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    **fixed: object,
):
    """Sweep the ``targeted`` builder over the matrix on the exec pool."""
    from repro.analysis.sweeps import sweep_congos

    return sweep_congos(
        "targeted",
        cells,
        seeds=seeds,
        jobs=jobs,
        cache=cache,
        resume=resume,
        timeout=timeout,
        retries=retries,
        progress=progress,
        **fixed,
    )


def _ledger_ok(record) -> bool:
    """Exact budget accounting for one run: spent == events, caps held."""
    targeted = record.targeted
    if not targeted:
        return False
    budget = targeted["budget"]
    spent_events = sum(targeted["counts"].values())
    return (
        budget["spent"] == spent_events
        and sum(budget["by_kind"].values()) == budget["spent"]
        and budget["max_round_spend"] <= budget["per_round"]
        and budget["max_dst_spend"] <= budget["total"]
    )


def targeted_payload(
    sweep, fixed: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The deterministic portion of the E19 artifact.

    Per cell: fault totals, the merged budget ledger with its exact-
    accounting verdict, tracked-rumor delivery, and the usual QoD /
    confidentiality / fallback numbers.  ``comparisons`` pairs every
    targeted cell with its blind twin at the same (policy, budget, n,
    preset) — the matched-budget oblivious baseline — reporting the
    delivery and fallback-rate deltas the tentpole claim rests on.
    """
    from repro.chaos.soak import _sum_faults, _sum_faults_by_stage

    cells: List[Dict[str, object]] = []
    by_key: Dict[Tuple, Dict[bool, Dict[str, object]]] = {}
    all_ledgers_ok = True
    for cell in sweep.cells:
        admissible = sum(run.admissible_pairs for run in cell.runs)
        missed = sum(run.missed for run in cell.runs)
        spent = sum(
            run.targeted.get("budget", {}).get("spent", 0) for run in cell.runs
        )
        denied = sum(
            run.targeted.get("budget", {}).get("denied", 0)
            for run in cell.runs
        )
        tracked_admissible = sum(
            run.targeted.get("tracked_admissible", 0) for run in cell.runs
        )
        tracked_missed = sum(
            run.targeted.get("tracked_missed", 0) for run in cell.runs
        )
        ledger_ok = all(_ledger_ok(run) for run in cell.runs)
        all_ledgers_ok = all_ledgers_ok and ledger_ok
        delivery = (
            round((admissible - missed) / admissible, 6) if admissible else None
        )
        tracked_delivery = (
            round((tracked_admissible - tracked_missed) / tracked_admissible, 6)
            if tracked_admissible
            else None
        )
        entry = {
            "cell": dict(cell.cell),
            "seeds": cell.seeds,
            "faults": _sum_faults(cell.runs),
            "faults_by_stage": _sum_faults_by_stage(cell.runs),
            "budget_spent": spent,
            "budget_denied": denied,
            "ledger_ok": ledger_ok,
            "admissible_pairs": admissible,
            "missed": missed,
            "delivery_rate": delivery,
            "tracked_admissible": tracked_admissible,
            "tracked_missed": tracked_missed,
            "tracked_delivery_rate": tracked_delivery,
            "qod_satisfied": cell.all_satisfied(),
            "fallback_rate": round(cell.fallback_rate(), 6),
            "clean": cell.all_clean(),
            "peak": cell.peak_summary().as_dict(),
        }
        cells.append(entry)
        key = tuple(
            cell.cell.get(axis)
            for axis in ("policy", "per_round", "total", "n", "hardened")
        )
        by_key.setdefault(key, {})[bool(cell.cell.get("blind"))] = entry

    comparisons: List[Dict[str, object]] = []
    for key in sorted(by_key, key=str):
        pair = by_key[key]
        if True not in pair or False not in pair:
            continue
        targeted, oblivious = pair[False], pair[True]
        policy, per_round, total, n, hardened = key
        t_rate = targeted["delivery_rate"]
        o_rate = oblivious["delivery_rate"]
        comparisons.append(
            {
                "policy": policy,
                "per_round": per_round,
                "total": total,
                "n": n,
                "hardened": hardened,
                "targeted_delivery": t_rate,
                "oblivious_delivery": o_rate,
                "delivery_delta": (
                    round(t_rate - o_rate, 6)
                    if t_rate is not None and o_rate is not None
                    else None
                ),
                "targeted_tracked_delivery": targeted[
                    "tracked_delivery_rate"
                ],
                "targeted_spent": targeted["budget_spent"],
                "oblivious_spent": oblivious["budget_spent"],
                "targeted_fallback_rate": targeted["fallback_rate"],
                "oblivious_fallback_rate": oblivious["fallback_rate"],
            }
        )

    all_runs = [run for cell in sweep.cells for run in cell.runs]
    return {
        "cells": cells,
        "comparisons": comparisons,
        "all_clean": sweep.all_clean(),
        "all_ledgers_ok": all_ledgers_ok,
        "total_faults": _sum_faults(all_runs),
        "total_faults_by_stage": _sum_faults_by_stage(all_runs),
        "total_budget_spent": sum(
            run.targeted.get("budget", {}).get("spent", 0) for run in all_runs
        ),
    }
