"""repro.chaos — deterministic fault injection beyond the paper's model.

The paper (Section 2) assumes a reliable synchronous network; this
package deliberately breaks that assumption in a seed-keyed, reproducible
way so CONGOS's confidentiality and QoD behavior can be soak-tested under
production-like loss, delay, duplication, reordering and partitions.

* :mod:`repro.chaos.spec` — :class:`FaultSpec`, plain-data intensity knobs.
* :mod:`repro.chaos.schedule` — :class:`FaultSchedule`, seed → decisions.
* :mod:`repro.chaos.plane` — :class:`ChaosFaultPlane`, the network hook.
* :mod:`repro.chaos.soak` — fault-matrix sweeps and the E15 payload.
* :mod:`repro.chaos.direct` — direct-send reliability matrix (E16).
* :mod:`repro.chaos.targeted` — budgeted rumor-aware fault policies and
  the E19 targeted-vs-oblivious matrix.
"""

from repro.chaos.plane import ChaosFaultPlane, FaultEvent, FaultPlane, pipeline_stage
from repro.chaos.schedule import FaultSchedule
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import (
    BudgetLedger,
    TargetedFaultPlane,
    TargetedFaultPolicy,
    TargetedSpec,
    get_policy,
    policy_names,
)

__all__ = [
    "BudgetLedger",
    "ChaosFaultPlane",
    "FaultEvent",
    "FaultPlane",
    "FaultSchedule",
    "FaultSpec",
    "TargetedFaultPlane",
    "TargetedFaultPolicy",
    "TargetedSpec",
    "get_policy",
    "pipeline_stage",
    "policy_names",
]
