"""Deterministic fault schedules.

A :class:`FaultSchedule` turns ``(master_seed, FaultSpec, n)`` into a
fully reproducible stream of fault decisions.  Determinism is structured
the same way as everywhere else in the simulator (:mod:`repro.sim.rng`):
every decision comes from a stream derived by hashing the master seed
with a label path, so

* the same seed always yields the same schedule, independent of how many
  worker processes the exec pool uses (``--jobs`` invariance);
* per-round streams are independent — a run sliced at round ``r`` makes
  exactly the same decisions from round ``r`` on as an unsliced run.

Per-message decisions are drawn in *message-index order* from the round's
stream (`("chaos", "round", round_no)`), which matches the engine's
deterministic send-phase ordering.  Partition storms are cut from their
own windowed streams (`("chaos", "partition", window_index)`), so the
bisection chosen for storm ``k`` does not depend on traffic volume.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.chaos.spec import FaultSpec
from repro.sim.rng import derive_rng

__all__ = ["FaultSchedule", "FaultDecision"]

# Per-message fates, in precedence order.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"

#: ``(fate, delay_rounds)`` — ``delay_rounds`` is 0 unless fate needs one.
FaultDecision = Tuple[str, int]

_DELIVER: FaultDecision = (DELIVER, 0)


class FaultSchedule:
    """Seed-keyed source of per-round, per-message fault decisions."""

    def __init__(self, master_seed: int, spec: FaultSpec, n: int):
        if n <= 0:
            raise ValueError("schedule needs at least one process")
        self.master_seed = int(master_seed)
        self.spec = spec
        self.n = n
        self._partition_cache: Dict[int, frozenset] = {}

    # -- per-round message stream ---------------------------------------

    def round_rng(self, round_no: int) -> random.Random:
        """The stream all per-message decisions for ``round_no`` come from."""
        return derive_rng(self.master_seed, "chaos", "round", round_no)

    def reorder_rng(self, round_no: int) -> random.Random:
        """A separate stream for inbox shuffles, so reorder decisions do
        not perturb the per-message fate draws (and vice versa)."""
        return derive_rng(self.master_seed, "chaos", "reorder", round_no)

    # -- message-keyed streams (sharded backend) ------------------------
    #
    # Index-order draws above assume one process walks the round's
    # traffic in engine order; a sharded run has no such single walker.
    # These streams key each decision on the message's own coordinates
    # instead — ``(round, src, dst, copy)`` for fates (``copy`` counts
    # same-(src, dst) messages within the round) and ``(round, dst)``
    # for inbox shuffles — so every worker reaches the same verdicts no
    # matter how pids are sharded.

    def message_rng(
        self, round_no: int, src: int, dst: int, copy: int
    ) -> random.Random:
        return derive_rng(
            self.master_seed, "chaos", "msg", round_no, src, dst, copy
        )

    def message_fate(
        self, round_no: int, src: int, dst: int, copy: int
    ) -> FaultDecision:
        """Shard-invariant fate of the ``copy``-th (src, dst) message."""
        if not self.spec.active_in(round_no):
            return _DELIVER
        return self.decide(self.message_rng(round_no, src, dst, copy))

    def dst_reorder_rng(self, round_no: int, dst: int) -> random.Random:
        """Per-recipient shuffle stream (shard-invariant reordering)."""
        return derive_rng(self.master_seed, "chaos", "reorder", round_no, dst)

    def decide(self, rng: random.Random) -> FaultDecision:
        """Draw the fate of the next message from ``rng``.

        Exactly one uniform draw decides the fate; a delayed message
        draws once more for its hold time.  Fates are mutually exclusive
        (a message is never both dropped and duplicated).
        """
        spec = self.spec
        roll = rng.random()
        if roll < spec.drop:
            return (DROP, 0)
        roll -= spec.drop
        if roll < spec.delay:
            return (DELAY, rng.randint(1, spec.max_delay))
        roll -= spec.delay
        if roll < spec.duplicate:
            return (DUPLICATE, 1)
        return _DELIVER

    def decisions(self, round_no: int, count: int) -> List[FaultDecision]:
        """The fates of ``count`` messages sent in ``round_no``, in order.

        Pure function of ``(seed, spec, round_no, count)`` — the
        determinism tests pin schedules by comparing these lists.
        """
        if not self.spec.active_in(round_no):
            return [_DELIVER] * count
        rng = self.round_rng(round_no)
        return [self.decide(rng) for _ in range(count)]

    # -- partition storms ------------------------------------------------

    def severed(self, round_no: int) -> Optional[frozenset]:
        """The pid set on one side of the cut, or ``None`` if no storm.

        While a storm is active every message crossing the cut is
        severed.  The bisection for storm window ``k`` is drawn from its
        own stream, so it is identical regardless of when (or whether)
        earlier rounds were simulated.
        """
        spec = self.spec
        if not spec.partition_period or not spec.active_in(round_no):
            return None
        window, phase = divmod(round_no, spec.partition_period)
        if phase >= spec.partition_width:
            return None
        cached = self._partition_cache.get(window)
        if cached is None:
            rng = derive_rng(self.master_seed, "chaos", "partition", window)
            side_size = max(1, self.n // 2)
            cached = frozenset(rng.sample(range(self.n), side_size))
            self._partition_cache[window] = cached
        return cached
