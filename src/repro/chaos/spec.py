"""Fault-intensity specifications for the chaos plane.

A :class:`FaultSpec` is plain data describing *how hostile* the network
should be — drop/delay/duplication/reorder probabilities, the delay
bound, and the geometry of scheduled partition storms.  It deliberately
contains no randomness and no state: the same spec plus the same master
seed always produces the same :class:`~repro.chaos.schedule.FaultSchedule`,
which is what makes chaos runs reproducible and cacheable (the spec
rides inside :class:`~repro.exec.tasks.RunSpec` kwargs as a JSON dict).

The paper's model (Section 2) is a *reliable* network: messages are lost
only at crash/restart boundaries chosen by the CRRI adversary.  A
``FaultSpec`` with every knob at zero — :meth:`is_null` — is exactly that
model, and the engine never even instantiates a fault plane for it.
Everything beyond null is a deliberate departure from the paper, studied
as a robustness extension (see EXPERIMENTS.md E15).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping, Optional

__all__ = ["FaultSpec"]


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault-intensity knobs for one chaos run.

    Attributes
    ----------
    drop:
        Per-message probability of silent loss in transit.
    delay:
        Per-message probability of being held back; the held copy is
        delivered ``1..max_delay`` rounds later (chosen uniformly), or
        never if the recipient is crashed at the matured round.
    max_delay:
        Upper bound, in rounds, on any injected delay (the network stays
        *eventually* timely — unbounded delay would collapse into drop).
    duplicate:
        Per-message probability of a spurious second copy arriving one
        round after the original.
    reorder:
        Per-inbox, per-round probability that the recipient's inbox is
        shuffled before the receive phase (the synchronous model itself
        imposes no intra-round order, but protocol code should not
        accidentally depend on engine iteration order).
    partition_period:
        Every ``partition_period`` rounds a partition storm begins,
        severing every link between two randomly chosen halves of the
        system.  ``0`` disables partitions.
    partition_width:
        How many rounds each partition storm lasts.
    start_round / stop_round:
        The window in which the plane is active; outside it the network
        is paper-reliable.  ``stop_round=None`` means "until the end".
    """

    drop: float = 0.0
    delay: float = 0.0
    max_delay: int = 4
    duplicate: float = 0.0
    reorder: float = 0.0
    partition_period: int = 0
    partition_width: int = 0
    start_round: int = 0
    stop_round: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    "{} must be a probability in [0, 1], got {}".format(name, value)
                )
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1 round")
        if self.partition_period < 0 or self.partition_width < 0:
            raise ValueError("partition geometry must be non-negative")
        if self.partition_period and self.partition_width >= self.partition_period:
            raise ValueError(
                "partition_width must be smaller than partition_period "
                "(otherwise the system is permanently partitioned)"
            )
        if self.partition_width and not self.partition_period:
            raise ValueError("partition_width needs a partition_period")
        if self.start_round < 0:
            raise ValueError("start_round must be non-negative")
        if self.stop_round is not None and self.stop_round <= self.start_round:
            raise ValueError("stop_round must be after start_round")

    def is_null(self) -> bool:
        """True iff this spec is the paper's reliable network."""
        return (
            self.drop == 0.0
            and self.delay == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.partition_period == 0
        )

    def active_in(self, round_no: int) -> bool:
        if round_no < self.start_round:
            return False
        return self.stop_round is None or round_no < self.stop_round

    def intensity(self) -> float:
        """A scalar summary used to order matrix cells in reports."""
        partition_load = (
            self.partition_width / self.partition_period
            if self.partition_period
            else 0.0
        )
        return round(
            self.drop + self.delay + self.duplicate + partition_load, 6
        )

    # -- JSON round-trip (RunSpec kwargs, BENCH payloads) ----------------

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown FaultSpec fields: {}".format(sorted(unknown))
            )
        return cls(**dict(data))  # type: ignore[arg-type]
