"""Parallel experiment execution engine.

The exec subsystem turns a scenario into *data* and runs it anywhere:

* :mod:`repro.exec.tasks` — :class:`RunSpec`, a picklable description of
  one run (registered builder name + kwargs + params overrides + seed)
  with a stable content-hash key;
* :mod:`repro.exec.results` — :class:`RunRecord`, the slim picklable
  metrics extract that crosses process boundaries (engines never do);
* :mod:`repro.exec.pool` — a ``ProcessPoolExecutor`` runner with
  configurable jobs, per-task timeouts and retry-on-worker-crash;
* :mod:`repro.exec.cache` — an on-disk JSON result cache keyed by
  RunSpec hash, so interrupted sweeps resume instead of recomputing;
* :mod:`repro.exec.progress` — wall-clock / tasks-per-second reporting;
* :mod:`repro.exec.bench_io` — machine-readable ``BENCH_<name>.json``
  artifacts alongside the human-readable tables.
"""

from repro.exec.cache import ResultCache
from repro.exec.pool import TaskTimeoutError, WorkerCrashError, run_specs, run_tasks
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, execute_spec

__all__ = [
    "Progress",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "TaskTimeoutError",
    "WorkerCrashError",
    "execute_spec",
    "run_specs",
    "run_tasks",
]
