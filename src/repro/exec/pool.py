"""Process-pool task runner with retries, timeouts and a serial fallback.

:func:`run_tasks` fans a list of picklable items out over a
``ProcessPoolExecutor`` and returns the results *in input order*.  A
worker crash (segfault, ``os._exit``, OOM-kill) breaks the whole pool;
the runner rebuilds it and re-submits every unfinished task, charging an
attempt only to the tasks that could actually have been executing (at
most ``max_workers`` of them, in submission order) — queued tasks keep
their full budget.  Timeouts share the same budget: a task that exceeds
the per-task timeout is retried on a fresh pool until it exhausts
``retries``, with already-finished neighbors harvested first.  With
``jobs=1`` no subprocess is ever spawned — the serial fallback runs the
same code path tests and debuggers can step through.

:func:`run_specs` layers the on-disk result cache on top: cached specs
are returned without touching the pool, fresh results are written back,
so an interrupted sweep resumed later re-runs only the missing cells.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.exec.cache import ResultCache
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, execute_spec

__all__ = [
    "TaskTimeoutError",
    "WorkerCrashError",
    "resolve_jobs",
    "run_specs",
    "run_tasks",
]

T = TypeVar("T")
R = TypeVar("R")


class WorkerCrashError(RuntimeError):
    """A task crashed its worker more than ``retries`` times."""


class TaskTimeoutError(RuntimeError):
    """A task exceeded the per-task timeout more than ``retries`` times."""


def _task_label(index: int, item: object) -> str:
    """``task 3 (spec 1a2b3c4d5e6f)`` when the item carries a spec key."""
    key = getattr(item, "key", None)
    if key:
        return "task {} (spec {})".format(index, str(key)[:12])
    return "task {}".format(index)


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Kill worker processes so a hung task cannot stall pool shutdown.

    ``ProcessPoolExecutor`` has no public kill switch; terminating the
    worker processes is the standard workaround and leaves the executor
    broken, which the retry loop handles by rebuilding it.
    """
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def resolve_jobs(jobs: Optional[int]) -> int:
    """``jobs`` if positive, else ``os.cpu_count()`` (at least 1)."""
    if jobs is not None and jobs > 0:
        return jobs
    return os.cpu_count() or 1


def run_tasks(
    items: Iterable[T],
    fn: Callable[[T], R],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Progress] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Run ``fn`` over ``items``, in parallel, preserving input order.

    ``timeout`` bounds the wait for each task's result once the runner
    turns to it (earlier waits overlap later execution, so it is an upper
    bound per task, not a global deadline).  The serial fallback
    (``jobs=1``) runs in-process and does not enforce timeouts.

    ``on_result`` fires with ``(index, result)`` the moment each task
    lands, before later tasks finish — callers use it to checkpoint
    completed work so an interrupt cannot lose it.
    """
    work = list(items)
    resolved_jobs = resolve_jobs(jobs)
    if resolved_jobs == 1:
        results_serial: List[R] = []
        for serial_index, item in enumerate(work):
            result = fn(item)
            results_serial.append(result)
            if on_result is not None:
                on_result(serial_index, result)
            if progress is not None:
                progress.task_done()
        return results_serial

    results: Dict[int, R] = {}
    remaining: Dict[int, T] = dict(enumerate(work))
    attempts: Dict[int, int] = {index: 0 for index in remaining}

    def finish(index: int) -> None:
        remaining.pop(index)
        if on_result is not None:
            on_result(index, results[index])
        if progress is not None:
            progress.task_done()

    while remaining:
        broken = False
        timed_out: Optional[int] = None
        max_workers = min(resolved_jobs, len(remaining))
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            futures = {
                index: executor.submit(fn, item)
                for index, item in sorted(remaining.items())
            }
            for index, future in futures.items():
                if timed_out is not None:
                    # A task timed out and the workers were killed; only
                    # harvest results that had already landed.
                    if not future.done():
                        continue
                    try:
                        results[index] = future.result(timeout=0)
                    except Exception:
                        continue
                    finish(index)
                    continue
                try:
                    results[index] = future.result(timeout=timeout)
                except BrokenProcessPool:
                    broken = True
                    continue
                except FuturesTimeoutError:
                    timed_out = index
                    for pending in futures.values():
                        pending.cancel()
                    _terminate_workers(executor)
                    continue
                finish(index)
        if broken:
            # At most max_workers tasks can have been executing when the
            # pool died; queued-but-unstarted tasks are innocent and keep
            # their full retry budget.  Submission order means the
            # earliest unfinished indices were the ones in flight.
            for index in sorted(remaining)[:max_workers]:
                attempts[index] += 1
                if attempts[index] > retries:
                    raise WorkerCrashError(
                        "{} crashed its worker {} times (retries={})".format(
                            _task_label(index, remaining[index]),
                            attempts[index],
                            retries,
                        )
                    )
        if timed_out is not None:
            attempts[timed_out] += 1
            if attempts[timed_out] > retries:
                raise TaskTimeoutError(
                    "{} exceeded the {}s per-task timeout {} time(s) "
                    "(retries={})".format(
                        _task_label(timed_out, remaining[timed_out]),
                        timeout,
                        attempts[timed_out],
                        retries,
                    )
                )
    return [results[index] for index in range(len(work))]


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    progress: Optional[Progress] = None,
    fn: Callable[[RunSpec], RunRecord] = execute_spec,
) -> List[RunRecord]:
    """Run a batch of specs through the pool, via the result cache.

    With a ``cache`` and ``resume=True``, specs whose key is already on
    disk are returned without running; fresh results are always written
    back (even with ``resume=False``), so the *next* resumed run can skip
    them.  Each record is checkpointed the moment its task lands — an
    interrupted sweep keeps everything that finished before the signal.
    """
    specs = list(specs)
    records: List[Optional[RunRecord]] = [None] * len(specs)
    todo: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec.key) if (cache is not None and resume) else None
        if cached is not None:
            records[index] = cached.with_profile(cache_hit=True)
            if progress is not None:
                progress.task_done(cached=True)
        else:
            todo.append(index)

    def checkpoint(todo_index: int, record: RunRecord) -> None:
        index = todo[todo_index]
        records[index] = record
        if cache is not None:
            cache.put(record, key=specs[index].key)
        if progress is not None:
            progress.task_done(wall_time=getattr(record, "wall_time", None))

    run_tasks(
        [specs[index] for index in todo],
        fn=fn,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        on_result=checkpoint,
    )
    return [record for record in records if record is not None]
