"""Picklable run specifications with stable content-hash keys.

A :class:`RunSpec` captures one scenario run as plain data — the *name*
of a registered scenario builder, its keyword arguments, an optional
:class:`~repro.core.config.CongosParams` override set, and the seed —
so it can cross a process boundary and serve as a cache key.  The hash
is computed over a canonical JSON rendering, so two specs describing the
same run always collide (kwarg order, tuple-vs-list spelling and set
ordering do not matter) and the key survives interpreter restarts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Callable, Dict, Mapping, Optional, Union

from repro.core.config import CongosParams

__all__ = ["RunSpec", "execute_spec", "canonical_json"]


def _canonical(value: object) -> object:
    """Reduce a kwarg value to a JSON-stable canonical form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _canonical(val) for key, val in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if is_dataclass(value) and not isinstance(value, type):
        return _canonical(asdict(value))
    raise TypeError(
        "RunSpec kwargs must be JSON-representable, got {!r}".format(type(value))
    )


def canonical_json(payload: object) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One run of a registered scenario builder, as data.

    ``builder`` names an entry of the registry in
    :mod:`repro.harness.scenarios`; ``params`` holds the full field dict
    of a :class:`CongosParams` (or ``None`` for the builder's default).
    """

    builder: str
    seed: int
    kwargs: Dict[str, object] = field(default_factory=dict)
    params: Optional[Dict[str, object]] = None
    # Execution backend ("inproc" | "sharded") and sharded-net options.
    # Both backends produce identical audited results, so the default
    # backend is deliberately EXCLUDED from the content key: a spec keeps
    # its pre-sharding key (and its cache entries) unless a non-default
    # backend is requested explicitly.
    backend: str = "inproc"
    net: Optional[Dict[str, object]] = None
    # Round kernel ("object" | "array").  Like ``backend``, the default
    # engine is EXCLUDED from the content key, so object-engine specs keep
    # their pre-fastcore keys (and golden digests) byte-identical.
    engine: str = "object"

    @classmethod
    def make(
        cls,
        builder: Union[str, Callable],
        seed: int,
        params: Union[CongosParams, Mapping, None] = None,
        backend: str = "inproc",
        net: Optional[Mapping[str, object]] = None,
        engine: str = "object",
        **kwargs: object,
    ) -> "RunSpec":
        """Build a spec, resolving builder callables and params objects.

        Builders passed as callables must be registered in
        :data:`repro.harness.scenarios.BUILDERS` so the worker process can
        find them again by name.
        """
        from repro.harness.scenarios import builder_name

        name = builder if isinstance(builder, str) else builder_name(builder)
        if isinstance(params, CongosParams):
            resolved: Optional[Dict[str, object]] = asdict(params)
        elif params is not None:
            resolved = asdict(CongosParams(**dict(params)))
        else:
            resolved = None
        return cls(
            builder=name,
            seed=seed,
            kwargs=dict(kwargs),
            params=resolved,
            backend=backend,
            net=dict(net) if net is not None else None,
            engine=engine,
        )

    @property
    def key(self) -> str:
        """Stable content hash identifying this run."""
        payload = {
            "builder": self.builder,
            "seed": self.seed,
            "kwargs": self.kwargs,
            "params": self.params,
        }
        if self.backend != "inproc":
            payload["backend"] = self.backend
            payload["net"] = self.net
        if self.engine != "object":
            payload["engine"] = self.engine
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
        return digest.hexdigest()

    def resolve_params(self) -> Optional[CongosParams]:
        if self.params is None:
            return None
        return CongosParams(**self.params)

    def to_scenario(self):
        """Instantiate the scenario this spec describes (any process)."""
        import dataclasses

        from repro.harness.scenarios import get_builder

        builder = get_builder(self.builder)
        kwargs = dict(self.kwargs)
        params = self.resolve_params()
        if params is not None:
            kwargs["params"] = params
        scenario = builder(seed=self.seed, **kwargs)
        if self.backend != "inproc":
            scenario = dataclasses.replace(
                scenario, backend=self.backend, net=self.net
            )
        if self.engine != "object":
            scenario = dataclasses.replace(scenario, engine=self.engine)
        return scenario

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "builder": self.builder,
            "seed": self.seed,
            "kwargs": dict(self.kwargs),
            "params": dict(self.params) if self.params is not None else None,
        }
        if self.backend != "inproc":
            data["backend"] = self.backend
            data["net"] = dict(self.net) if self.net is not None else None
        if self.engine != "object":
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        return cls(
            builder=str(data["builder"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            kwargs=dict(data.get("kwargs") or {}),
            params=dict(data["params"]) if data.get("params") else None,
            backend=str(data.get("backend", "inproc")),
            net=dict(data["net"]) if data.get("net") else None,
            engine=str(data.get("engine", "object")),
        )


def execute_spec(spec: RunSpec):
    """Run one spec to completion and return its slim record.

    This is the unit of work shipped to pool workers: the engine and
    auditors live and die inside this call; only the
    :class:`~repro.exec.results.RunRecord` crosses back — stamped with
    the task's wall-clock time and the worker's pid for profiling.
    """
    import os
    import time

    from repro.exec.results import RunRecord
    from repro.harness.runner import run_congos_scenario

    started = time.perf_counter()
    result = run_congos_scenario(spec.to_scenario())
    record = RunRecord.from_result(result, spec_key=spec.key)
    return record.with_profile(
        wall_time=round(time.perf_counter() - started, 6),
        worker_pid=os.getpid(),
    )
