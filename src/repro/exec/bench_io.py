"""Machine-readable bench artifacts: ``BENCH_<name>.json``.

Every bench historically emitted only an ASCII table; downstream tooling
(perf trajectories, regression dashboards) needs numbers it can parse.
This module writes one timestamped JSON document per bench next to the
``.txt`` table, with a uniform envelope::

    {
      "name": "...",          # bench name
      "created": "...",       # ISO-8601 UTC timestamp
      "schema": 1,
      ...payload...           # grid/cells, metrics, timing, table
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

__all__ = [
    "artifact_path",
    "grid_payload",
    "profile_payload",
    "sweep_payload",
    "write_bench_json",
]

SCHEMA_VERSION = 1


def artifact_path(name: str, results_dir: str) -> str:
    return os.path.join(results_dir, "BENCH_{}.json".format(name))


def write_bench_json(
    name: str,
    payload: Dict[str, object],
    results_dir: str,
    created: Optional[str] = None,
) -> str:
    """Write the artifact atomically; returns its path.

    ``created`` overrides the timestamp (tests pin it for determinism).
    """
    os.makedirs(results_dir, exist_ok=True)
    document: Dict[str, object] = {
        "name": name,
        "created": created
        if created is not None
        else datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "schema": SCHEMA_VERSION,
    }
    for key, value in payload.items():
        if key not in document:
            document[key] = value
    path = artifact_path(name, results_dir)
    rendered = json.dumps(document, sort_keys=True, indent=1, default=str)
    fd, tmp_path = tempfile.mkstemp(dir=results_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def grid_payload(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> List[Dict[str, object]]:
    """Zip table headers and rows into a list of JSON row objects."""
    out: List[Dict[str, object]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                "row width {} != header width {}".format(len(row), len(headers))
            )
        out.append({str(h): v for h, v in zip(headers, row)})
    return out


def profile_payload(records: Sequence[object]) -> Dict[str, object]:
    """Aggregate exec-pool profiling from a batch of ``RunRecord``s.

    Cache hits are excluded from the timing summary — their ``wall_time``
    is the *original* run's, not this batch's.
    """
    records = list(records)
    fresh = [r for r in records if not getattr(r, "cache_hit", False)]
    times = [
        r.wall_time for r in fresh if getattr(r, "wall_time", 0.0) > 0.0
    ]
    pids = sorted(
        {
            r.worker_pid
            for r in fresh
            if getattr(r, "worker_pid", None) is not None
        }
    )
    return {
        "tasks": len(records),
        "executed": len(fresh),
        "cache_hits": len(records) - len(fresh),
        "task_seconds_total": round(sum(times), 6),
        "task_seconds_max": round(max(times), 6) if times else 0.0,
        "task_seconds_mean": (
            round(sum(times) / len(times), 6) if times else 0.0
        ),
        "workers": len(pids),
        "worker_pids": pids,
    }


def sweep_payload(sweep) -> Dict[str, object]:
    """Serialize a :class:`~repro.analysis.sweeps.SweepResult`."""
    cells: List[Dict[str, object]] = []
    for cell in sweep.cells:
        peak = cell.peak_summary()
        total = cell.total_summary()
        latency = cell.latency_summary()
        cells.append(
            {
                "cell": dict(cell.cell),
                "seeds": cell.seeds,
                "peak": peak.as_dict(),
                "total": total.as_dict(),
                "latency": latency.as_dict() if latency is not None else None,
                "fallback_rate": cell.fallback_rate(),
                "qod_satisfied": cell.all_satisfied(),
                "clean": cell.all_clean(),
            }
        )
    return {
        "cells": cells,
        "all_satisfied": sweep.all_satisfied(),
        "all_clean": sweep.all_clean(),
    }
