"""On-disk JSON result cache keyed by RunSpec content hash.

One file per completed run (``<root>/<key>.json``), written atomically,
so an interrupted sweep leaves a directory of finished cells behind and
a resumed sweep re-runs only the missing ones.  Entries are
:class:`~repro.exec.results.RunRecord` dicts; the cache never stores
engines or any other heavyweight state.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional

from repro.exec.results import RunRecord

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of ``<spec key>.json`` run records."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> str:
        if not key or os.sep in key or key.startswith("."):
            raise ValueError("invalid cache key: {!r}".format(key))
        return os.path.join(self.root, "{}.json".format(key))

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        for entry in sorted(os.listdir(self.root)):
            if entry.endswith(".json"):
                yield entry[: -len(".json")]

    def get(self, key: str) -> Optional[RunRecord]:
        """The cached record for ``key``, or ``None`` (counted as a miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return RunRecord.from_dict(data)

    def put(self, record: RunRecord, key: Optional[str] = None) -> str:
        """Persist a record atomically; returns the file path."""
        resolved = key if key is not None else record.spec_key
        if not resolved:
            raise ValueError("record has no spec_key and no key was given")
        path = self.path_for(resolved)
        payload = json.dumps(record.to_dict(), sort_keys=True, indent=1)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            os.unlink(self.path_for(key))
            removed += 1
        return removed
