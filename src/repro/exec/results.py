"""Slim, picklable run metrics.

A :class:`~repro.harness.runner.RunResult` drags the whole engine,
auditors and partition set along — exactly what a worker process must
*not* ship back to the parent.  :class:`RunRecord` is the flat extract
the sweeps and benches actually aggregate: message counts, the QoD
verdict with its latencies and delivery paths, and the confidentiality
verdict.  It round-trips through plain JSON so the on-disk result cache
can store it verbatim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """Everything a sweep aggregates about one run, and nothing more."""

    scenario: str
    n: int
    rounds: int
    seed: int
    # message complexity
    peak: int
    total: int
    total_size: int
    mean_per_round: float
    filtered: int
    by_service: Dict[str, int] = field(default_factory=dict)
    # quality of delivery
    qod_satisfied: bool = True
    pairs: int = 0
    admissible_pairs: int = 0
    missed: int = 0
    paths: Dict[str, int] = field(default_factory=dict)
    latencies: Tuple[int, ...] = ()
    # confidentiality
    clean: bool = True
    violations: Dict[str, int] = field(default_factory=dict)
    border_messages: int = 0
    # chaos fault plane (empty for reliable-network runs); faults_by_stage
    # splits the same counts by pipeline stage (proxy/gd/gossip/direct)
    faults: Dict[str, int] = field(default_factory=dict)
    faults_by_stage: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # targeted adversary summary (empty unless a TargetedFaultPlane ran):
    # policy, budget ledger, tracked rids, and the tracked rumors' own
    # admissible/missed pair counts pulled from the QoD outcomes
    targeted: Dict[str, object] = field(default_factory=dict)
    # open-workload SLO summary (empty unless the run's workload was an
    # OpenWorkload): offered/admitted/shed accounting, delivery and
    # arrival-to-delivery latency quantiles, fallback rate, shed-leak
    # verdict (see repro.load.slo.slo_summary)
    load: Dict[str, object] = field(default_factory=dict)
    # bookkeeping
    rumors_injected: int = 0
    spec_key: Optional[str] = None
    # exec-pool profiling (set by execute_spec / run_specs, not by the
    # simulation — nondeterministic, so comparisons that assert bit
    # identity must go through without_profile())
    wall_time: float = 0.0
    worker_pid: Optional[int] = None
    cache_hit: bool = False

    @classmethod
    def from_result(cls, result, spec_key: Optional[str] = None) -> "RunRecord":
        """Extract the record from a :class:`RunResult` (inside the worker)."""
        stats = result.stats
        qod = result.qod
        confidentiality = result.confidentiality
        targeted: Dict[str, object] = {}
        summarize = getattr(result.fault_plane, "targeted_summary", None)
        if summarize is not None:
            targeted = summarize()
            tracked = set(targeted.get("tracked", ()))
            outcomes = [o for o in qod.outcomes if str(o.rid) in tracked]
            targeted["tracked_pairs"] = len(outcomes)
            targeted["tracked_admissible"] = sum(
                1 for o in outcomes if o.admissible
            )
            targeted["tracked_missed"] = sum(
                1
                for o in outcomes
                if o.admissible
                and not (o.delivered and o.on_time and o.correct_data)
            )
        load: Dict[str, object] = {}
        if getattr(result.workload, "load_summary", None) is not None:
            # Imported lazily: closed-workload workers never touch
            # repro.load.
            from repro.load.slo import slo_summary

            load = slo_summary(result) or {}
        return cls(
            scenario=result.scenario.name,
            n=result.scenario.n,
            rounds=result.scenario.rounds,
            seed=result.scenario.seed,
            peak=stats.max_per_round(),
            total=stats.total,
            total_size=stats.total_size,
            mean_per_round=stats.mean_per_round(),
            filtered=stats.filtered,
            by_service=dict(stats.by_service()),
            qod_satisfied=qod.satisfied,
            pairs=len(qod.outcomes),
            admissible_pairs=qod.admissible_pairs,
            missed=len(qod.missed),
            paths=dict(qod.path_counts(admissible_only=True)),
            latencies=tuple(qod.latencies()),
            clean=confidentiality.is_clean(),
            violations=dict(confidentiality.violation_counts()),
            border_messages=confidentiality.total_border_messages,
            faults=dict(result.chaos_summary() or {}),
            faults_by_stage={
                stage: dict(kinds)
                for stage, kinds in (result.chaos_stage_summary() or {}).items()
            },
            targeted=targeted,
            load=load,
            rumors_injected=result.rumors_injected,
            spec_key=spec_key,
        )

    # -- fallback accounting (Lemma 4's shoot path) ----------------------

    def fallback_shots(self) -> int:
        return self.paths.get("shoot", 0)

    def served_pairs(self) -> int:
        return sum(self.paths.values())

    # -- profiling -------------------------------------------------------

    def with_profile(
        self,
        wall_time: Optional[float] = None,
        worker_pid: Optional[int] = None,
        cache_hit: Optional[bool] = None,
    ) -> "RunRecord":
        """Copy with profiling fields updated (record is frozen)."""
        updates: Dict[str, object] = {}
        if wall_time is not None:
            updates["wall_time"] = wall_time
        if worker_pid is not None:
            updates["worker_pid"] = worker_pid
        if cache_hit is not None:
            updates["cache_hit"] = cache_hit
        return replace(self, **updates) if updates else self

    def without_profile(self) -> "RunRecord":
        """Copy with profiling fields zeroed — the deterministic payload.

        Parity tests (serial vs pooled, fresh vs cached) compare these:
        wall-clock and worker pids legitimately differ between runs.
        """
        return replace(self, wall_time=0.0, worker_pid=None, cache_hit=False)

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["latencies"] = list(self.latencies)
        # Absent unless a targeted plane ran: pre-targeted payloads (and
        # their golden digests) are byte-identical.
        if not data["targeted"]:
            del data["targeted"]
        # Same contract for the open-workload section.
        if not data["load"]:
            del data["load"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        payload = dict(data)
        payload["latencies"] = tuple(payload.get("latencies", ()))
        payload["by_service"] = dict(payload.get("by_service", {}))
        payload["paths"] = dict(payload.get("paths", {}))
        payload["violations"] = dict(payload.get("violations", {}))
        payload["faults"] = dict(payload.get("faults", {}))
        payload["faults_by_stage"] = {
            stage: dict(kinds)
            for stage, kinds in dict(payload.get("faults_by_stage", {})).items()
        }
        # Defaults keep pre-targeted / pre-load cached records loading.
        payload["targeted"] = dict(payload.get("targeted", {}))
        payload["load"] = dict(payload.get("load", {}))
        return cls(**payload)
