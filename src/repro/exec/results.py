"""Slim, picklable run metrics.

A :class:`~repro.harness.runner.RunResult` drags the whole engine,
auditors and partition set along — exactly what a worker process must
*not* ship back to the parent.  :class:`RunRecord` is the flat extract
the sweeps and benches actually aggregate: message counts, the QoD
verdict with its latencies and delivery paths, and the confidentiality
verdict.  It round-trips through plain JSON so the on-disk result cache
can store it verbatim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """Everything a sweep aggregates about one run, and nothing more."""

    scenario: str
    n: int
    rounds: int
    seed: int
    # message complexity
    peak: int
    total: int
    total_size: int
    mean_per_round: float
    filtered: int
    by_service: Dict[str, int] = field(default_factory=dict)
    # quality of delivery
    qod_satisfied: bool = True
    pairs: int = 0
    admissible_pairs: int = 0
    missed: int = 0
    paths: Dict[str, int] = field(default_factory=dict)
    latencies: Tuple[int, ...] = ()
    # confidentiality
    clean: bool = True
    violations: Dict[str, int] = field(default_factory=dict)
    border_messages: int = 0
    # bookkeeping
    rumors_injected: int = 0
    spec_key: Optional[str] = None

    @classmethod
    def from_result(cls, result, spec_key: Optional[str] = None) -> "RunRecord":
        """Extract the record from a :class:`RunResult` (inside the worker)."""
        stats = result.stats
        qod = result.qod
        confidentiality = result.confidentiality
        return cls(
            scenario=result.scenario.name,
            n=result.scenario.n,
            rounds=result.scenario.rounds,
            seed=result.scenario.seed,
            peak=stats.max_per_round(),
            total=stats.total,
            total_size=stats.total_size,
            mean_per_round=stats.mean_per_round(),
            filtered=stats.filtered,
            by_service=dict(stats.by_service()),
            qod_satisfied=qod.satisfied,
            pairs=len(qod.outcomes),
            admissible_pairs=qod.admissible_pairs,
            missed=len(qod.missed),
            paths=dict(qod.path_counts(admissible_only=True)),
            latencies=tuple(qod.latencies()),
            clean=confidentiality.is_clean(),
            violations=dict(confidentiality.violation_counts()),
            border_messages=confidentiality.total_border_messages,
            rumors_injected=result.rumors_injected,
            spec_key=spec_key,
        )

    # -- fallback accounting (Lemma 4's shoot path) ----------------------

    def fallback_shots(self) -> int:
        return self.paths.get("shoot", 0)

    def served_pairs(self) -> int:
        return sum(self.paths.values())

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["latencies"] = list(self.latencies)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        payload = dict(data)
        payload["latencies"] = tuple(payload.get("latencies", ()))
        payload["by_service"] = dict(payload.get("by_service", {}))
        payload["paths"] = dict(payload.get("paths", {}))
        payload["violations"] = dict(payload.get("violations", {}))
        return cls(**payload)
