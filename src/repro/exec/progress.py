"""Wall-clock and throughput reporting for sweeps and benches.

A :class:`Progress` is fed one :meth:`task_done` per finished run and
prints rate-limited status lines (done/total, cached count, tasks per
second, accumulated task seconds, elapsed seconds) to a stream — or
collects silently when the stream is ``None``, which is what the tests
use.  :meth:`finish` prints the final line only if the last
:meth:`task_done` did not already report it.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

__all__ = ["Progress"]


class Progress:
    """Counts completed tasks and reports throughput."""

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: Optional[IO[str]] = None,
        min_interval: float = 1.0,
    ) -> None:
        if total < 0:
            raise ValueError("total must be non-negative")
        self.total = total
        self.label = label
        self.stream = stream
        self.min_interval = min_interval
        self.done = 0
        self.cached = 0
        self.task_seconds = 0.0
        self._started = time.monotonic()
        self._last_report = 0.0
        self._reported_done = -1  # `done` value of the last printed line

    # -- accounting ------------------------------------------------------

    def task_done(
        self, cached: bool = False, wall_time: Optional[float] = None
    ) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        if wall_time is not None:
            self.task_seconds += wall_time
        now = time.monotonic()
        if self.stream is not None and (
            now - self._last_report >= self.min_interval or self.done == self.total
        ):
            self._last_report = now
            self._reported_done = self.done
            print(self.render(), file=self.stream)

    # -- queries ---------------------------------------------------------

    @property
    def executed(self) -> int:
        """Tasks that actually ran (not served from cache)."""
        return self.done - self.cached

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def rate(self) -> float:
        elapsed = self.elapsed()
        return self.done / elapsed if elapsed > 0 else 0.0

    def render(self) -> str:
        parts = ["{}: {}/{} tasks".format(self.label, self.done, self.total)]
        if self.total > 0:
            parts.append("{:.0f}%".format(100.0 * self.done / self.total))
        if self.cached:
            parts.append("{} cached".format(self.cached))
        parts.append("{:.2f} tasks/s".format(self.rate()))
        if self.task_seconds > 0:
            parts.append("task time {:.1f}s".format(self.task_seconds))
        parts.append("elapsed {:.1f}s".format(self.elapsed()))
        return "  ".join(parts)

    def finish(self) -> str:
        line = self.render()
        # The last task_done may already have printed this state; don't
        # emit the same final line twice.
        if self.stream is not None and self._reported_done != self.done:
            self._reported_done = self.done
            print(line, file=self.stream)
        return line

    @classmethod
    def for_tty(cls, total: int, label: str = "sweep") -> "Progress":
        """A reporter that prints to stderr (the CLI's choice)."""
        return cls(total=total, label=label, stream=sys.stderr)
